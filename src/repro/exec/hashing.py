"""Stable content hashes for experiment cells.

The on-disk result cache keys each cell on a digest of *everything that
determines its outcome*: the full cell spec (scheme, workload, scaled
array, seed, kwargs with their configuration dataclasses) plus the
package version.  The digest must be stable across processes and Python
versions — ``hash()`` is salted per interpreter, so the canonical form
is built by hand and hashed with BLAKE2b.

Dataclasses are canonicalized field-by-field (recursively), so changing
any knob of a nested config — say ``TWLConfig.toss_up_interval`` inside
``scheme_kwargs`` — changes the fingerprint and invalidates the cached
entry.  Bumping ``repro.version.__version__`` invalidates *every*
entry, which is the documented escape hatch after editing scheme code
(see ``docs/performance.md``).

>>> from repro.config import ScaledArrayConfig
>>> from repro.exec.cells import attack_cell
>>> scaled = ScaledArrayConfig(n_pages=64, endurance_mean=768.0)
>>> cell = attack_cell("twl_swp", "scan", scaled=scaled, seed=7)

The fingerprint is a pure function of the spec — rebuilding an
equivalent cell reproduces it exactly:

>>> cell_fingerprint(cell) == cell_fingerprint(
...     attack_cell("twl_swp", "scan", scaled=scaled, seed=7))
True

Any spec change — a different seed, scheme, or nested config field —
yields a different key:

>>> cell_fingerprint(cell) == cell_fingerprint(
...     attack_cell("twl_swp", "scan", scaled=scaled, seed=8))
False
>>> from repro.config import TWLConfig
>>> cell_fingerprint(cell) == cell_fingerprint(attack_cell(
...     "twl_swp", "scan", scaled=scaled, seed=7,
...     scheme_kwargs={"config": TWLConfig(toss_up_interval=16)}))
False

So does a version bump:

>>> cell_fingerprint(cell, version="0.0.0") == cell_fingerprint(cell)
False

Every ``ExperimentCell`` field is classified as **identity-bearing**
(:data:`CELL_IDENTITY_FIELDS`, hashed into the digest) or an
**execution knob** (:data:`CELL_EXECUTION_FIELDS`, excluded).
``batch_size`` is a knob because the engine's batch-identity contract
guarantees batched execution is bit-identical to per-write execution;
``label`` is a knob because it is display-only and never reaches
:func:`~repro.exec.cells.run_cell`'s result.  A cached result is
therefore valid at any batch size and under any label:

>>> import dataclasses
>>> cell_fingerprint(cell) == cell_fingerprint(
...     dataclasses.replace(cell, batch_size=4096))
True
>>> cell_fingerprint(cell) == cell_fingerprint(
...     dataclasses.replace(cell, chunk_size=1024))
True
>>> cell_fingerprint(cell) == cell_fingerprint(
...     dataclasses.replace(cell, label="fig6 row 3"))
True

The snapshot cadence and directory are knobs by the sub-cell recovery
contract: emission is inert and a resumed run is bit-identical to an
uninterrupted one, so checkpointed and plain runs share one cache slot
(and a resume after changing only knobs still finds its snapshot):

>>> cell_fingerprint(cell) == cell_fingerprint(
...     dataclasses.replace(cell, snapshot_every=100_000))
True
>>> cell_fingerprint(cell) == cell_fingerprint(
...     dataclasses.replace(cell, snapshot_dir="/tmp/snaps"))
True

The classification must stay exhaustive: a field in neither set makes
:func:`cell_fingerprint` raise (and lint rule TWL003 fail statically),
so adding a spec field without deciding its cache role is an error,
never a silent cache-poisoning bug (``docs/invariants.md``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, FrozenSet

from ..errors import ConfigError
from ..version import __version__

#: Bump when the serialized cache payload layout changes.
CACHE_FORMAT_VERSION = 1

#: ``ExperimentCell`` fields that determine the experiment's outcome —
#: each one is hashed into the cache fingerprint, so changing it
#: invalidates the cached result.
CELL_IDENTITY_FIELDS: FrozenSet[str] = frozenset(
    {
        "kind",
        "scheme",
        "workload",
        "scaled",
        "seed",
        "scheme_kwargs",
        "attack_kwargs",
        "trace_writes",
        "drive_writes",
        "footprint_override",
        "profile",
        "soft_errors",
        "trace_path",
        "stream_kwargs",
    }
)

#: ``ExperimentCell`` fields that cannot change the result (execution
#: knobs / display metadata) — excluded from the fingerprint, so a
#: cached result is reused across any of their values.  ``chunk_size``
#: is a knob by the same contract as ``batch_size``: stream chunk
#: segmentation changes delivery granularity, never the request
#: sequence.
CELL_EXECUTION_FIELDS: FrozenSet[str] = frozenset(
    {
        "batch_size",
        "check_invariants",
        "chunk_size",
        "label",
        "snapshot_dir",
        "snapshot_every",
    }
)


def canonical_value(value: Any) -> Any:
    """JSON-representable canonical form of ``value``.

    Dataclasses become tagged ``{field: canonical(value)}`` mappings,
    dicts are key-sorted, tuples become lists; anything else falls back
    to ``repr``.  The result round-trips deterministically through
    ``json.dumps(..., sort_keys=True)``.

    >>> canonical_value({"b": 2, "a": (1, None)})
    {'a': [1, None], 'b': 2}
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: canonical_value(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return {"__dataclass__": type(value).__name__, "fields": fields}
    if isinstance(value, dict):
        return {str(key): canonical_value(value[key]) for key in sorted(value)}
    if isinstance(value, (list, tuple)):
        return [canonical_value(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def _check_exhaustive(cell: Any) -> None:
    """Raise unless every cell field has a declared cache role (TWL003)."""
    actual = {field.name for field in dataclasses.fields(cell)}
    unclassified = actual - CELL_IDENTITY_FIELDS - CELL_EXECUTION_FIELDS
    if unclassified:
        raise ConfigError(
            f"{type(cell).__name__} field(s) {sorted(unclassified)} are "
            "classified neither as fingerprint identity nor as execution "
            "knobs; add them to CELL_IDENTITY_FIELDS or "
            "CELL_EXECUTION_FIELDS in repro.exec.hashing (TWL003, see "
            "docs/invariants.md)"
        )


def cell_fingerprint(cell: Any, version: str = __version__) -> str:
    """Hex digest keying ``cell`` in the on-disk result cache.

    The digest covers the canonicalized identity fields of the cell
    spec (:data:`CELL_IDENTITY_FIELDS`), the package ``version`` and
    the cache format version; see the module docstring for the
    invalidation rules this implies.  Raises
    :class:`~repro.errors.ConfigError` on a spec field with no declared
    cache role.
    """
    _check_exhaustive(cell)
    canonical_cell = canonical_value(cell)
    if isinstance(canonical_cell, dict):
        for knob in sorted(CELL_EXECUTION_FIELDS):
            canonical_cell.get("fields", {}).pop(knob, None)
    payload = json.dumps(
        {
            "cell": canonical_cell,
            "version": version,
            "format": CACHE_FORMAT_VERSION,
        },
        sort_keys=True,
    )
    return hashlib.blake2b(payload.encode(), digest_size=16).hexdigest()
