"""Stable content hashes for experiment cells.

The on-disk result cache keys each cell on a digest of *everything that
determines its outcome*: the full cell spec (scheme, workload, scaled
array, seed, kwargs with their configuration dataclasses) plus the
package version.  The digest must be stable across processes and Python
versions — ``hash()`` is salted per interpreter, so the canonical form
is built by hand and hashed with BLAKE2b.

Dataclasses are canonicalized field-by-field (recursively), so changing
any knob of a nested config — say ``TWLConfig.toss_up_interval`` inside
``scheme_kwargs`` — changes the fingerprint and invalidates the cached
entry.  Bumping ``repro.version.__version__`` invalidates *every*
entry, which is the documented escape hatch after editing scheme code
(see ``docs/performance.md``).

>>> from repro.config import ScaledArrayConfig
>>> from repro.exec.cells import attack_cell
>>> scaled = ScaledArrayConfig(n_pages=64, endurance_mean=768.0)
>>> cell = attack_cell("twl_swp", "scan", scaled=scaled, seed=7)

The fingerprint is a pure function of the spec — rebuilding an
equivalent cell reproduces it exactly:

>>> cell_fingerprint(cell) == cell_fingerprint(
...     attack_cell("twl_swp", "scan", scaled=scaled, seed=7))
True

Any spec change — a different seed, scheme, or nested config field —
yields a different key:

>>> cell_fingerprint(cell) == cell_fingerprint(
...     attack_cell("twl_swp", "scan", scaled=scaled, seed=8))
False
>>> from repro.config import TWLConfig
>>> cell_fingerprint(cell) == cell_fingerprint(attack_cell(
...     "twl_swp", "scan", scaled=scaled, seed=7,
...     scheme_kwargs={"config": TWLConfig(toss_up_interval=16)}))
False

So does a version bump:

>>> cell_fingerprint(cell, version="0.0.0") == cell_fingerprint(cell)
False

``batch_size`` is the one spec field *excluded* from the digest: the
engine's batch-identity contract guarantees batched execution is
bit-identical to per-write execution, so it is an execution knob (like
the worker count), not part of the experiment's identity — a cached
result is valid at any batch size:

>>> import dataclasses
>>> cell_fingerprint(cell) == cell_fingerprint(
...     dataclasses.replace(cell, batch_size=4096))
True
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any

from ..version import __version__

#: Bump when the serialized cache payload layout changes.
CACHE_FORMAT_VERSION = 1


def canonical_value(value: Any) -> Any:
    """JSON-representable canonical form of ``value``.

    Dataclasses become tagged ``{field: canonical(value)}`` mappings,
    dicts are key-sorted, tuples become lists; anything else falls back
    to ``repr``.  The result round-trips deterministically through
    ``json.dumps(..., sort_keys=True)``.

    >>> canonical_value({"b": 2, "a": (1, None)})
    {'a': [1, None], 'b': 2}
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: canonical_value(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return {"__dataclass__": type(value).__name__, "fields": fields}
    if isinstance(value, dict):
        return {str(key): canonical_value(value[key]) for key in sorted(value)}
    if isinstance(value, (list, tuple)):
        return [canonical_value(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def cell_fingerprint(cell, version: str = __version__) -> str:
    """Hex digest keying ``cell`` in the on-disk result cache.

    The digest covers the canonicalized cell spec, the package
    ``version`` and the cache format version; see the module docstring
    for the invalidation rules this implies.
    """
    canonical_cell = canonical_value(cell)
    if isinstance(canonical_cell, dict):
        # Execution knob, not experiment identity (see module docstring).
        canonical_cell.get("fields", {}).pop("batch_size", None)
    payload = json.dumps(
        {
            "cell": canonical_cell,
            "version": version,
            "format": CACHE_FORMAT_VERSION,
        },
        sort_keys=True,
    )
    return hashlib.blake2b(payload.encode(), digest_size=16).hexdigest()
