"""Campaign checkpoint journal: crash-safe progress on disk.

A 40-cell Figure-6 sweep that dies at cell 37 — power cut, OOM kill,
Ctrl-C — should cost 3 cells to finish, not 40.  The result cache
already gives that *when it is enabled and trusted*; the journal gives
it unconditionally.  :class:`CheckpointJournal` is an **append-only
JSONL manifest** recording, per cell, a ``done`` line (with the
serialized result payload, via the same
:func:`~repro.exec.cache.encode_result` codec as the cache — so a
resumed result is bit-identical to a recomputed one) or a ``failed``
line (message only; failed cells are re-run on resume).

Crash-safety model:

* Every record is appended as one ``write()`` of a single
  ``json.dumps`` line followed by ``flush`` + ``fsync`` — a record is
  either durably complete or it is the final, truncated line.
* The reader tolerates exactly that: lines that fail to decode are
  skipped (the matching cell simply re-runs), so a journal truncated
  mid-write by a crash is still a valid resume point.
* Appending never rewrites history; duplicate ``done`` lines for one
  fingerprint are harmless (last wins on load, first wins in memory).

The journal lives wherever the caller points it — conventionally next
to the cache (``<cache_dir>/checkpoint.jsonl``, what the CLI's
``--resume`` defaults to writing) — but depends on the cache in no
way: ``--no-cache --resume manifest.jsonl`` still skips finished
cells, because the payload rides in the journal line itself.

Concurrency model (the campaign server runs many sessions at once):

* Every ``_append`` and the whole read→rewrite→rename of ``compact()``
  run under an **advisory ``flock``** on a ``<path>.lock`` sidecar, so
  two writers sharing one journal can never interleave bytes within a
  record, and a concurrent ``compact()`` can never drop a record that
  an appender fsync'd between compact's read and its rename.  The lock
  is per-open-file-description, so it excludes both threads and
  processes.
* A journal opened with ``exclusive=True`` additionally takes an
  **owner lock** (``<path>.owner``): an atomic ``os.link`` of a
  pid-bearing temp file, so the lock file carries its owner's pid from
  the instant it exists.  A second exclusive open fails fast with
  :class:`~repro.errors.ConfigError` instead of silently sharing the
  session.  A lock whose recorded pid is dead is stale (the owner
  crashed without :meth:`close`) and is broken automatically.  The
  session store in :mod:`repro.serve` opens every per-session journal
  this way.
"""

from __future__ import annotations

import contextlib
import json
import os
from typing import Dict, Iterator, Optional

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from ..errors import ConfigError
from .cache import decode_result, encode_result
from .cells import CellResult, ExperimentCell

#: Per-line schema version.
JOURNAL_FORMAT_VERSION = 1

#: Record statuses.
STATUS_DONE = "done"
STATUS_FAILED = "failed"

#: Journal size (bytes) past which opening auto-compacts.  Long
#: retry-heavy campaigns append a ``failed`` line per exhausted cell
#: and a ``done`` line per eventual success; only the latest record per
#: fingerprint matters on load, so everything else is dead weight read
#: and skipped on every open.
DEFAULT_COMPACT_BYTES = 1 << 20


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (signal-0 probe)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, not ours
        return True
    except OSError:  # pragma: no cover - defensive
        return False
    return True


class CheckpointJournal:
    """Append-only JSONL manifest of completed/failed campaign cells.

    Opening a path that already has records *is* resuming: existing
    ``done`` results load into memory and
    :meth:`result_for` serves them so the executor never re-runs those
    cells.  ``resumed`` counts the records found at open time so
    callers can report how much work the journal saved.
    """

    def __init__(
        self,
        path: str,
        compact_bytes: Optional[int] = DEFAULT_COMPACT_BYTES,
        exclusive: bool = False,
    ) -> None:
        self.path = path
        self._done: Dict[str, CellResult] = {}
        self._failed: Dict[str, str] = {}
        self._owns_exclusive = False
        parent = os.path.dirname(os.path.abspath(path))
        try:
            os.makedirs(parent, exist_ok=True)
        except OSError as error:
            raise ConfigError(
                f"checkpoint journal location {path!r} is not usable: {error}"
            ) from error
        if os.path.isdir(path):
            raise ConfigError(
                f"checkpoint journal path {path!r} is a directory"
            )
        if exclusive:
            self._acquire_owner_lock()
        self._load()
        self.resumed = len(self._done)
        if compact_bytes is not None:
            try:
                size = os.path.getsize(self.path)
            except OSError:
                size = 0
            if size >= compact_bytes:
                self.compact()

    @property
    def _lock_path(self) -> str:
        return f"{self.path}.lock"

    @property
    def _owner_path(self) -> str:
        return f"{self.path}.owner"

    @contextlib.contextmanager
    def _write_lock(self) -> Iterator[None]:
        """Advisory exclusive lock serializing append/compact writers.

        Taken on a ``.lock`` sidecar (never the journal itself:
        ``compact`` renames over the journal, which would orphan a lock
        held on the replaced inode).  No-op where ``fcntl`` is missing
        — single-writer use, the historical contract, stays safe there.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            yield
            return
        handle = os.open(self._lock_path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(handle, fcntl.LOCK_EX)
            yield
        finally:
            # Closing releases the flock atomically with the fd.
            os.close(handle)

    def _acquire_owner_lock(self) -> None:
        """Take the per-session owner lock, breaking stale ones.

        The lock is taken by ``os.link``-ing a pid-bearing temp file to
        the owner path: link is atomic *with its content*, so a
        contender can never observe a live owner's lock file before its
        pid lands in it (the old ``O_EXCL``-create-then-write protocol
        had exactly that window, and the contender would break the
        "empty garbage" lock out from under a live owner).  A lock file
        that *is* unreadable therefore never belongs to a live owner: it
        is removed and re-contended, and the link re-arbitrates the
        remove+retry race against other breakers safely.
        """
        # Unique per journal instance, not just per pid: two threads in
        # one process contending for the same path must not share (and
        # unlink) each other's temp file.
        tmp = f"{self._owner_path}.{os.getpid()}.{id(self):x}.tmp"
        try:
            with open(tmp, "w") as handle:
                handle.write(f"{os.getpid()}\n")
                handle.flush()
                os.fsync(handle.fileno())
            for _ in range(2):
                try:
                    os.link(tmp, self._owner_path)
                except FileExistsError:
                    owner_pid = self._read_owner_pid()
                    if owner_pid is not None and _pid_alive(owner_pid):
                        raise ConfigError(
                            f"checkpoint journal {self.path!r} is exclusively "
                            f"owned by live session pid {owner_pid}"
                        ) from None
                    # Stale (crashed owner, or garbage no live owner
                    # could have produced): break it and retry.
                    with contextlib.suppress(OSError):
                        os.unlink(self._owner_path)
                    continue
                self._owns_exclusive = True
                return
            raise ConfigError(
                f"checkpoint journal {self.path!r}: could not acquire "
                "exclusive owner lock (contended)"
            )
        finally:
            with contextlib.suppress(OSError):
                os.unlink(tmp)

    def _read_owner_pid(self) -> Optional[int]:
        try:
            with open(self._owner_path) as handle:
                return int(handle.read().strip())
        except (OSError, ValueError):
            return None

    def close(self) -> None:
        """Release the exclusive owner lock, if held.  Idempotent."""
        if self._owns_exclusive:
            self._owns_exclusive = False
            # Only remove the file if it is still ours: a breaker that
            # (wrongly) judged us dead must not have its lock stolen.
            if self._read_owner_pid() == os.getpid():
                with contextlib.suppress(OSError):
                    os.unlink(self._owner_path)

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _load(self) -> None:
        try:
            with open(self.path) as handle:
                lines = handle.readlines()
        except FileNotFoundError:
            return
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # A crash mid-append leaves at most one truncated line;
                # skipping it just re-runs that cell.  (Any other
                # garbage line degrades the same way: a re-run, never
                # a wrong result.)
                continue
            if not isinstance(record, dict):
                continue
            if record.get("format") != JOURNAL_FORMAT_VERSION:
                continue
            fingerprint = record.get("fingerprint")
            if not isinstance(fingerprint, str):
                continue
            status = record.get("status")
            if status == STATUS_DONE:
                try:
                    result = decode_result(record["kind"], record["payload"])
                except (KeyError, TypeError, ValueError):
                    continue
                self._done[fingerprint] = result
                self._failed.pop(fingerprint, None)
            elif status == STATUS_FAILED:
                if fingerprint not in self._done:
                    self._failed[fingerprint] = str(record.get("error", ""))

    def compact(self) -> int:
        """Rewrite the journal keeping the winning record per fingerprint.

        The load rules (``done`` beats ``failed``; among ``done`` lines
        the last wins) mean every superseded line is pure read-and-skip
        overhead on subsequent opens.  This rewrites the file to exactly
        one record per fingerprint — the one ``_load`` would keep — in
        sorted fingerprint order, via the atomic tmp-then-rename
        protocol, and returns how many lines were dropped.  Garbage
        lines (truncated, wrong format) are dropped too; they carry no
        resumable state.  A no-op (0 returned, file untouched) when
        nothing would be dropped.

        Runs entirely under the journal's advisory write lock: a
        concurrent appender either lands before compact's read (and its
        record survives into the rewrite) or after the rename (and
        appends to the compacted file) — an acknowledged record can
        never fall into the read→rename window and be lost.
        """
        with self._write_lock():
            return self._compact_locked()

    def _compact_locked(self) -> int:
        try:
            with open(self.path) as handle:
                lines = handle.readlines()
        except FileNotFoundError:
            return 0
        survivors: Dict[str, Dict] = {}
        total = 0
        for line in lines:
            line = line.strip()
            if not line:
                continue
            total += 1
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(record, dict):
                continue
            if record.get("format") != JOURNAL_FORMAT_VERSION:
                continue
            fingerprint = record.get("fingerprint")
            if not isinstance(fingerprint, str):
                continue
            status = record.get("status")
            if status == STATUS_DONE:
                survivors[fingerprint] = record
            elif status == STATUS_FAILED:
                kept = survivors.get(fingerprint)
                if kept is None or kept.get("status") != STATUS_DONE:
                    survivors[fingerprint] = record
        dropped = total - len(survivors)
        if dropped <= 0:
            return 0
        tmp = f"{self.path}.{os.getpid()}.tmp"
        try:
            with open(tmp, "w") as handle:
                for fingerprint in sorted(survivors):
                    handle.write(
                        json.dumps(survivors[fingerprint], sort_keys=True) + "\n"
                    )
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return dropped

    def _append(self, record: Dict) -> None:
        line = json.dumps(record, sort_keys=True) + "\n"
        # Open *inside* the lock: a concurrent compact() renames a new
        # inode over the path, and an fd opened before the lock could be
        # appending to the replaced (deleted) file.
        with self._write_lock():
            with open(self.path, "ab") as handle:
                if handle.tell() > 0:
                    # A crash can leave a truncated, newline-less final
                    # line; terminate it first so the new record starts
                    # on its own line instead of merging into the
                    # garbage.
                    with open(self.path, "rb") as reader:
                        reader.seek(-1, os.SEEK_END)
                        if reader.read(1) != b"\n":
                            handle.write(b"\n")
                handle.write(line.encode())
                handle.flush()
                os.fsync(handle.fileno())

    def __len__(self) -> int:
        return len(self._done)

    @property
    def failed_count(self) -> int:
        """Failed records carried in the journal (informational)."""
        return len(self._failed)

    def result_for(self, fingerprint: str) -> Optional[CellResult]:
        """The completed result recorded for ``fingerprint``, or None."""
        return self._done.get(fingerprint)

    def record_done(
        self,
        cell: ExperimentCell,
        fingerprint: str,
        result: CellResult,
        seconds: float = 0.0,
    ) -> None:
        """Durably record a completed cell (idempotent per fingerprint)."""
        if fingerprint in self._done:
            return
        kind, payload = encode_result(result)
        self._append(
            {
                "format": JOURNAL_FORMAT_VERSION,
                "status": STATUS_DONE,
                "fingerprint": fingerprint,
                "cell": cell.describe(),
                "kind": kind,
                "payload": payload,
                "seconds": round(seconds, 3),
            }
        )
        self._done[fingerprint] = result
        self._failed.pop(fingerprint, None)

    def record_failed(
        self, cell: ExperimentCell, fingerprint: str, error: str
    ) -> None:
        """Durably record a cell that exhausted its retry budget."""
        self._append(
            {
                "format": JOURNAL_FORMAT_VERSION,
                "status": STATUS_FAILED,
                "fingerprint": fingerprint,
                "cell": cell.describe(),
                "error": error,
            }
        )
        if fingerprint not in self._done:
            self._failed[fingerprint] = error
