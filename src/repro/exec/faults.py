"""Deterministic fault injection for the campaign executor.

``tests/test_resilience.py`` has to prove that retries, pool rebuilds,
timeouts and checkpoint resume actually work — which requires making
workers fail *on demand, deterministically, across the process spawn
boundary*.  This module is that harness.  It is test infrastructure
that ships in the package (like :mod:`repro.exec.hashing`) because the
hooks must be importable inside pool workers and callable from the CLI
smoke job in CI.

Activation is by environment variable so a plan survives
``ProcessPoolExecutor`` worker creation under both ``fork`` and
``spawn``::

    REPRO_FAULTS='{"mode": "transient", "rate": 1.0, "times": 1,
                   "state_dir": "/tmp/faults"}' \\
        twl-repro fig6 --quick --jobs 2 --retries 2

Injection is deterministic twice over:

* **Which cells are hit** is a pure function of the plan ``seed`` and
  the cell's cache fingerprint (a BLAKE2b stream via
  :mod:`repro.rng.streams`), so the same plan always selects the same
  cells regardless of worker scheduling.
* **How often** is bounded by per-cell (``times``) and global
  (``max_total``) budgets claimed through ``O_CREAT | O_EXCL`` marker
  files under ``state_dir`` — atomic across processes, and persistent
  across the worker deaths the faults themselves cause (a SIGKILL'd
  worker forgets everything *except* its marker file, which is exactly
  what lets "fail once, succeed on retry" work).

Modes:

``transient``
    Raise :class:`FaultInjectionError` (a ``SimulationError``, so the
    executor wraps it into a ``CellExecutionError`` naming the cell).
``hang``
    Sleep ``hang_seconds`` — long enough to trip a per-cell timeout.
``kill``
    ``SIGKILL`` the current worker process, breaking the pool.
``corrupt``
    Parent-side: garble the cache entry's bytes right after
    :meth:`repro.exec.cache.CellCache.put` writes them, exercising the
    corrupt-entry quarantine path.
"""

from __future__ import annotations

import errno
import json
import os
import signal
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..errors import ConfigError, SimulationError
from ..rng.streams import derive_seed

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .cells import ExperimentCell

#: Environment variable carrying the JSON fault plan.
FAULTS_ENV = "REPRO_FAULTS"

#: Fault modes.
MODE_TRANSIENT = "transient"
MODE_HANG = "hang"
MODE_KILL = "kill"
MODE_CORRUPT = "corrupt"
_MODES = (MODE_TRANSIENT, MODE_HANG, MODE_KILL, MODE_CORRUPT)


class FaultInjectionError(SimulationError):
    """Transient failure raised by the ``transient`` fault mode."""


@dataclass(frozen=True)
class FaultPlan:
    """One deterministic fault-injection campaign."""

    mode: str
    #: Fraction of cells selected for injection (by fingerprint hash).
    rate: float = 1.0
    #: Seed of the cell-selection stream.
    seed: int = 0
    #: Injections per selected cell before it is left alone.
    times: int = 1
    #: Global injection budget across all cells (None = unbounded).
    max_total: Optional[int] = None
    #: Sleep length of the ``hang`` mode.
    hang_seconds: float = 30.0
    #: Directory holding the cross-process attempt markers.  Without
    #: it, budgets are tracked per-process only — fine for serial
    #: ``transient`` plans, wrong for ``kill`` (the marker must outlive
    #: the worker).
    state_dir: Optional[str] = None
    #: ``kill`` mode refinement: instead of dying at worker entry, arm
    #: :mod:`repro.engine.interrupt` so the engine SIGKILLs the process
    #: exactly when the run reaches this absolute demand-write index —
    #: mid-run, after any snapshots due by then are on disk.  The
    #: crash-consistency proof point (``tests/test_resilience.py``).
    kill_at_demand: Optional[int] = None

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ConfigError(f"unknown fault mode {self.mode!r}; expected {_MODES}")
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.times < 1:
            raise ConfigError(f"fault times must be >= 1, got {self.times}")
        if self.max_total is not None and self.max_total < 1:
            raise ConfigError(f"fault max_total must be >= 1, got {self.max_total}")
        if self.kill_at_demand is not None:
            if self.mode != MODE_KILL:
                raise ConfigError(
                    f"kill_at_demand only applies to {MODE_KILL!r} plans"
                )
            if self.kill_at_demand < 1:
                raise ConfigError(
                    f"kill_at_demand must be >= 1, got {self.kill_at_demand}"
                )

    def selects(self, fingerprint: str) -> bool:
        """Whether this plan targets the cell with ``fingerprint``."""
        if self.rate >= 1.0:
            return True
        if self.rate <= 0.0:
            return False
        unit = derive_seed(self.seed, "fault-select", fingerprint) / float(2**63)
        return unit < self.rate

    def to_env(self) -> str:
        """JSON form suitable for ``os.environ[FAULTS_ENV]``."""
        record = {"mode": self.mode, "rate": self.rate, "seed": self.seed,
                  "times": self.times, "hang_seconds": self.hang_seconds}
        if self.max_total is not None:
            record["max_total"] = self.max_total
        if self.state_dir is not None:
            record["state_dir"] = self.state_dir
        if self.kill_at_demand is not None:
            record["kill_at_demand"] = self.kill_at_demand
        return json.dumps(record)


#: Per-process fallback attempt counters (used when ``state_dir`` is
#: unset); maps marker name -> count.
_local_claims: dict = {}


def active_plan() -> Optional[FaultPlan]:
    """The plan in ``$REPRO_FAULTS``, or None when injection is off."""
    raw = os.environ.get(FAULTS_ENV, "").strip()
    if not raw:
        return None
    try:
        record = json.loads(raw)
        return FaultPlan(**record)
    except (ValueError, TypeError) as error:
        raise ConfigError(f"bad {FAULTS_ENV} plan {raw!r}: {error}") from error


def _claim(plan: FaultPlan, scope: str, budget: Optional[int]) -> bool:
    """Atomically claim one injection from ``budget`` (True = granted).

    Claims are marker files ``<scope>.<k>`` created with
    ``O_CREAT | O_EXCL`` so two workers can never take the same slot;
    without a ``state_dir`` a per-process dict stands in.
    """
    if budget is None:
        return True
    if plan.state_dir is None:
        count = _local_claims.get(scope, 0)
        if count >= budget:
            return False
        _local_claims[scope] = count + 1
        return True
    os.makedirs(plan.state_dir, exist_ok=True)
    for slot in range(budget):
        path = os.path.join(plan.state_dir, f"{scope}.{slot}")
        try:
            handle = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except OSError as error:
            if error.errno == errno.EEXIST:
                continue
            raise
        os.close(handle)
        return True
    return False


def _claim_injection(plan: FaultPlan, fingerprint: str) -> bool:
    """True when both the per-cell and global budgets grant a slot."""
    if not _claim(plan, f"cell-{fingerprint}", plan.times):
        return False
    if not _claim(plan, "global", plan.max_total):
        return False
    return True


def maybe_inject(cell: "ExperimentCell") -> None:
    """Worker-side hook: fire the active plan's fault for ``cell``.

    Called at the top of the executor's worker entry point.  A no-op
    unless ``$REPRO_FAULTS`` is set, the plan selects this cell, and
    the injection budgets still have room.
    """
    plan = active_plan()
    if plan is None or plan.mode == MODE_CORRUPT:
        return
    from .hashing import cell_fingerprint

    fingerprint = cell_fingerprint(cell)
    if not plan.selects(fingerprint) or not _claim_injection(plan, fingerprint):
        return
    if plan.mode == MODE_TRANSIENT:
        raise FaultInjectionError(
            f"injected transient fault for {cell.describe()}"
        )
    if plan.mode == MODE_HANG:
        # Sleep in slices: a single long time.sleep is one C call, and
        # the portable cell deadline (repro.exec.deadline) delivers its
        # expiry at a bytecode boundary — slicing keeps a hung cell
        # interruptible within ~one slice of the budget expiring.
        deadline = time.monotonic() + plan.hang_seconds
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return
            time.sleep(min(remaining, 0.05))
    # MODE_KILL — die the way an OOM-killed worker dies: no cleanup,
    # no exception, just gone.  The parent sees BrokenProcessPoolError.
    # With kill_at_demand, death is deferred into the engine step loop
    # so it lands exactly at the armed demand index (after due
    # snapshots hit disk — the crash-consistency scenario).
    if plan.kill_at_demand is not None:
        from ..engine import interrupt

        interrupt.arm_kill_at(plan.kill_at_demand)
        return
    os.kill(os.getpid(), signal.SIGKILL)


def maybe_corrupt(fingerprint: str, path: str) -> None:
    """Parent-side hook: garble a just-written cache entry.

    Called by :meth:`repro.exec.cache.CellCache.put` after the atomic
    rename.  Active only for ``corrupt`` plans that select the cell and
    still have budget; overwrites the file with bytes that fail JSON
    decoding so the next ``get`` exercises the quarantine path.
    """
    plan = active_plan()
    if plan is None or plan.mode != MODE_CORRUPT:
        return
    if not plan.selects(fingerprint) or not _claim_injection(plan, fingerprint):
        return
    with open(path, "wb") as handle:
        handle.write(b"\x00corrupted-by-fault-injection\x00")
