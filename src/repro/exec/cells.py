"""Declarative experiment cells.

Every figure and table of the reproduction decomposes into *cells*: one
scheme driven by one workload at one scale with one seed.  Cells are
fully independent — each derives every random stream it needs from its
own seed (``repro.rng.streams``) — which is what makes them safe to fan
out across worker processes and to cache on disk.

:class:`ExperimentCell` is a picklable, declarative spec of one such
cell; :func:`run_cell` executes it.  Three cell kinds exist:

* ``attack`` — run a scheme to first failure under a named attack
  (:func:`repro.sim.runner.measure_attack_lifetime`), yielding a
  :class:`~repro.sim.lifetime.LifetimeResult`;
* ``trace`` — run a scheme to first failure looping a synthetic
  benchmark trace regenerated inside the worker from the profile,
  yielding a :class:`~repro.sim.lifetime.LifetimeResult`;
* ``overheads`` — drive a bounded write budget and report the scheme's
  measured swap behaviour
  (:class:`~repro.sim.metrics.SchemeOverheads`), used by the Figure-9
  timing model and the Figure-7(a) swap-ratio sweep;
* ``stream`` — run a scheme to first failure under a streamed workload
  (:func:`repro.sim.runner.measure_stream_lifetime`): either a
  registered dynamic generator (``repro.traces.registry``, e.g. the
  FTL workload) sized inside the worker to the scheme's logical space,
  or an on-disk trace opened through
  :func:`~repro.traces.io.open_trace_stream` — never materialized, so
  the cell runs at constant memory regardless of trace length.

Because a worker only receives the spec (never a live trace, array or
scheme object), executing a cell in a subprocess is bit-identical to
executing it in the parent — the tests in ``tests/test_exec.py`` assert
exactly that.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from ..config import ScaledArrayConfig, SoftErrorConfig
from ..devtools import sanitize
from ..engine import SnapshotPlan, discard_snapshot
from ..errors import ConfigError
from ..sim.drivers import TraceDriver
from ..traces.trace import Trace
from ..sim.lifetime import LifetimeResult
from ..sim.metrics import SchemeOverheads, measure_scheme_overheads
from ..sim.runner import (
    DEFAULT_SCALED,
    build_array,
    measure_attack_lifetime,
    measure_stream_lifetime,
    measure_trace_lifetime,
)
from ..traces.io import open_trace_stream
from ..traces.parsec import BenchmarkProfile, get_profile, make_benchmark_trace
from ..traces.registry import make_stream
from ..traces.stream import DEFAULT_CHUNK_REQUESTS, TraceStream
from ..wearlevel.registry import make_scheme

#: Cell kinds.
KIND_ATTACK = "attack"
KIND_TRACE = "trace"
KIND_OVERHEADS = "overheads"
KIND_STREAM = "stream"
_KINDS = (KIND_ATTACK, KIND_TRACE, KIND_OVERHEADS, KIND_STREAM)

#: Union of the result types a cell can produce.
CellResult = Union[LifetimeResult, SchemeOverheads]


@dataclass(frozen=True)
class ExperimentCell:
    """Spec of one scheme × workload × seed experiment cell.

    ``workload`` names an attack (``attack`` kind) or a benchmark
    profile (``trace`` / ``overheads`` kinds); a custom
    :class:`BenchmarkProfile` can be supplied via ``profile`` for
    workloads that are not in the registry.  ``scheme_kwargs`` /
    ``attack_kwargs`` are passed through to the factories, so
    configuration dataclasses (``TWLConfig`` etc.) ride along and
    participate in the cache fingerprint.
    """

    kind: str
    scheme: str
    workload: str
    scaled: ScaledArrayConfig = DEFAULT_SCALED
    seed: int = 2017
    scheme_kwargs: Dict = field(default_factory=dict)
    attack_kwargs: Dict = field(default_factory=dict)
    #: Length of the synthetic trace (``trace``/``overheads`` kinds).
    trace_writes: int = 0
    #: Demand writes to drive (``overheads`` kind only).
    drive_writes: int = 0
    #: Override of the profile's sparse-footprint fraction.
    footprint_override: Optional[float] = None
    #: Explicit profile for non-registry workloads.
    profile: Optional[BenchmarkProfile] = None
    #: Display label for progress lines and error messages.
    label: str = ""
    #: Demand writes per engine step (1 = legacy per-write path).  By
    #: the batch-identity contract the result is the same for every
    #: value, so this field is *excluded* from the cache fingerprint —
    #: it is an execution knob, not part of the experiment's identity.
    batch_size: int = 1
    #: Controller soft-error injection (``attack``/``trace`` kinds).
    #: Part of the cell's identity: a faulted run is a different
    #: experiment than a clean one.
    soft_errors: Optional[SoftErrorConfig] = None
    #: Attach the runtime invariant checker to the run.  An execution
    #: knob (pure verification — it either passes with an unchanged
    #: result or fails the cell), excluded from the fingerprint.
    check_invariants: bool = False
    #: On-disk trace to stream (``stream`` kind; exclusive with a
    #: generator ``workload``).  Identity-bearing: the path names the
    #: workload.  The fingerprint covers the path string only, not the
    #: file bytes — rewriting a trace in place requires clearing the
    #: cache (or a version bump), see ``docs/workloads.md``.
    trace_path: Optional[str] = None
    #: Extra keyword arguments for the stream generator factory
    #: (``stream`` kind), e.g. ``{"config": FTLConfig(...)}``.
    #: Identity-bearing, like ``scheme_kwargs``.
    stream_kwargs: Dict = field(default_factory=dict)
    #: Requests per stream chunk (``stream`` kind).  An execution knob:
    #: chunk segmentation only changes delivery granularity, never the
    #: request sequence, so results are bit-identical at any value.
    chunk_size: int = DEFAULT_CHUNK_REQUESTS
    #: Mid-run snapshot cadence in demand writes (0 = disabled).  An
    #: execution knob: snapshot emission is inert and a resumed run is
    #: bit-identical to an uninterrupted one (sub-cell recovery,
    #: ``docs/robustness.md``), so the cached result is valid at any
    #: cadence.  Ignored by ``overheads`` cells (bounded short drives).
    snapshot_every: int = 0
    #: Directory for this cell's snapshot file (named by the cell
    #: fingerprint).  An execution knob like the cadence; both must be
    #: set for checkpointing to arm.
    snapshot_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigError(f"unknown cell kind {self.kind!r}; expected {_KINDS}")
        if self.kind in (KIND_TRACE, KIND_OVERHEADS) and self.trace_writes < 1:
            raise ConfigError(f"{self.kind} cells need trace_writes >= 1")
        if self.kind == KIND_OVERHEADS and self.drive_writes < 1:
            raise ConfigError("overheads cells need drive_writes >= 1")
        if self.batch_size < 1:
            raise ConfigError(f"batch size must be positive, got {self.batch_size}")
        if self.chunk_size < 1:
            raise ConfigError(f"chunk size must be positive, got {self.chunk_size}")
        if self.kind == KIND_OVERHEADS and self.soft_errors is not None:
            raise ConfigError(
                "overheads cells do not support soft-error injection "
                "(the timing model needs clean swap counters)"
            )
        if self.trace_path is not None and self.kind != KIND_STREAM:
            raise ConfigError(f"{self.kind} cells do not take trace_path")
        if self.snapshot_every < 0:
            raise ConfigError(
                f"snapshot cadence must be non-negative, got {self.snapshot_every}"
            )

    def describe(self) -> str:
        """Human-readable identity: ``twl_swp×scan seed=2017``."""
        base = f"{self.scheme}×{self.workload} seed={self.seed}"
        if self.label:
            return f"{base} [{self.label}]"
        return base


def attack_cell(
    scheme: str,
    attack: str,
    scaled: ScaledArrayConfig = DEFAULT_SCALED,
    seed: int = 2017,
    scheme_kwargs: Optional[dict] = None,
    attack_kwargs: Optional[dict] = None,
    label: str = "",
    soft_errors: Optional[SoftErrorConfig] = None,
    check_invariants: bool = False,
) -> ExperimentCell:
    """Cell spec for a run-to-failure attack experiment."""
    return ExperimentCell(
        kind=KIND_ATTACK,
        scheme=scheme,
        workload=attack,
        scaled=scaled,
        seed=seed,
        scheme_kwargs=dict(scheme_kwargs or {}),
        attack_kwargs=dict(attack_kwargs or {}),
        label=label,
        soft_errors=soft_errors,
        check_invariants=check_invariants,
    )


def trace_cell(
    scheme: str,
    benchmark: str,
    trace_writes: int,
    scaled: ScaledArrayConfig = DEFAULT_SCALED,
    seed: int = 2017,
    scheme_kwargs: Optional[dict] = None,
    footprint_override: Optional[float] = None,
    profile: Optional[BenchmarkProfile] = None,
    label: str = "",
) -> ExperimentCell:
    """Cell spec for a run-to-failure benchmark-trace experiment."""
    return ExperimentCell(
        kind=KIND_TRACE,
        scheme=scheme,
        workload=benchmark,
        scaled=scaled,
        seed=seed,
        scheme_kwargs=dict(scheme_kwargs or {}),
        trace_writes=trace_writes,
        footprint_override=footprint_override,
        profile=profile,
        label=label,
    )


def overheads_cell(
    scheme: str,
    benchmark: str,
    trace_writes: int,
    drive_writes: int,
    scaled: ScaledArrayConfig = DEFAULT_SCALED,
    seed: int = 2017,
    scheme_kwargs: Optional[dict] = None,
    profile: Optional[BenchmarkProfile] = None,
    label: str = "",
) -> ExperimentCell:
    """Cell spec for a bounded-drive swap-overhead measurement."""
    return ExperimentCell(
        kind=KIND_OVERHEADS,
        scheme=scheme,
        workload=benchmark,
        scaled=scaled,
        seed=seed,
        scheme_kwargs=dict(scheme_kwargs or {}),
        trace_writes=trace_writes,
        drive_writes=drive_writes,
        profile=profile,
        label=label,
    )


def stream_cell(
    scheme: str,
    stream: Optional[str] = None,
    trace_path: Optional[str] = None,
    scaled: ScaledArrayConfig = DEFAULT_SCALED,
    seed: int = 2017,
    scheme_kwargs: Optional[dict] = None,
    stream_kwargs: Optional[dict] = None,
    chunk_size: int = DEFAULT_CHUNK_REQUESTS,
    label: str = "",
    soft_errors: Optional[SoftErrorConfig] = None,
    check_invariants: bool = False,
) -> ExperimentCell:
    """Cell spec for a run-to-failure streamed-workload experiment.

    Exactly one of ``stream`` (a registered generator name, e.g.
    ``"ftl"``) or ``trace_path`` (an on-disk trace for
    :func:`~repro.traces.io.open_trace_stream`) selects the workload.
    """
    if (stream is None) == (trace_path is None):
        raise ConfigError(
            "stream cells take exactly one of a generator name (stream=) "
            "or an on-disk trace (trace_path=)"
        )
    if stream is not None:
        workload = stream
    else:
        workload = os.path.splitext(os.path.basename(str(trace_path)))[0]
    return ExperimentCell(
        kind=KIND_STREAM,
        scheme=scheme,
        workload=workload,
        scaled=scaled,
        seed=seed,
        scheme_kwargs=dict(scheme_kwargs or {}),
        stream_kwargs=dict(stream_kwargs or {}),
        trace_path=trace_path,
        chunk_size=chunk_size,
        label=label,
        soft_errors=soft_errors,
        check_invariants=check_invariants,
    )


def _benchmark_trace(cell: ExperimentCell) -> Trace:
    profile = cell.profile or get_profile(cell.workload)
    return make_benchmark_trace(
        profile,
        cell.scaled.n_pages,
        cell.trace_writes,
        seed=cell.seed,
        footprint_override=cell.footprint_override,
    )


def _stream_factory(cell: ExperimentCell):
    """Late-binding stream factory for a ``stream`` cell.

    Built inside the worker from the picklable spec; the stream itself
    is constructed only after the scheme exists, so generators size
    themselves to the scheme's *logical* space (Start-Gap reserves a
    physical frame).
    """
    if cell.trace_path is not None:
        path = cell.trace_path
        chunk_size = cell.chunk_size

        def from_file(n_pages: int) -> TraceStream:
            return open_trace_stream(path, chunk_size=chunk_size)

        return from_file

    def from_generator(n_pages: int) -> TraceStream:
        return make_stream(
            cell.workload,
            n_pages,
            seed=cell.seed,
            chunk_size=cell.chunk_size,
            **dict(cell.stream_kwargs),
        )

    return from_generator


def run_cell(cell: ExperimentCell) -> CellResult:
    """Execute one cell exactly as the serial experiment code would.

    Everything stochastic inside — endurance sampling, trace
    generation, scheme and attack RNGs — derives from ``cell.seed`` and
    ``cell.scaled.seed``, so the result is a pure function of the spec.

    The whole cell is a sanitizer-protected region: under
    ``REPRO_SANITIZE=1`` (checked here so pool workers arm themselves
    from the inherited environment) any global-RNG call inside raises
    :class:`~repro.errors.DeterminismViolation` instead of silently
    breaking that purity.
    """
    sanitize.maybe_install_from_env()
    with sanitize.protected(f"cell {cell.describe()}"):
        return _run_cell_inner(cell)


def cell_snapshot_path(cell: ExperimentCell) -> Optional[str]:
    """Where this cell's mid-run snapshot lives, if checkpointing is on.

    Named by the cell fingerprint so a resumed process finds exactly the
    snapshot of the experiment it is about to re-run — and never one of
    a different spec (execution knobs excluded: re-running at a
    different ``batch_size`` still resumes).
    """
    if cell.snapshot_every < 1 or cell.snapshot_dir is None:
        return None
    from .hashing import cell_fingerprint

    return os.path.join(cell.snapshot_dir, f"{cell_fingerprint(cell)}.snap")


def _snapshot_plan(cell: ExperimentCell) -> Optional[SnapshotPlan]:
    path = cell_snapshot_path(cell)
    if path is None or cell.kind == KIND_OVERHEADS:
        return None
    os.makedirs(cell.snapshot_dir, exist_ok=True)  # type: ignore[arg-type]
    # strict=False: a torn snapshot (the atomic-rename protocol makes
    # this mean disk corruption, not a crashed writer) falls back to a
    # fresh run instead of permanently wedging the cell.
    return SnapshotPlan(
        path=path, every=cell.snapshot_every, resume=True, strict=False
    )


def _run_cell_inner(cell: ExperimentCell) -> CellResult:
    plan = _snapshot_plan(cell)
    result = _dispatch_cell(cell, plan)
    if plan is not None:
        # The run completed: its snapshot is spent state, not cache.
        discard_snapshot(plan.path)
    return result


def _dispatch_cell(
    cell: ExperimentCell, snapshots: Optional[SnapshotPlan]
) -> CellResult:
    if cell.kind == KIND_ATTACK:
        return measure_attack_lifetime(
            cell.scheme,
            cell.workload,
            scaled=cell.scaled,
            seed=cell.seed,
            scheme_kwargs=dict(cell.scheme_kwargs),
            attack_kwargs=dict(cell.attack_kwargs),
            batch_size=cell.batch_size,
            soft_errors=cell.soft_errors,
            check_invariants=cell.check_invariants,
            snapshots=snapshots,
        )
    if cell.kind == KIND_STREAM:
        return measure_stream_lifetime(
            cell.scheme,
            _stream_factory(cell),
            scaled=cell.scaled,
            seed=cell.seed,
            scheme_kwargs=dict(cell.scheme_kwargs),
            batch_size=cell.batch_size,
            soft_errors=cell.soft_errors,
            check_invariants=cell.check_invariants,
            snapshots=snapshots,
        )
    if cell.kind == KIND_TRACE:
        return measure_trace_lifetime(
            cell.scheme,
            _benchmark_trace(cell),
            scaled=cell.scaled,
            seed=cell.seed,
            scheme_kwargs=dict(cell.scheme_kwargs),
            batch_size=cell.batch_size,
            soft_errors=cell.soft_errors,
            check_invariants=cell.check_invariants,
            snapshots=snapshots,
        )
    # KIND_OVERHEADS — mirror experiments.fig9.measure_overheads.
    trace = _benchmark_trace(cell)
    array = build_array(cell.scaled)
    scheme = make_scheme(
        cell.scheme, array, seed=cell.seed, **dict(cell.scheme_kwargs)
    )
    driver = TraceDriver(trace, scheme.logical_pages)
    return measure_scheme_overheads(
        scheme, driver, cell.drive_writes, batch_size=cell.batch_size
    )
