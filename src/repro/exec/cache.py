"""Content-addressed on-disk cache of experiment-cell results.

Every cell is deterministic given its spec (see
:mod:`repro.exec.cells`), so its result can be stored once and replayed
forever — a full ``twl-repro all`` campaign re-run after an unrelated
edit becomes near-instant.  Entries live one-file-per-cell under a
cache directory (default ``~/.cache/twl-repro/``, override with
``--cache-dir`` / ``TWL_REPRO_CACHE_DIR``), named by the cell's
:func:`~repro.exec.hashing.cell_fingerprint`:

    ~/.cache/twl-repro/
        6c53…e2a1.json    {"cell": "twl_swp×scan seed=2017", "kind": …}

One file per entry (rather than one big JSON) keeps concurrent
campaigns safe: writes are atomic ``os.replace`` renames and two
processes caching the same cell simply produce the same file.

Invalidation is by construction: the fingerprint covers the cell spec
and ``repro.version.__version__``, so any spec or version change maps
to a fresh key and the stale file is simply never read again.  What the
fingerprint *cannot* see is an edit to the simulation code itself —
after changing scheme behaviour, bump the version or pass
``--no-cache`` (the rules are spelled out in ``docs/performance.md``).
"""

from __future__ import annotations

import itertools
import json
import os
import threading
from typing import Dict, Optional, Tuple

from ..errors import ConfigError
from ..sim.cache import deserialize_result, serialize_result
from ..sim.lifetime import LifetimeResult
from ..sim.metrics import SchemeOverheads
from .cells import CellResult, ExperimentCell
from .faults import maybe_corrupt
from .hashing import CACHE_FORMAT_VERSION, cell_fingerprint

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "TWL_REPRO_CACHE_DIR"

#: Process-wide counter making concurrent same-process temp names
#: unique.  The pid alone is not enough: the campaign server writes
#: cache entries from many threads of one process, and two threads
#: putting the same fingerprint with a pid-only temp name would
#: interleave writes into one file and rename garbage into place.
_temp_counter = itertools.count()
_temp_lock = threading.Lock()


def _next_temp_suffix() -> str:
    with _temp_lock:
        serial = next(_temp_counter)
    return f"{os.getpid()}.{threading.get_ident()}.{serial}.tmp"


def default_cache_dir() -> str:
    """The default on-disk cache location.

    ``$TWL_REPRO_CACHE_DIR`` wins, then ``$XDG_CACHE_HOME/twl-repro``,
    then ``~/.cache/twl-repro``.
    """
    override = os.environ.get(CACHE_DIR_ENV, "").strip()
    if override:
        return override
    xdg = os.environ.get("XDG_CACHE_HOME", "").strip()
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "twl-repro")


def _serialize_overheads(result: SchemeOverheads) -> Dict:
    return {
        "scheme": result.scheme,
        "workload": result.workload,
        "demand_writes": result.demand_writes,
        "swap_write_ratio": result.swap_write_ratio,
        "swap_event_ratio": result.swap_event_ratio,
        "extra_stats": dict(result.extra_stats),
    }


def _deserialize_overheads(record: Dict) -> SchemeOverheads:
    return SchemeOverheads(
        scheme=record["scheme"],
        workload=record["workload"],
        demand_writes=record["demand_writes"],
        swap_write_ratio=record["swap_write_ratio"],
        swap_event_ratio=record["swap_event_ratio"],
        extra_stats=dict(record["extra_stats"]),
    )


def encode_result(result: CellResult) -> Tuple[str, Dict]:
    """``(kind, payload)`` JSON form of a cell result.

    Shared by the cache and the checkpoint journal so a result served
    from either round-trips identically — the identity contract for
    resumed campaigns rides on this.
    """
    if isinstance(result, LifetimeResult):
        return "lifetime", serialize_result(result)
    return "overheads", _serialize_overheads(result)


def decode_result(kind: str, payload: Dict) -> CellResult:
    """Inverse of :func:`encode_result`."""
    if kind == "overheads":
        return _deserialize_overheads(payload)
    return deserialize_result(payload)


class CellCache:
    """File-per-entry result cache addressed by cell fingerprint.

    ``hits`` / ``misses`` / ``corrupt`` count lookups over the
    instance's lifetime so callers (the CLI cache summary, the
    acceptance test) can report cache effectiveness.  ``corrupt``
    counts entries that existed but failed to decode — each one is
    also a miss, and the bad file is quarantined as
    ``<fingerprint>.json.corrupt`` for post-mortem instead of being
    silently overwritten.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        # Fail fast on an unusable location (e.g. --cache-dir pointing
        # at a regular file) instead of mid-campaign on the first put.
        try:
            os.makedirs(directory, exist_ok=True)
        except OSError as error:
            raise ConfigError(
                f"cache directory {directory!r} is not usable: {error}"
            ) from error

    def path_for(self, fingerprint: str) -> str:
        """File backing one cache entry."""
        return os.path.join(self.directory, f"{fingerprint}.json")

    def _quarantine(self, path: str) -> None:
        """Move a corrupt entry aside as ``<name>.corrupt``."""
        try:
            os.replace(path, f"{path}.corrupt")
        except OSError:
            # Quarantine is best-effort; a vanished or unmovable file
            # still decodes as a miss and gets rewritten on put().
            pass

    def get(self, cell: ExperimentCell) -> Optional[CellResult]:
        """Cached result for ``cell``, or None.

        A missing entry is a plain miss.  An entry that exists but
        fails to decode is a miss *and* increments ``corrupt``; the bad
        file is renamed to ``<fingerprint>.json.corrupt`` so a
        half-written or bit-rotted file can never poison a campaign yet
        stays around for diagnosis.
        """
        path = self.path_for(cell_fingerprint(cell))
        try:
            with open(path) as handle:
                record = json.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self.misses += 1
            self.corrupt += 1
            self._quarantine(path)
            return None
        if not isinstance(record, dict):
            self.misses += 1
            self.corrupt += 1
            self._quarantine(path)
            return None
        if record.get("format") != CACHE_FORMAT_VERSION:
            self.misses += 1
            return None
        try:
            result = decode_result(record["kind"], record["payload"])
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            self.corrupt += 1
            self._quarantine(path)
            return None
        self.hits += 1
        return result

    def put(self, cell: ExperimentCell, result: CellResult) -> None:
        """Persist ``result`` atomically under the cell's fingerprint."""
        os.makedirs(self.directory, exist_ok=True)
        fingerprint = cell_fingerprint(cell)
        kind, payload = encode_result(result)
        record = {
            "format": CACHE_FORMAT_VERSION,
            "cell": cell.describe(),
            "kind": kind,
            "payload": payload,
        }
        path = self.path_for(fingerprint)
        temp_path = f"{path}.{_next_temp_suffix()}"
        try:
            with open(temp_path, "w") as handle:
                json.dump(record, handle, sort_keys=True)
            os.replace(temp_path, path)
        except BaseException:
            # json.dump can die mid-write (disk full, unserializable
            # payload, Ctrl-C); never leave the orphaned temp behind.
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        maybe_corrupt(fingerprint, path)

    def summary(self) -> str:
        """One-line hit/miss/corrupt report for the CLI progress stream."""
        line = f"cache: {self.hits} hit(s), {self.misses} miss(es)"
        if self.corrupt:
            line += f", {self.corrupt} corrupt entr(ies) quarantined"
        return line

    def __len__(self) -> int:
        if not os.path.isdir(self.directory):
            return 0
        return sum(1 for name in os.listdir(self.directory) if name.endswith(".json"))
