"""Content-addressed on-disk cache of experiment-cell results.

Every cell is deterministic given its spec (see
:mod:`repro.exec.cells`), so its result can be stored once and replayed
forever — a full ``twl-repro all`` campaign re-run after an unrelated
edit becomes near-instant.  Entries live one-file-per-cell under a
cache directory (default ``~/.cache/twl-repro/``, override with
``--cache-dir`` / ``TWL_REPRO_CACHE_DIR``), named by the cell's
:func:`~repro.exec.hashing.cell_fingerprint`:

    ~/.cache/twl-repro/
        6c53…e2a1.json    {"cell": "twl_swp×scan seed=2017", "kind": …}

One file per entry (rather than one big JSON) keeps concurrent
campaigns safe: writes are atomic ``os.replace`` renames and two
processes caching the same cell simply produce the same file.

Invalidation is by construction: the fingerprint covers the cell spec
and ``repro.version.__version__``, so any spec or version change maps
to a fresh key and the stale file is simply never read again.  What the
fingerprint *cannot* see is an edit to the simulation code itself —
after changing scheme behaviour, bump the version or pass
``--no-cache`` (the rules are spelled out in ``docs/performance.md``).
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional

from ..errors import ConfigError
from ..sim.cache import deserialize_result, serialize_result
from ..sim.lifetime import LifetimeResult
from ..sim.metrics import SchemeOverheads
from .cells import CellResult, ExperimentCell
from .hashing import CACHE_FORMAT_VERSION, cell_fingerprint

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "TWL_REPRO_CACHE_DIR"


def default_cache_dir() -> str:
    """The default on-disk cache location.

    ``$TWL_REPRO_CACHE_DIR`` wins, then ``$XDG_CACHE_HOME/twl-repro``,
    then ``~/.cache/twl-repro``.
    """
    override = os.environ.get(CACHE_DIR_ENV, "").strip()
    if override:
        return override
    xdg = os.environ.get("XDG_CACHE_HOME", "").strip()
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "twl-repro")


def _serialize_overheads(result: SchemeOverheads) -> Dict:
    return {
        "scheme": result.scheme,
        "workload": result.workload,
        "demand_writes": result.demand_writes,
        "swap_write_ratio": result.swap_write_ratio,
        "swap_event_ratio": result.swap_event_ratio,
        "extra_stats": dict(result.extra_stats),
    }


def _deserialize_overheads(record: Dict) -> SchemeOverheads:
    return SchemeOverheads(
        scheme=record["scheme"],
        workload=record["workload"],
        demand_writes=record["demand_writes"],
        swap_write_ratio=record["swap_write_ratio"],
        swap_event_ratio=record["swap_event_ratio"],
        extra_stats=dict(record["extra_stats"]),
    )


class CellCache:
    """File-per-entry result cache addressed by cell fingerprint.

    ``hits`` / ``misses`` count lookups over the instance's lifetime so
    callers (the CLI progress line, the acceptance test) can report
    cache effectiveness.
    """

    def __init__(self, directory: str):
        self.directory = directory
        self.hits = 0
        self.misses = 0
        # Fail fast on an unusable location (e.g. --cache-dir pointing
        # at a regular file) instead of mid-campaign on the first put.
        try:
            os.makedirs(directory, exist_ok=True)
        except OSError as error:
            raise ConfigError(
                f"cache directory {directory!r} is not usable: {error}"
            ) from error

    def path_for(self, fingerprint: str) -> str:
        """File backing one cache entry."""
        return os.path.join(self.directory, f"{fingerprint}.json")

    def get(self, cell: ExperimentCell) -> Optional[CellResult]:
        """Cached result for ``cell``, or None.

        A corrupt or unreadable entry counts as a miss (it will be
        overwritten on the next :meth:`put`), so a half-written file
        can never poison a campaign.
        """
        path = self.path_for(cell_fingerprint(cell))
        try:
            with open(path) as handle:
                record = json.load(handle)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        if record.get("format") != CACHE_FORMAT_VERSION:
            self.misses += 1
            return None
        self.hits += 1
        if record["kind"] == "overheads":
            return _deserialize_overheads(record["payload"])
        return deserialize_result(record["payload"])

    def put(self, cell: ExperimentCell, result: CellResult) -> None:
        """Persist ``result`` atomically under the cell's fingerprint."""
        os.makedirs(self.directory, exist_ok=True)
        fingerprint = cell_fingerprint(cell)
        if isinstance(result, LifetimeResult):
            kind, payload = "lifetime", serialize_result(result)
        else:
            kind, payload = "overheads", _serialize_overheads(result)
        record = {
            "format": CACHE_FORMAT_VERSION,
            "cell": cell.describe(),
            "kind": kind,
            "payload": payload,
        }
        path = self.path_for(fingerprint)
        temp_path = f"{path}.{os.getpid()}.tmp"
        with open(temp_path, "w") as handle:
            json.dump(record, handle)
        os.replace(temp_path, path)

    def __len__(self) -> int:
        if not os.path.isdir(self.directory):
            return 0
        return sum(1 for name in os.listdir(self.directory) if name.endswith(".json"))
