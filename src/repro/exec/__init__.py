"""Parallel experiment execution with on-disk result caching.

The executor layer turns the reproduction's figure/table loops into
declarative grids of independent cells:

* :mod:`repro.exec.cells` — :class:`ExperimentCell` specs and the
  single-cell runner;
* :mod:`repro.exec.hashing` — stable content fingerprints keying the
  cache;
* :mod:`repro.exec.cache` — :class:`CellCache`, one JSON file per cell
  under ``~/.cache/twl-repro/``;
* :mod:`repro.exec.executor` — serial or process-pool execution with
  progress lines and per-cell timing;
* :mod:`repro.exec.deadline` — :class:`CellDeadline`, the portable
  any-thread per-cell wall-clock budget behind ``FailurePolicy.timeout``;
* :mod:`repro.exec.policy` — :class:`FailurePolicy` (retries with
  deterministic backoff, per-cell timeout, fail-fast vs keep-going);
* :mod:`repro.exec.checkpoint` — :class:`CheckpointJournal`,
  append-only JSONL campaign manifest for crash-safe ``--resume``;
* :mod:`repro.exec.faults` — deterministic, env-activated fault
  injection used by ``tests/test_resilience.py`` and the CI smoke job.

Typical use::

    from repro.exec import attack_cell, run_cells, CellCache, default_cache_dir

    cells = [attack_cell(s, a) for s in ("twl_swp", "bwl") for a in ("scan", "repeat")]
    results = run_cells(cells, jobs=4, cache=CellCache(default_cache_dir()))

``twl-repro <experiment> --jobs N`` is the CLI face of the same layer.
"""

from .cells import (
    KIND_ATTACK,
    KIND_OVERHEADS,
    KIND_STREAM,
    KIND_TRACE,
    CellResult,
    ExperimentCell,
    attack_cell,
    cell_snapshot_path,
    overheads_cell,
    run_cell,
    stream_cell,
    trace_cell,
)
from .hashing import CACHE_FORMAT_VERSION, canonical_value, cell_fingerprint
from .policy import (
    DEFAULT_FAILURE_POLICY,
    ON_ERROR_FAIL_FAST,
    ON_ERROR_KEEP_GOING,
    CellFailure,
    FailurePolicy,
)
from .faults import FAULTS_ENV, FaultInjectionError, FaultPlan, active_plan
from .cache import CellCache, decode_result, default_cache_dir, encode_result
from .checkpoint import CheckpointJournal
from .deadline import CellDeadline, DeadlineReached
from .executor import CellOutcome, execute_cells, run_cells, run_setup_cells

__all__ = [
    "DEFAULT_FAILURE_POLICY",
    "ON_ERROR_FAIL_FAST",
    "ON_ERROR_KEEP_GOING",
    "CellFailure",
    "FailurePolicy",
    "FAULTS_ENV",
    "FaultInjectionError",
    "FaultPlan",
    "active_plan",
    "CheckpointJournal",
    "CellDeadline",
    "DeadlineReached",
    "decode_result",
    "encode_result",
    "KIND_ATTACK",
    "KIND_OVERHEADS",
    "KIND_STREAM",
    "KIND_TRACE",
    "CellResult",
    "ExperimentCell",
    "attack_cell",
    "cell_snapshot_path",
    "overheads_cell",
    "run_cell",
    "stream_cell",
    "trace_cell",
    "CACHE_FORMAT_VERSION",
    "canonical_value",
    "cell_fingerprint",
    "CellCache",
    "default_cache_dir",
    "CellOutcome",
    "execute_cells",
    "run_cells",
    "run_setup_cells",
]
