"""Parallel experiment execution with on-disk result caching.

The executor layer turns the reproduction's figure/table loops into
declarative grids of independent cells:

* :mod:`repro.exec.cells` — :class:`ExperimentCell` specs and the
  single-cell runner;
* :mod:`repro.exec.hashing` — stable content fingerprints keying the
  cache;
* :mod:`repro.exec.cache` — :class:`CellCache`, one JSON file per cell
  under ``~/.cache/twl-repro/``;
* :mod:`repro.exec.executor` — serial or process-pool execution with
  progress lines and per-cell timing.

Typical use::

    from repro.exec import attack_cell, run_cells, CellCache, default_cache_dir

    cells = [attack_cell(s, a) for s in ("twl_swp", "bwl") for a in ("scan", "repeat")]
    results = run_cells(cells, jobs=4, cache=CellCache(default_cache_dir()))

``twl-repro <experiment> --jobs N`` is the CLI face of the same layer.
"""

from .cells import (
    KIND_ATTACK,
    KIND_OVERHEADS,
    KIND_TRACE,
    CellResult,
    ExperimentCell,
    attack_cell,
    overheads_cell,
    run_cell,
    trace_cell,
)
from .hashing import CACHE_FORMAT_VERSION, canonical_value, cell_fingerprint
from .cache import CellCache, default_cache_dir
from .executor import CellOutcome, execute_cells, run_cells, run_setup_cells

__all__ = [
    "KIND_ATTACK",
    "KIND_OVERHEADS",
    "KIND_TRACE",
    "CellResult",
    "ExperimentCell",
    "attack_cell",
    "overheads_cell",
    "run_cell",
    "trace_cell",
    "CACHE_FORMAT_VERSION",
    "canonical_value",
    "cell_fingerprint",
    "CellCache",
    "default_cache_dir",
    "CellOutcome",
    "execute_cells",
    "run_cells",
    "run_setup_cells",
]
