"""Failure policy for campaign execution.

A long campaign (40 Figure-6 cells, hundreds of ablation cells) is
exactly the workload where partial failure is the common case: a worker
gets OOM-killed, a shared filesystem hiccups, one cell hangs.
:class:`FailurePolicy` is the single knob bundle describing how the
executor (:mod:`repro.exec.executor`) responds:

* ``max_retries`` — failed cell attempts are re-run up to this many
  extra times.  A cell's result is a pure function of its spec, so a
  retry that succeeds is *bit-identical* to a first-attempt success —
  retrying is always safe.
* ``timeout`` — per-cell wall-clock budget in seconds.  A cell running
  past it fails with :class:`~repro.errors.CellTimeoutError` (a
  :class:`~repro.errors.CellExecutionError`) naming the cell.
* ``on_error`` — ``"fail-fast"`` (default: first exhausted failure
  aborts the campaign, matching historical behavior) or
  ``"keep-going"`` (every runnable cell is finished; failures are
  recorded as :class:`CellFailure` outcomes and a single
  :class:`~repro.errors.CampaignError` summarizes them at the end).
* backoff — retries wait ``backoff_base * backoff_factor**(attempt-1)``
  seconds, scaled by a jitter factor drawn *deterministically* from the
  :mod:`repro.rng` streams (keyed by the cell fingerprint, the attempt
  number and ``backoff_seed``), so two campaigns with the same policy
  sleep the same schedule — no wall-clock or OS entropy enters the run.

Like ``jobs`` and ``batch_size``, every field here is an **execution
knob**: none of them participates in the cell cache fingerprint,
because none of them can change a cell's result (see
``docs/robustness.md``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..rng.streams import make_generator

#: ``on_error`` modes.
ON_ERROR_FAIL_FAST = "fail-fast"
ON_ERROR_KEEP_GOING = "keep-going"
_ON_ERROR_MODES = (ON_ERROR_FAIL_FAST, ON_ERROR_KEEP_GOING)


@dataclass(frozen=True)
class FailurePolicy:
    """Execution-resilience knobs for :func:`repro.exec.execute_cells`.

    The default policy reproduces the historical executor exactly: no
    retries, no timeout, fail-fast on the first cell error.
    """

    #: Extra attempts after the first failure (0 = no retries).
    max_retries: int = 0
    #: Seconds before the first retry (0 disables backoff sleeping).
    backoff_base: float = 0.05
    #: Multiplier applied per additional retry.
    backoff_factor: float = 2.0
    #: Jitter half-width as a fraction of the nominal delay (0..1).
    backoff_jitter: float = 0.25
    #: Root seed of the deterministic jitter stream.
    backoff_seed: int = 2017
    #: Per-cell wall-clock budget in seconds (None = unlimited).
    timeout: float | None = None
    #: ``"fail-fast"`` or ``"keep-going"``.
    on_error: str = ON_ERROR_FAIL_FAST
    #: Pool rebuilds tolerated after worker crashes before the executor
    #: degrades to serial execution for the remaining cells.
    max_pool_rebuilds: int = 2

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0:
            raise ConfigError(f"backoff_base must be >= 0, got {self.backoff_base}")
        if self.backoff_factor < 1.0:
            raise ConfigError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ConfigError(
                f"backoff_jitter must be in [0, 1], got {self.backoff_jitter}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigError(f"timeout must be positive, got {self.timeout}")
        if self.on_error not in _ON_ERROR_MODES:
            raise ConfigError(
                f"unknown on_error mode {self.on_error!r}; expected {_ON_ERROR_MODES}"
            )
        if self.max_pool_rebuilds < 0:
            raise ConfigError(
                f"max_pool_rebuilds must be >= 0, got {self.max_pool_rebuilds}"
            )

    @property
    def keep_going(self) -> bool:
        """Whether failures are collected instead of aborting."""
        return self.on_error == ON_ERROR_KEEP_GOING

    def retry_delay(self, fingerprint: str, attempt: int) -> float:
        """Deterministic backoff delay before retry ``attempt`` (1-based).

        >>> policy = FailurePolicy(max_retries=3, backoff_base=0.1)
        >>> policy.retry_delay("abcd", 1) == policy.retry_delay("abcd", 1)
        True
        >>> policy.retry_delay("abcd", 2) != policy.retry_delay("abcd", 1)
        True
        """
        if self.backoff_base <= 0:
            return 0.0
        nominal = self.backoff_base * self.backoff_factor ** max(0, attempt - 1)
        if self.backoff_jitter == 0:
            return nominal
        unit = make_generator(self.backoff_seed, "retry", fingerprint, attempt)
        swing = self.backoff_jitter * (2.0 * float(unit.random()) - 1.0)
        return nominal * (1.0 + swing)


#: Shared default instance — frozen, so safe to reuse everywhere.
DEFAULT_FAILURE_POLICY = FailurePolicy()


@dataclass(frozen=True)
class CellFailure:
    """Structured record of one cell that exhausted its retry budget."""

    #: ``cell.describe()`` identity of the failed cell.
    cell: str
    #: Cache fingerprint of the failed cell.
    fingerprint: str
    #: Message of the final :class:`~repro.errors.CellExecutionError`.
    error: str
    #: Total attempts made (1 = no retries were granted or needed).
    attempts: int

    def __str__(self) -> str:
        return f"{self.cell} after {self.attempts} attempt(s): {self.error}"
