"""Process-pool execution of experiment cells.

:func:`execute_cells` takes a list of :class:`ExperimentCell` specs and
returns their results in input order, fanning the uncached cells out
across a :class:`concurrent.futures.ProcessPoolExecutor` when
``jobs > 1``.  Guarantees:

* **Bit-identical to serial.**  A cell's result is a pure function of
  its spec (all RNG streams derive from the cell seed), and workers
  receive only the spec, so ``jobs=N`` reproduces ``jobs=1`` exactly —
  enforced by ``tests/test_exec.py``.
* **Failures keep their identity.**  Workers wrap any
  :class:`~repro.errors.ReproError` into a single-string
  :class:`~repro.errors.CellExecutionError` naming the failing cell
  (``cell twl_swp×scan seed=3: …``) — both because a bare pool
  traceback is useless at 40 cells, and because multi-argument
  exceptions like ``PageWornOutError`` do not survive unpickling
  across the pool boundary.
* **Observable progress.**  Each completed cell emits one line —
  ``[12/40] twl_swp×scan seed=3 … 1.8s (cached)`` — through the
  ``progress`` callback (default: stderr), with per-cell wall-clock
  timing collected in the returned :class:`CellOutcome` records.

The cache (:class:`~repro.exec.cache.CellCache`) is consulted in the
parent before any work is scheduled and written back from the parent as
results arrive, so workers never touch cache files.
"""

from __future__ import annotations

import sys
import time
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence, Union

from ..errors import CellExecutionError, error_context
from .cache import CellCache
from .cells import CellResult, ExperimentCell, run_cell

#: ``progress=False`` silences output; ``None`` selects the default
#: stderr printer; a callable receives each formatted line.
ProgressHook = Union[None, bool, Callable[[str], None]]


@dataclass(frozen=True)
class CellOutcome:
    """One executed (or cache-served) cell with its timing."""

    cell: ExperimentCell
    result: CellResult
    seconds: float
    cached: bool


def _default_progress(line: str) -> None:
    print(line, file=sys.stderr, flush=True)


def _resolve_progress(progress: ProgressHook) -> Optional[Callable[[str], None]]:
    if progress is None or progress is True:
        return _default_progress
    if progress is False:
        return None
    return progress


def _progress_line(
    index: int, total: int, cell: ExperimentCell, seconds: float, cached: bool
) -> str:
    suffix = " (cached)" if cached else ""
    return f"[{index}/{total}] {cell.describe()} … {seconds:.1f}s{suffix}"


def _execute_one(cell: ExperimentCell) -> CellResult:
    """Worker entry point (module-level so it pickles under spawn)."""
    with error_context(f"cell {cell.describe()}", CellExecutionError):
        return run_cell(cell)


def execute_cells(
    cells: Sequence[ExperimentCell],
    jobs: int = 1,
    cache: Optional[CellCache] = None,
    progress: ProgressHook = None,
) -> List[CellOutcome]:
    """Run every cell, in parallel when ``jobs > 1``, returning outcomes.

    Results come back in input order regardless of completion order.
    On the first cell failure the remaining futures are cancelled and
    the :class:`~repro.errors.CellExecutionError` is re-raised; results
    of cells that did finish are still written to the cache, so a
    repaired re-run resumes where the failure struck.
    """
    report = _resolve_progress(progress)
    total = len(cells)
    outcomes: List[Optional[CellOutcome]] = [None] * total
    pending: List[int] = []
    done = 0

    for index, cell in enumerate(cells):
        cached = cache.get(cell) if cache is not None else None
        if cached is not None:
            done += 1
            outcomes[index] = CellOutcome(cell, cached, 0.0, cached=True)
            if report:
                report(_progress_line(done, total, cell, 0.0, cached=True))
        else:
            pending.append(index)

    if not pending:
        return [outcome for outcome in outcomes if outcome is not None]

    def finish(index: int, result: CellResult, seconds: float) -> None:
        nonlocal done
        done += 1
        cell = cells[index]
        outcomes[index] = CellOutcome(cell, result, seconds, cached=False)
        if cache is not None:
            cache.put(cell, result)
        if report:
            report(_progress_line(done, total, cell, seconds, cached=False))

    if jobs <= 1 or len(pending) == 1:
        for index in pending:
            start = time.perf_counter()
            result = _execute_one(cells[index])
            finish(index, result, time.perf_counter() - start)
    else:
        workers = min(jobs, len(pending))
        start_times = {}
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {}
            for index in pending:
                start_times[index] = time.perf_counter()
                futures[pool.submit(_execute_one, cells[index])] = index
            not_done = set(futures)
            while not_done:
                finished, not_done = wait(not_done, return_when=FIRST_EXCEPTION)
                for future in finished:
                    index = futures[future]
                    # .result() re-raises a worker failure; cancel the
                    # rest so the campaign stops at the first error.
                    try:
                        result = future.result()
                    except Exception:
                        for other in not_done:
                            other.cancel()
                        raise
                    finish(index, result, time.perf_counter() - start_times[index])

    return [outcome for outcome in outcomes if outcome is not None]


def run_cells(
    cells: Sequence[ExperimentCell],
    jobs: int = 1,
    cache: Optional[CellCache] = None,
    progress: ProgressHook = False,
) -> List[CellResult]:
    """Like :func:`execute_cells` but returning bare results."""
    return [
        outcome.result
        for outcome in execute_cells(cells, jobs=jobs, cache=cache, progress=progress)
    ]


def run_setup_cells(
    cells: Sequence[ExperimentCell],
    setup,
    progress: ProgressHook = None,
) -> List[CellResult]:
    """Run cells under an :class:`~repro.experiments.setups.ExperimentSetup`.

    Reads the setup's ``jobs``, ``cache_dir`` and ``batch_size`` fields
    — the single integration point through which every figure/ablation
    module gets parallelism, caching and the batched write protocol
    (cells that do not pin their own ``batch_size`` inherit the
    setup's).  Progress defaults to the stderr printer only when a cell
    actually has to run or more than one is requested (a single cached
    lookup stays quiet so helper calls don't chatter).
    """
    cache = CellCache(setup.cache_dir) if getattr(setup, "cache_dir", None) else None
    batch_size = getattr(setup, "batch_size", 1)
    if batch_size > 1:
        cells = [
            replace(cell, batch_size=batch_size) if cell.batch_size == 1 else cell
            for cell in cells
        ]
    if progress is None and len(cells) <= 1:
        progress = False
    return run_cells(
        cells, jobs=getattr(setup, "jobs", 1), cache=cache, progress=progress
    )
