"""Fault-tolerant process-pool execution of experiment cells.

:func:`execute_cells` takes a list of :class:`ExperimentCell` specs and
returns their results in input order, fanning the uncached cells out
across a :class:`concurrent.futures.ProcessPoolExecutor` when
``jobs > 1``.  Guarantees:

* **Bit-identical to serial.**  A cell's result is a pure function of
  its spec (all RNG streams derive from the cell seed), and workers
  receive only the spec, so ``jobs=N`` reproduces ``jobs=1`` exactly —
  enforced by ``tests/test_exec.py``.  The same purity makes *retries,
  pool rebuilds and checkpoint resume* identity-preserving: re-running
  a cell can only reproduce the result the clean run would have
  produced (``tests/test_resilience.py`` enforces that too).
* **Failures keep their identity.**  Workers wrap any
  :class:`~repro.errors.ReproError` into a single-string
  :class:`~repro.errors.CellExecutionError` naming the failing cell
  (``cell twl_swp×scan seed=3: …``) — both because a bare pool
  traceback is useless at 40 cells, and because multi-argument
  exceptions like ``PageWornOutError`` do not survive unpickling
  across the pool boundary.
* **Partial progress is never lost.**  Results are written to the
  cache and the checkpoint journal *as they complete*, before any
  sibling's failure can abort the campaign — including siblings that
  finished in the same completion batch as, or were still running at,
  the moment of a fail-fast abort.
* **Observable progress.**  Each completed cell emits one line —
  ``[12/40] twl_swp×scan seed=3 … 1.8s (cached)`` — through the
  ``progress`` callback (default: stderr), with per-cell wall-clock
  timing collected in the returned :class:`CellOutcome` records.

Resilience is governed by a :class:`~repro.exec.policy.FailurePolicy`
(retries with deterministic backoff, per-cell wall-clock timeout,
``fail-fast`` vs ``keep-going``) and a
:class:`~repro.exec.checkpoint.CheckpointJournal` (crash-safe resume).
A worker killed outright (OOM, SIGKILL) surfaces as
``BrokenProcessPoolError``; the executor rebuilds the pool and
re-submits the in-flight cells, degrading to serial execution once the
pool has broken more than ``max_pool_rebuilds`` times.  The per-cell
timeout is enforced *inside* the worker via a
:class:`~repro.exec.deadline.CellDeadline` watchdog so no pool teardown
is needed to reclaim a hung cell — and, unlike the earlier
``SIGALRM``-based budget, it enforces on any thread, which is how the
campaign server (:mod:`repro.serve`) and serially-degraded pools drive
cells.

The cache (:class:`~repro.exec.cache.CellCache`) is consulted in the
parent before any work is scheduled and written back from the parent as
results arrive, so workers never touch cache files.
"""

from __future__ import annotations

import sys
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..engine import discard_snapshot
from ..engine import interrupt as engine_interrupt
from ..errors import (
    CampaignError,
    CellExecutionError,
    CellTimeoutError,
    error_context,
)
from .cache import CellCache
from .cells import CellResult, ExperimentCell, cell_snapshot_path, run_cell
from .checkpoint import CheckpointJournal
from .deadline import CellDeadline, DeadlineReached
from .faults import maybe_inject
from .hashing import cell_fingerprint
from .policy import DEFAULT_FAILURE_POLICY, CellFailure, FailurePolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..experiments.setups import ExperimentSetup

#: ``progress=False`` silences output; ``None`` selects the default
#: stderr printer; a callable receives each formatted line.
ProgressHook = Union[None, bool, Callable[[str], None]]


@dataclass(frozen=True)
class CellOutcome:
    """One executed (or cache-/journal-served) cell with its timing."""

    cell: ExperimentCell
    result: CellResult
    seconds: float
    cached: bool
    #: True when the result came from a checkpoint journal (a resumed
    #: campaign) rather than fresh execution; such outcomes also report
    #: ``cached=True``.
    resumed: bool = False


def _default_progress(line: str) -> None:
    print(line, file=sys.stderr, flush=True)


def _resolve_progress(progress: ProgressHook) -> Optional[Callable[[str], None]]:
    if progress is None or progress is True:
        return _default_progress
    if progress is False:
        return None
    return progress


def _progress_line(
    index: int,
    total: int,
    cell: ExperimentCell,
    seconds: float,
    cached: bool,
    resumed: bool = False,
) -> str:
    suffix = ""
    if resumed:
        suffix = " (resumed)"
    elif cached:
        suffix = " (cached)"
    return f"[{index}/{total}] {cell.describe()} … {seconds:.1f}s{suffix}"


def _execute_one(
    cell: ExperimentCell, timeout: Optional[float] = None
) -> CellResult:
    """Worker entry point (module-level so it pickles under spawn).

    When ``timeout`` is set, a :class:`~repro.exec.deadline.CellDeadline`
    watchdog guards the cell: expiry raises
    :class:`~repro.errors.CellTimeoutError` naming the cell.  The budget
    is enforced worker-side so a hung cell never requires tearing down
    the pool, and — unlike the ``SIGALRM`` interval timer it replaces —
    it works on *any* thread: pool workers, the serial path, asyncio
    executor threads under :mod:`repro.serve`.  Only interpreters
    without the CPython async-exception hook degrade to unenforced
    (with a one-line warning from :meth:`CellDeadline.arm`).
    """
    if timeout is None:
        with error_context(f"cell {cell.describe()}", CellExecutionError):
            # Pool workers are reused across cells: a kill armed for a
            # previous cell (but never reached) must not leak.
            engine_interrupt.clear()
            maybe_inject(cell)
            return run_cell(cell)
    try:
        with CellDeadline(timeout):
            with error_context(f"cell {cell.describe()}", CellExecutionError):
                engine_interrupt.clear()
                maybe_inject(cell)
                return run_cell(cell)
    except DeadlineReached:
        # A timed-out cell abandons its run: any snapshot it emitted
        # (plus stray atomic-write temp files) is dead state that
        # would otherwise leak into the cache directory — and worse,
        # seed a *resume* of a run we just declared over-budget.
        snapshot = cell_snapshot_path(cell)
        if snapshot is not None:
            try:
                discard_snapshot(snapshot)
            except OSError:
                pass
        raise CellTimeoutError(
            f"cell {cell.describe()} timed out after {timeout:.6g}s wall-clock"
        ) from None


def execute_cells(
    cells: Sequence[ExperimentCell],
    jobs: int = 1,
    cache: Optional[CellCache] = None,
    progress: ProgressHook = None,
    policy: Optional[FailurePolicy] = None,
    journal: Optional[CheckpointJournal] = None,
) -> List[CellOutcome]:
    """Run every cell, in parallel when ``jobs > 1``, returning outcomes.

    Results come back in input order regardless of completion order.
    ``policy`` (default: no retries, no timeout, ``fail-fast``) governs
    failure handling; ``journal`` records completed/failed cells
    durably and serves results recorded by a previous, interrupted run.

    Under ``fail-fast`` the first cell to exhaust its retry budget
    aborts the campaign with its :class:`~repro.errors.CellExecutionError`
    — but only after every already-finished sibling's result has been
    written to the cache and journal, so a repaired re-run resumes
    where the failure struck.  Under ``keep-going`` every runnable cell
    is finished and a single :class:`~repro.errors.CampaignError`
    summarizing the structured :class:`~repro.exec.policy.CellFailure`
    records is raised at the end.
    """
    policy = policy if policy is not None else DEFAULT_FAILURE_POLICY
    report = _resolve_progress(progress)
    total = len(cells)
    fingerprints = [cell_fingerprint(cell) for cell in cells]
    outcomes: List[Optional[CellOutcome]] = [None] * total
    failures: List[CellFailure] = []
    attempts: Dict[int, int] = {}
    pending: List[int] = []
    start_times: Dict[int, float] = {}
    done = 0

    def note(line: str) -> None:
        if report:
            report(line)

    def finish(index: int, result: CellResult, seconds: float, source: str = "run") -> None:
        nonlocal done
        done += 1
        cell = cells[index]
        resumed = source == "journal"
        cached = source != "run"
        outcomes[index] = CellOutcome(
            cell, result, seconds, cached=cached, resumed=resumed
        )
        # Write-back precedes the progress line so an interrupt raised
        # by the progress hook (or Ctrl-C between cells) always leaves
        # this cell durably recorded — the resumability contract.
        if cache is not None and source != "cache":
            cache.put(cell, result)
        if journal is not None:
            journal.record_done(cell, fingerprints[index], result, seconds)
        note(_progress_line(done, total, cell, seconds, cached=cached, resumed=resumed))

    def fail(index: int, error: BaseException, attempt_count: int) -> None:
        nonlocal done
        done += 1
        cell = cells[index]
        failures.append(
            CellFailure(
                cell=cell.describe(),
                fingerprint=fingerprints[index],
                error=str(error),
                attempts=attempt_count,
            )
        )
        if journal is not None:
            journal.record_failed(cell, fingerprints[index], str(error))
        note(
            f"[{done}/{total}] {cell.describe()} FAILED "
            f"after {attempt_count} attempt(s): {error}"
        )

    def grant_retry(index: int, error: BaseException) -> bool:
        """Charge one failed attempt; True when a retry is granted."""
        count = attempts.get(index, 0) + 1
        attempts[index] = count
        if count > policy.max_retries:
            return False
        delay = policy.retry_delay(fingerprints[index], count)
        note(
            f"[retry] {cells[index].describe()} attempt "
            f"{count + 1}/{policy.max_retries + 1} in {delay:.2f}s: {error}"
        )
        if delay > 0:
            time.sleep(delay)
        return True

    for index, cell in enumerate(cells):
        if journal is not None:
            resumed_result = journal.result_for(fingerprints[index])
            if resumed_result is not None:
                finish(index, resumed_result, 0.0, source="journal")
                continue
        if cache is not None:
            hit = cache.get(cell)
            if hit is not None:
                finish(index, hit, 0.0, source="cache")
                continue
        pending.append(index)

    def run_serial(indices: Sequence[int]) -> None:
        for index in indices:
            while True:
                start = time.perf_counter()
                try:
                    result = _execute_one(cells[index], policy.timeout)
                except CellExecutionError as error:
                    if grant_retry(index, error):
                        continue
                    if policy.keep_going:
                        fail(index, error, attempts[index])
                        break
                    raise
                else:
                    finish(index, result, time.perf_counter() - start)
                    break

    def run_pool(indices: Sequence[int]) -> List[int]:
        """Pool execution; returns the indices left for serial fallback."""
        workers = min(jobs, len(indices))
        rebuilds = 0
        pool = ProcessPoolExecutor(max_workers=workers)
        futures: Dict[Future, int] = {}

        def submit(index: int) -> None:
            start_times[index] = time.perf_counter()
            futures[pool.submit(_execute_one, cells[index], policy.timeout)] = index

        def drain_on_abort() -> None:
            """Before a fail-fast raise: cancel what we can, then bank
            the results of every cell that still manages to finish."""
            for future in futures:
                future.cancel()
            if not futures:
                return
            settled, _ = wait(set(futures))
            for future in settled:
                index = futures[future]
                if future.cancelled() or future.exception() is not None:
                    continue
                finish(index, future.result(), time.perf_counter() - start_times[index])

        for index in indices:
            submit(index)
        try:
            while futures:
                settled, _ = wait(set(futures), return_when=FIRST_COMPLETED)
                successes: List[Tuple[int, CellResult]] = []
                errors: List[Tuple[int, BaseException]] = []
                broken: List[int] = []
                for future in settled:
                    index = futures.pop(future)
                    if future.cancelled():
                        broken.append(index)
                        continue
                    error = future.exception()
                    if error is None:
                        successes.append((index, future.result()))
                    elif isinstance(error, BrokenProcessPool):
                        broken.append(index)
                    else:
                        errors.append((index, error))
                # Drain every finished sibling first: their results hit
                # the cache/journal even when another future in this
                # same batch is about to abort the campaign.
                for index, result in successes:
                    finish(index, result, time.perf_counter() - start_times[index])
                for index, error in errors:
                    if not isinstance(error, CellExecutionError):
                        # An exception that escaped the worker wrapper
                        # (a programming error); keep the cell identity.
                        error = CellExecutionError(
                            f"cell {cells[index].describe()}: "
                            f"{type(error).__name__}: {error}"
                        )
                    if grant_retry(index, error):
                        submit(index)
                    elif policy.keep_going:
                        fail(index, error, attempts[index])
                    else:
                        drain_on_abort()
                        raise error
                if broken:
                    # A killed worker breaks every in-flight future at
                    # once; gather them all and either rebuild or
                    # degrade to serial.
                    broken.extend(futures.values())
                    futures.clear()
                    pool.shutdown(wait=False, cancel_futures=True)
                    rebuilds += 1
                    remaining = sorted(broken)
                    if rebuilds > policy.max_pool_rebuilds:
                        note(
                            f"[warning] worker pool broke {rebuilds} time(s); "
                            f"degrading to serial execution for "
                            f"{len(remaining)} remaining cell(s)"
                        )
                        return remaining
                    note(
                        f"[warning] worker pool broke (crashed worker?); "
                        f"rebuilding and re-submitting {len(remaining)} "
                        f"in-flight cell(s) "
                        f"(rebuild {rebuilds}/{policy.max_pool_rebuilds})"
                    )
                    pool = ProcessPoolExecutor(max_workers=workers)
                    for index in remaining:
                        submit(index)
            pool.shutdown(wait=True)
            return []
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    if pending:
        if jobs <= 1 or len(pending) == 1:
            run_serial(pending)
        else:
            run_serial(run_pool(pending))

    if cache is not None and report is not None and (total > 1 or cache.corrupt):
        report(cache.summary())
    if failures:
        raise CampaignError(failures)
    return [outcome for outcome in outcomes if outcome is not None]


def run_cells(
    cells: Sequence[ExperimentCell],
    jobs: int = 1,
    cache: Optional[CellCache] = None,
    progress: ProgressHook = False,
    policy: Optional[FailurePolicy] = None,
    journal: Optional[CheckpointJournal] = None,
) -> List[CellResult]:
    """Like :func:`execute_cells` but returning bare results."""
    return [
        outcome.result
        for outcome in execute_cells(
            cells,
            jobs=jobs,
            cache=cache,
            progress=progress,
            policy=policy,
            journal=journal,
        )
    ]


def run_setup_cells(
    cells: Sequence[ExperimentCell],
    setup: "ExperimentSetup",
    progress: ProgressHook = None,
) -> List[CellResult]:
    """Run cells under an :class:`~repro.experiments.setups.ExperimentSetup`.

    Reads the setup's ``jobs``, ``cache_dir``, ``batch_size``,
    ``snapshot_every``, ``failure`` and ``resume`` fields — the single
    integration point
    through which every figure/ablation module gets parallelism,
    caching, the batched write protocol and the failure policy (cells
    that do not pin their own ``batch_size`` inherit the setup's).  A
    ``resume`` path opens (creating if needed) the checkpoint journal
    there, so an interrupted campaign restarted with the same setup
    skips every cell the journal already records.  Progress defaults to
    the stderr printer only when a cell actually has to run or more
    than one is requested (a single cached lookup stays quiet so helper
    calls don't chatter).
    """
    cache = CellCache(setup.cache_dir) if getattr(setup, "cache_dir", None) else None
    batch_size = getattr(setup, "batch_size", 1)
    if batch_size > 1:
        cells = [
            replace(cell, batch_size=batch_size) if cell.batch_size == 1 else cell
            for cell in cells
        ]
    snapshot_every = getattr(setup, "snapshot_every", 0)
    snapshot_dir = getattr(setup, "cache_dir", None)
    if snapshot_every > 0 and snapshot_dir:
        # Snapshots live next to the cache entries they protect; cells
        # that pin their own cadence keep it.
        cells = [
            replace(cell, snapshot_every=snapshot_every, snapshot_dir=snapshot_dir)
            if cell.snapshot_every == 0
            else cell
            for cell in cells
        ]
    if progress is None and len(cells) <= 1:
        progress = False
    resume = getattr(setup, "resume", None)
    journal = CheckpointJournal(resume) if resume else None
    return run_cells(
        cells,
        jobs=getattr(setup, "jobs", 1),
        cache=cache,
        progress=progress,
        policy=getattr(setup, "failure", None),
        journal=journal,
    )
