"""Portable per-cell wall-clock deadlines.

The PR 3 timeout enforced a cell's wall-clock budget with ``SIGALRM`` —
perfect inside a pool worker (the cell runs on the worker's main
thread), silently *unenforced* anywhere else: signal handlers are
main-thread-only, so a cell driven from a non-main thread degraded to
warn-and-run.  That "anywhere else" is exactly how a long-lived service
drives cells — :mod:`repro.serve` executes them from asyncio executor
threads and from serially-degraded pools — so the hole became a
liability the moment the executor grew a server on top.

:class:`CellDeadline` replaces the alarm with a mechanism that works on
any thread and any platform with CPython:

* a daemon **watchdog thread** sleeps until a monotonic deadline
  (``clock()`` is injected, defaulting to ``time.monotonic`` — rule
  TWL002 keeps wall-clock reads inside :mod:`repro.exec`);
* on expiry it injects :class:`DeadlineReached` into the *executing*
  thread via ``PyThreadState_SetAsyncExc`` — the same CPython C-API
  hook ``KeyboardInterrupt`` delivery uses, raised at the next bytecode
  boundary;
* disarming neutralizes a pending injection, and the executor maps any
  escaped :class:`DeadlineReached` to
  :class:`~repro.errors.CellTimeoutError`, so the observable semantics
  of the SIGALRM era are preserved exactly.

The injection lands at a bytecode boundary, so a single very long C
call (a giant ``numpy`` batch, an uninterruptible ``time.sleep``)
defers delivery until it returns.  Engine batches are bounded, and the
fault harness's ``hang`` mode sleeps in slices for exactly this reason
— in practice expiry is detected within one watchdog tick.

On interpreters without the C-API hook (the ``ctypes.pythonapi``
probe fails) arming degrades to the historical warn-and-run behaviour
rather than failing the cell.
"""

from __future__ import annotations

import ctypes
import threading
import time
import warnings
from types import TracebackType
from typing import Callable, Optional, Type

__all__ = ["CellDeadline", "DeadlineReached"]

#: Watchdog re-check tick (seconds).  The watchdog sleeps on an event in
#: slices of at most this length before re-reading the injected clock,
#: so a test-supplied fake clock is honoured within one tick.
_WATCHDOG_TICK = 0.05


class DeadlineReached(BaseException):
    """Injected into the executing thread when a cell deadline expires.

    Derives from :class:`BaseException` (like ``KeyboardInterrupt``) so
    a stray ``except Exception`` inside simulation code cannot swallow
    the expiry; the executor converts it to
    :class:`~repro.errors.CellTimeoutError` at the cell boundary.
    """


def _async_exc_injector() -> Optional[Callable[[int, Optional[type]], int]]:
    """The CPython async-exception hook, or None off-CPython."""
    try:
        pythonapi = ctypes.pythonapi
        hook = pythonapi.PyThreadState_SetAsyncExc
    except AttributeError:  # pragma: no cover - non-CPython fallback
        return None

    def inject(thread_id: int, exc_type: Optional[type]) -> int:
        exc = ctypes.py_object(exc_type) if exc_type is not None else None
        return int(hook(ctypes.c_ulong(thread_id), exc))

    return inject


_INJECT = _async_exc_injector()


class CellDeadline:
    """Arm a wall-clock budget for the current thread; context manager.

    ::

        with CellDeadline(timeout):
            try:
                result = run_cell(cell)
            except DeadlineReached:
                raise CellTimeoutError(...) from None

    Entering arms a watchdog against the *entering* thread; exiting
    disarms it and neutralizes any injection that has not materialized
    yet.  The enter/exit window is the only region where
    :class:`DeadlineReached` can surface, but callers should still keep
    an outer ``except DeadlineReached`` for the closing race (a cell
    finishing in the same tick its budget expires): expiry always means
    the budget was genuinely exceeded.
    """

    def __init__(
        self,
        seconds: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if seconds <= 0:
            raise ValueError(f"deadline must be positive, got {seconds}")
        self.seconds = seconds
        self._clock = clock
        self._cancel = threading.Event()
        self._watchdog: Optional[threading.Thread] = None
        self._target_thread: Optional[int] = None
        self._fired = False

    @property
    def fired(self) -> bool:
        """Whether the watchdog injected an expiry (for diagnostics)."""
        return self._fired

    def _watch(self, deadline: float) -> None:
        while not self._cancel.is_set():
            remaining = deadline - self._clock()
            if remaining <= 0:
                # Re-check cancellation one last time so a disarm that
                # raced the expiry wins: the cell finished in budget.
                if self._cancel.is_set():
                    return
                self._fired = True
                if _INJECT is not None and self._target_thread is not None:
                    pending = _INJECT(self._target_thread, DeadlineReached)
                    if pending > 1:  # pragma: no cover - defensive
                        _INJECT(self._target_thread, None)
                return
            self._cancel.wait(min(remaining, _WATCHDOG_TICK))

    def arm(self) -> bool:
        """Start enforcement against the calling thread.

        Returns False (after a one-line warning) when the interpreter
        offers no injection hook — the historical degrade-to-unenforced
        behaviour, now reserved for genuinely unenforceable platforms
        instead of every non-main thread.
        """
        if _INJECT is None:  # pragma: no cover - non-CPython fallback
            warnings.warn(
                f"cell deadline ({self.seconds:.6g}s) not enforceable here "
                "(no PyThreadState_SetAsyncExc hook); running without a "
                "timeout",
                RuntimeWarning,
                stacklevel=2,
            )
            return False
        self._target_thread = threading.get_ident()
        self._watchdog = threading.Thread(
            target=self._watch,
            args=(self._clock() + self.seconds,),
            name="cell-deadline-watchdog",
            daemon=True,
        )
        self._watchdog.start()
        return True

    def disarm(self) -> None:
        """Stop enforcement and neutralize any undelivered injection."""
        self._cancel.set()
        if self._watchdog is not None:
            self._watchdog.join()
            self._watchdog = None
        if self._fired and _INJECT is not None and self._target_thread is not None:
            # The injection may still be pending (not yet raised); clear
            # it so it cannot surface in unrelated later code.  If it
            # already materialized we are inside the caller's except
            # handler and this is a no-op.
            _INJECT(self._target_thread, None)

    def __enter__(self) -> "CellDeadline":
        self.arm()
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.disarm()
