"""Wear-evolution timelines.

Records wear-distribution snapshots while a workload drives a scheme,
so the *dynamics* of leveling become visible: how fast the wear Gini
falls (or fails to), when utilization diverges between schemes, how the
maximum wear fraction races toward 1.0 under an attack.  Used by the
``wear_timeline`` example and available to downstream analyses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import SimulationError
from ..pcm.stats import WearStatistics
from ..sim.drivers import WorkloadDriver
from ..wearlevel.base import WearLeveler


@dataclass(frozen=True)
class TimelinePoint:
    """One snapshot along a run."""

    demand_writes: int
    stats: WearStatistics


class WearTimeline:
    """Drives a workload in slices, snapshotting wear after each slice."""

    def __init__(self, scheme: WearLeveler, driver: WorkloadDriver):
        self.scheme = scheme
        self.driver = driver
        self.points: List[TimelinePoint] = []
        self._demand_total = 0

    def run(self, total_demand: int, snapshots: int = 20) -> List[TimelinePoint]:
        """Drive ``total_demand`` writes, taking ``snapshots`` snapshots.

        Stops early (with a final snapshot) if the array fails.
        """
        if total_demand < 1:
            raise SimulationError("need at least one demand write")
        if snapshots < 1:
            raise SimulationError("need at least one snapshot")
        slice_demand = max(1, total_demand // snapshots)
        remaining = total_demand
        while remaining > 0 and not self.scheme.array.failed:
            served = self.driver.drive(self.scheme, min(slice_demand, remaining))
            if served == 0:
                break
            remaining -= served
            self._demand_total += served
            self.points.append(
                TimelinePoint(
                    demand_writes=self._demand_total,
                    stats=WearStatistics.from_array(self.scheme.array),
                )
            )
        return self.points

    def series(self, field: str) -> List[float]:
        """Extract one statistic across all snapshots.

        >>> # fields match WearStatistics attributes, e.g. "wear_gini".
        """
        if not self.points:
            return []
        if not hasattr(self.points[0].stats, field):
            raise SimulationError(f"unknown wear statistic {field!r}")
        return [float(getattr(point.stats, field)) for point in self.points]

    def demand_axis(self) -> List[int]:
        """Demand-write coordinates of the snapshots."""
        return [point.demand_writes for point in self.points]
