"""Plain-text result tables and bar charts.

All benchmarks and examples print their reproduced tables/figures through
these helpers so output stays consistent and easy to diff against
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

Cell = Union[str, float, int, None]


def _format_cell(value: Cell, precision: int) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != 0.0 and abs(value) < 0.5 * 10.0**-precision:
            # Nonzero values that fixed-point would render as zero
            # (soft-error rates, check-bit overheads) keep their
            # magnitude in significant-figure form instead.
            return f"{value:.{precision}g}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    precision: int = 3,
    title: Optional[str] = None,
) -> str:
    """Render an aligned plain-text table."""
    if not headers:
        raise ValueError("need at least one column")
    rendered = [[_format_cell(cell, precision) for cell in row] for row in rows]
    for index, row in enumerate(rendered):
        if len(row) != len(headers):
            raise ValueError(
                f"row {index} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in rendered:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def ascii_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    title: Optional[str] = None,
    unit: str = "",
) -> str:
    """Render a horizontal ASCII bar chart (for figure reproductions)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not labels:
        raise ValueError("need at least one bar")
    if any(v < 0 for v in values):
        raise ValueError("bar values must be non-negative")
    peak = max(values) or 1.0
    label_width = max(len(label) for label in labels)
    lines = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        bar = "#" * int(round(width * value / peak))
        lines.append(f"{label.ljust(label_width)}  {bar} {value:.3g}{unit}")
    return "\n".join(lines)


def grouped_bar_chart(
    group_labels: Sequence[str],
    series: Dict[str, Sequence[float]],
    width: int = 30,
    title: Optional[str] = None,
    unit: str = "",
) -> str:
    """Render grouped horizontal bars (one group per label, one bar per
    series) — the ASCII rendering of the paper's grouped-bar figures.

    >>> print(grouped_bar_chart(["a"], {"s": [1.0]}))  # doctest: +SKIP
    """
    if not group_labels:
        raise ValueError("need at least one group")
    for name, values in series.items():
        if len(values) != len(group_labels):
            raise ValueError(
                f"series {name!r} has {len(values)} values for "
                f"{len(group_labels)} groups"
            )
        if any(v < 0 for v in values):
            raise ValueError(f"series {name!r} has negative values")
    peak = max((max(values) for values in series.values()), default=1.0) or 1.0
    name_width = max(len(name) for name in series)
    lines = []
    if title:
        lines.append(title)
    for index, group in enumerate(group_labels):
        lines.append(f"{group}:")
        for name, values in series.items():
            value = values[index]
            bar = "#" * int(round(width * value / peak))
            lines.append(f"  {name.ljust(name_width)}  {bar} {value:.3g}{unit}")
    return "\n".join(lines)


class ResultTable:
    """Accumulates experiment rows, then renders or exports them.

    >>> table = ResultTable(["scheme", "years"])
    >>> table.add_row(scheme="twl", years=4.4)
    >>> "twl" in table.render()
    True
    """

    def __init__(self, columns: Sequence[str]):
        if not columns:
            raise ValueError("need at least one column")
        self.columns = list(columns)
        self._rows: List[Dict[str, Cell]] = []

    def add_row(self, **cells: Cell) -> None:
        """Append a row; keys must match the declared columns."""
        unknown = set(cells) - set(self.columns)
        if unknown:
            raise ValueError(f"unknown columns: {sorted(unknown)}")
        self._rows.append({column: cells.get(column) for column in self.columns})

    def rows(self) -> List[Dict[str, Cell]]:
        """Copy of the accumulated rows."""
        return [dict(row) for row in self._rows]

    def column(self, name: str) -> List[Cell]:
        """All values of one column, in insertion order."""
        if name not in self.columns:
            raise ValueError(f"unknown column {name!r}")
        return [row[name] for row in self._rows]

    def render(self, precision: int = 3, title: Optional[str] = None) -> str:
        """Render as an aligned text table."""
        ordered = [[row[c] for c in self.columns] for row in self._rows]
        return format_table(self.columns, ordered, precision=precision, title=title)

    def to_csv(self) -> str:
        """Comma-separated export (simple cells only)."""
        lines = [",".join(self.columns)]
        for row in self._rows:
            lines.append(
                ",".join(_format_cell(row[c], precision=6) for c in self.columns)
            )
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._rows)
