"""Ideal-lifetime definition and calibration against the paper.

The paper defines ideal lifetime as "the time when all pages are worn out
under corresponding write bandwidth".  The first-principles quantity is::

    capacity_bytes * endurance_mean / write_bandwidth            (seconds)

Every ideal lifetime the paper prints — all thirteen Table-2 rows and the
6.6-year figure at 8 GB/s — sits at a constant ~0.496 of that quantity
(consistent with the paper accounting for write amplification /
derated effective endurance; the exact bookkeeping is not published).
We expose the factor as :data:`PAPER_IDEAL_CALIBRATION` so reproduced
absolute years line up with the paper's tables; all *normalized* results
(Figure 8, every who-beats-whom comparison) are independent of it.

Validated against all Table-2 rows in ``tests/test_calibration.py``.
"""

from __future__ import annotations

from ..config import PCMConfig, PAPER_PCM
from ..units import SECONDS_PER_YEAR, mbps_to_bytes_per_second

#: Ratio of the paper's printed ideal lifetimes to capacity*endurance/BW.
PAPER_IDEAL_CALIBRATION = 0.496

#: The Figure-6 attack bandwidth: "approximate 8GB/s write bandwidth".
PAPER_ATTACK_BANDWIDTH_BYTES = 8e9


def ideal_lifetime_seconds(
    bandwidth_bytes_per_second: float,
    pcm: PCMConfig = PAPER_PCM,
    calibration: float = PAPER_IDEAL_CALIBRATION,
) -> float:
    """Ideal lifetime in seconds at a sustained write bandwidth."""
    if bandwidth_bytes_per_second <= 0:
        raise ValueError("bandwidth must be positive")
    if calibration <= 0:
        raise ValueError("calibration must be positive")
    total_writable_bytes = pcm.capacity_bytes * pcm.endurance_mean
    return calibration * total_writable_bytes / bandwidth_bytes_per_second


def ideal_lifetime_years(
    bandwidth_mbps: float,
    pcm: PCMConfig = PAPER_PCM,
    calibration: float = PAPER_IDEAL_CALIBRATION,
) -> float:
    """Ideal lifetime in years for a Table-2 style bandwidth in MBps."""
    seconds = ideal_lifetime_seconds(
        mbps_to_bytes_per_second(bandwidth_mbps), pcm=pcm, calibration=calibration
    )
    return seconds / SECONDS_PER_YEAR


def attack_ideal_lifetime_years(
    pcm: PCMConfig = PAPER_PCM,
    calibration: float = PAPER_IDEAL_CALIBRATION,
) -> float:
    """Ideal lifetime under the Figure-6 attack bandwidth (~6.6 years)."""
    seconds = ideal_lifetime_seconds(
        PAPER_ATTACK_BANDWIDTH_BYTES, pcm=pcm, calibration=calibration
    )
    return seconds / SECONDS_PER_YEAR
