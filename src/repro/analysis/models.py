"""Closed-form models of TWL behaviour (paper Section 4.2 and beyond).

The paper analyzes the toss-up's swap frequency with a two-page model
(its Equation 1/2); this module implements that model plus the wear-
share extension we derive from the same assumptions, and the uniform-
wear lifetime bound that pins every randomizing scheme.  The test suite
cross-validates the *simulated* TWL engine against these closed forms
(``tests/test_models.py``), which is the strongest internal-consistency
check the reproduction has.

Model assumptions (the paper's): a single pair (A, B) with endurances
``E_A >= E_B``; each write targets slot A with probability ``p``
independently; every write runs a toss-up (interval 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..pcm.endurance import norm_ppf


def choose_a_probability(endurance_a: float, endurance_b: float) -> float:
    """P(toss-up selects page A) = E_A / (E_A + E_B)."""
    _check_endurance(endurance_a, endurance_b)
    return endurance_a / (endurance_a + endurance_b)


def swap_probability(p: float, endurance_a: float, endurance_b: float) -> float:
    """The paper's Equation 1/2: per-write swap probability.

    ``Prob(swap) = p * E_B/(E_A+E_B) + (1-p) * E_A/(E_A+E_B)``

    Case checks from the paper (Section 4.2):

    >>> round(swap_probability(0.5, 100, 100), 3)   # Case-1
    0.5
    >>> round(swap_probability(1.0, 1e6, 1.0), 3)   # Case-2
    0.0
    >>> round(swap_probability(0.0, 1e6, 1.0), 3)   # Case-3
    1.0
    >>> round(swap_probability(0.5, 1e6, 1.0), 3)   # Case-4
    0.5
    """
    _check_probability(p)
    _check_endurance(endurance_a, endurance_b)
    choose_a = choose_a_probability(endurance_a, endurance_b)
    return p * (1 - choose_a) + (1 - p) * choose_a


@dataclass(frozen=True)
class PairWearShares:
    """Expected per-write wear on each frame of a toss-up pair."""

    wear_a: float
    wear_b: float

    @property
    def total(self) -> float:
        """Physical writes per demand write (1 + swap overhead)."""
        return self.wear_a + self.wear_b

    @property
    def share_b(self) -> float:
        """Fraction of pair wear landing on the weaker frame B."""
        return self.wear_b / self.total


def pair_wear_shares(
    p: float, endurance_a: float, endurance_b: float
) -> PairWearShares:
    """Expected wear per demand write on frames A and B (interval 1).

    Each write lands on the chosen frame; when the chosen frame differs
    from the written slot, the swap-then-write also writes the other
    frame (the two-write plan of Figure 4(c)).  With i.i.d. slot choice:

    ``wear_A = P(choose A) + P(choose B) * P(slot = A)``
    ``wear_B = P(choose B) + P(choose A) * P(slot = B)``
    """
    _check_probability(p)
    _check_endurance(endurance_a, endurance_b)
    choose_a = choose_a_probability(endurance_a, endurance_b)
    wear_a = choose_a + (1 - choose_a) * p
    wear_b = (1 - choose_a) + choose_a * (1 - p)
    return PairWearShares(wear_a=wear_a, wear_b=wear_b)


def slot_repeat_probability(p: float) -> float:
    """P(two consecutive writes target the same logical page), i.i.d.

    ``s = p**2 + (1-p)**2``.  A repeat attack has s = 1, a strict
    alternation (scan hitting both pair members per round) has s = 0.
    """
    _check_probability(p)
    return p * p + (1 - p) * (1 - p)


def markov_pair_wear_shares(
    p: float,
    endurance_a: float,
    endurance_b: float,
    repeat_probability: float = None,
) -> PairWearShares:
    """Exact wear shares of the implemented engine (interval 1).

    The engine differs from the i.i.d. slot model in one crucial way:
    the written *logical page* carries its frame across writes, so the
    probability that the current write finds its page on frame A depends
    on whether the same page wrote last (then it sits on A with
    probability ``a``) or the partner did (then it sits on the
    complement, probability ``1-a``):

    ``P(on A) = s*a + (1-s)*(1-a)``, with ``s`` the probability that
    two consecutive writes target the same logical page.

    ``wear_A = a + (1-a) * P(on A)`` (chosen always written; the
    non-chosen frame is written too when the page had to move), and
    symmetrically for B.  Cross-validated against the engine to <1%
    in ``tests/test_models.py``.

    The limits explain the paper's attack columns at once:

    * repeat (s=1): wear ratio approaches E_A : E_B — PV-protection;
    * alternating scan (s=0): wear_A = wear_B for *any* endurance
      ratio — no scheme parameter can protect the weak frame, which is
      why scan pins TWL at the uniform-wear bound.
    """
    _check_probability(p)
    _check_endurance(endurance_a, endurance_b)
    if repeat_probability is None:
        repeat_probability = slot_repeat_probability(p)
    if not 0.0 <= repeat_probability <= 1.0:
        raise ConfigError("repeat probability must be in [0, 1]")
    a = choose_a_probability(endurance_a, endurance_b)
    on_a = repeat_probability * a + (1 - repeat_probability) * (1 - a)
    wear_a = a + (1 - a) * on_a
    wear_b = (1 - a) + a * (1 - on_a)
    return PairWearShares(wear_a=wear_a, wear_b=wear_b)


def markov_swap_probability(
    p: float,
    endurance_a: float,
    endurance_b: float,
    repeat_probability: float = None,
) -> float:
    """Exact per-write swap probability of the implemented engine.

    ``P(swap) = a * (1 - P(on A)) + (1 - a) * P(on A)`` with the same
    arrangement-memory term as :func:`markov_pair_wear_shares`.  The
    paper's Equation 1/2 (:func:`swap_probability`) is the memoryless
    special case with frames addressed i.i.d.; both agree at the
    paper's four limit cases.
    """
    _check_probability(p)
    _check_endurance(endurance_a, endurance_b)
    if repeat_probability is None:
        repeat_probability = slot_repeat_probability(p)
    if not 0.0 <= repeat_probability <= 1.0:
        raise ConfigError("repeat probability must be in [0, 1]")
    a = choose_a_probability(endurance_a, endurance_b)
    on_a = repeat_probability * a + (1 - repeat_probability) * (1 - a)
    return a * (1 - on_a) + (1 - a) * on_a


def pair_lifetime_fraction(
    p: float,
    endurance_a: float,
    endurance_b: float,
    repeat_probability: float = None,
) -> float:
    """Pair lifetime (first frame death) relative to its ideal.

    The ideal serves ``E_A + E_B`` demand writes (one physical write per
    demand write, split exactly proportionally to endurance).  With the
    engine's actual (Markov) wear shares, the pair dies when the
    faster-wearing frame relative to its endurance exhausts.
    """
    shares = markov_pair_wear_shares(
        p, endurance_a, endurance_b, repeat_probability
    )
    demand_at_death = min(
        endurance_a / shares.wear_a, endurance_b / shares.wear_b
    )
    return demand_at_death / (endurance_a + endurance_b)


def uniform_wear_lifetime_fraction(
    sigma_fraction: float,
    population: int,
    overhead_ratio: float = 0.0,
) -> float:
    """Lifetime bound for any scheme that wears all pages uniformly.

    The first failure occurs when the weakest page of the population —
    expected at ``1 + sigma * Phi^-1(1/(N+1))`` of the mean — absorbs
    its endurance; migration overhead multiplies wear uniformly.

    This single number explains Security Refresh's flat ~0.42 of ideal
    and the random/scan columns of Figure 6 for every scheme.
    """
    if not 0.0 <= sigma_fraction < 1.0:
        raise ConfigError("sigma fraction must be in [0, 1)")
    if population < 1:
        raise ConfigError("population must be positive")
    if overhead_ratio < 0:
        raise ConfigError("overhead ratio must be non-negative")
    quantile = norm_ppf((1 - 0.375) / (population + 0.25))
    weakest = max(1e-9, 1.0 + sigma_fraction * quantile)
    return weakest / (1.0 + overhead_ratio)


def interval_swap_ratio(
    swap_probability_at_toss: float, toss_up_interval: int
) -> float:
    """Expected toss-up swaps per demand write at a given interval.

    Interval-triggered toss-up (Section 4.3) activates the engine once
    per ``interval`` writes to a page, so the swap/write ratio of
    Figure 7(a) is the per-toss swap probability divided by the
    interval — the "drops in proportion" behaviour the paper reports.
    """
    if not 0.0 <= swap_probability_at_toss <= 1.0:
        raise ConfigError("swap probability must be in [0, 1]")
    if toss_up_interval < 1:
        raise ConfigError("interval must be positive")
    return swap_probability_at_toss / toss_up_interval


def _check_probability(p: float) -> None:
    if not 0.0 <= p <= 1.0:
        raise ConfigError(f"probability must be in [0, 1], got {p}")


def _check_endurance(endurance_a: float, endurance_b: float) -> None:
    if endurance_a <= 0 or endurance_b <= 0:
        raise ConfigError("endurance values must be positive")
