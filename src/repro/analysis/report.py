"""Markdown report generation.

``build_report`` runs a chosen subset of the experiments and assembles a
single self-contained Markdown document (tables included verbatim) —
the programmatic counterpart of EXPERIMENTS.md, regenerable on any
machine with ``twl-repro report``.
"""

from __future__ import annotations

import io
from typing import Optional, Sequence

from ..experiments import ablations, energy, fig6, fig7, fig8, fig9, overhead, table2
from ..experiments.setups import ExperimentSetup, default_setup
from .calibration import attack_ideal_lifetime_years
from .tables import ResultTable

DEFAULT_SECTIONS: Sequence[str] = (
    "table2",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "overhead",
    "energy",
)


def _code_block(table: ResultTable, precision: int = 3) -> str:
    return "```\n" + table.render(precision=precision) + "\n```\n"


def build_report(
    setup: Optional[ExperimentSetup] = None,
    sections: Sequence[str] = DEFAULT_SECTIONS,
) -> str:
    """Run the selected experiments and return the Markdown report."""
    setup = setup or default_setup()
    known = set(DEFAULT_SECTIONS) | {"ablations"}
    unknown = [s for s in sections if s not in known]
    if unknown:
        raise ValueError(f"unknown report sections: {unknown}")

    out = io.StringIO()
    out.write("# TWL reproduction report\n\n")
    out.write(
        f"Scaled array: {setup.scaled.n_pages} pages, mean endurance "
        f"{setup.scaled.endurance_mean:.0f}; seed {setup.seed}.\n\n"
    )

    if "table2" in sections:
        out.write("## Table 2 — benchmark characterization\n\n")
        out.write(_code_block(table2.run(setup), precision=1))
        out.write("\n")
    if "fig6" in sections:
        ideal = attack_ideal_lifetime_years()
        out.write(
            f"## Figure 6 — lifetime under attacks (years; ideal {ideal:.2f})\n\n"
        )
        out.write(_code_block(fig6.run(setup), precision=2))
        out.write("\n")
        out.write('### "Worn out quickly" cells at full scale\n\n')
        out.write(_code_block(fig6.quick_death_report(setup), precision=4))
        out.write("\n")
    if "fig7" in sections:
        out.write("## Figure 7 — toss-up interval sweep\n\n")
        out.write(_code_block(fig7.run(setup), precision=4))
        out.write("\n")
    if "fig8" in sections:
        out.write("## Figure 8 — normalized lifetime\n\n")
        out.write(_code_block(fig8.run(setup), precision=3))
        out.write("\n")
    if "fig9" in sections:
        out.write("## Figure 9 — normalized execution time\n\n")
        out.write(_code_block(fig9.run(setup), precision=4))
        out.write("\n")
    if "overhead" in sections:
        out.write("## Section 5.4 — design overhead\n\n")
        out.write(_code_block(overhead.run(setup)))
        out.write("\n")
    if "energy" in sections:
        out.write("## E1 — write-energy overhead (extension)\n\n")
        out.write(_code_block(energy.run(setup), precision=4))
        out.write("\n")
    if "ablations" in sections:
        out.write("## Ablations\n\n")
        for title, table in (
            ("A1 — pairing policy", ablations.pairing_ablation(setup)),
            ("A2 — inter-pair interval", ablations.inter_pair_interval_ablation(setup)),
            ("A3 — endurance sigma", ablations.sigma_ablation(setup)),
            ("A4 — toss-up endurance mode", ablations.remaining_endurance_ablation(setup)),
            ("A5 — workload footprint", ablations.footprint_ablation(setup)),
            ("A6 — SR structure", ablations.sr_level_ablation(setup)),
            ("A9 — page retirement vs TWL", ablations.retirement_ablation(setup)),
        ):
            out.write(f"### {title}\n\n")
            out.write(_code_block(table, precision=3))
            out.write("\n")
    return out.getvalue()
