"""Convert scaled-simulation results to full-scale lifetimes.

Two regimes (DESIGN.md §2):

* **Distribution-driven workloads** (benchmarks; repeat/random/scan
  attacks through a randomizing scheme): the *normalized* lifetime
  fraction ``demand_writes / (n_pages * endurance_mean)`` is
  scale-invariant — tail-faithful endurance sampling pins the weakest
  pages to full-population statistics and trace concentration is
  parameterized per-page-count.  Full-scale years are simply
  ``fraction * ideal_years(bandwidth)``.

* **Targeted attacks** (the inconsistent attack on a prediction-based
  scheme; repeat on NOWL): the victim's traffic share is
  attacker-controlled and independent of memory size, so the *absolute*
  time to failure is size-independent while the normalized fraction
  shrinks as 1/n_pages.  Converting a scaled run therefore multiplies by
  the scale ratio: seconds ≈ fraction_sim * n_sim/n_full * ideal_seconds
  (with calibration=1, since the mechanism involves no capacity
  bookkeeping).
"""

from __future__ import annotations

from ..config import PCMConfig, PAPER_PCM
from ..units import SECONDS_PER_YEAR
from .calibration import PAPER_IDEAL_CALIBRATION, ideal_lifetime_seconds


def fraction_to_full_scale_years(
    lifetime_fraction: float,
    bandwidth_bytes_per_second: float,
    pcm: PCMConfig = PAPER_PCM,
    calibration: float = PAPER_IDEAL_CALIBRATION,
) -> float:
    """Full-scale years for a scale-invariant lifetime fraction."""
    if lifetime_fraction < 0:
        raise ValueError("lifetime fraction must be non-negative")
    ideal = ideal_lifetime_seconds(
        bandwidth_bytes_per_second, pcm=pcm, calibration=calibration
    )
    return lifetime_fraction * ideal / SECONDS_PER_YEAR


def targeted_attack_full_scale_seconds(
    lifetime_fraction: float,
    n_pages_sim: int,
    bandwidth_bytes_per_second: float,
    pcm: PCMConfig = PAPER_PCM,
) -> float:
    """Full-scale seconds-to-failure for a victim-share-driven attack.

    ``lifetime_fraction`` comes from the scaled run; at full scale the
    attack needs the same number of *victim* writes, so absolute time is
    recovered by undoing the 1/n_pages dependence of the fraction.
    """
    if lifetime_fraction < 0:
        raise ValueError("lifetime fraction must be non-negative")
    if n_pages_sim < 1:
        raise ValueError("n_pages_sim must be positive")
    # fraction_sim = victim_writes / (n_sim * E_mean); absolute time is
    # victim_writes * page_bytes / bandwidth after endurance rescaling.
    victim_writes_full = lifetime_fraction * n_pages_sim * pcm.endurance_mean
    return victim_writes_full * pcm.page_bytes / bandwidth_bytes_per_second
