"""Summary statistics used by the experiments.

The paper reports geometric means ("Gmean") for cross-benchmark
aggregates; :func:`geometric_mean` matches that convention.
"""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (the paper's "Gmean").

    >>> round(geometric_mean([1.0, 4.0]), 6)
    2.0
    """
    data = np.asarray(list(values), dtype=np.float64)
    if data.size == 0:
        raise ValueError("need at least one value")
    if (data <= 0).any():
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(data))))


def summarize(values: Iterable[float]) -> Dict[str, float]:
    """Mean / gmean / min / max / std over a positive sample."""
    data = np.asarray(list(values), dtype=np.float64)
    if data.size == 0:
        raise ValueError("need at least one value")
    result = {
        "mean": float(data.mean()),
        "min": float(data.min()),
        "max": float(data.max()),
        "std": float(data.std()),
    }
    if (data > 0).all():
        result["gmean"] = geometric_mean(data)
    return result
