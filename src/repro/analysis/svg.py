"""Dependency-free SVG rendering of the reproduction's figures.

The ASCII charts in `repro.analysis.tables` are for terminals; this
module writes real vector figures — grouped bar charts (Figures 6/8/9),
line charts (Figure 7, wear timelines) and wear heatmaps — as plain SVG
strings, with no plotting library required.  Output is validated as
well-formed XML in ``tests/test_svg.py``.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence
from xml.sax.saxutils import escape

_FONT = "font-family='Helvetica,Arial,sans-serif'"

#: A colorblind-safe categorical palette (Okabe-Ito).
PALETTE = (
    "#0072B2",
    "#E69F00",
    "#009E73",
    "#CC79A7",
    "#56B4E9",
    "#D55E00",
    "#F0E442",
    "#000000",
)


def _header(width: int, height: int, title: Optional[str]) -> List[str]:
    parts = [
        f"<svg xmlns='http://www.w3.org/2000/svg' width='{width}' "
        f"height='{height}' viewBox='0 0 {width} {height}'>",
        f"<rect width='{width}' height='{height}' fill='white'/>",
    ]
    if title:
        parts.append(
            f"<text x='{width / 2}' y='20' text-anchor='middle' "
            f"font-size='14' {_FONT}>{escape(title)}</text>"
        )
    return parts


def svg_grouped_bars(
    group_labels: Sequence[str],
    series: Dict[str, Sequence[float]],
    title: Optional[str] = None,
    width: int = 720,
    height: int = 360,
    y_label: str = "",
) -> str:
    """Grouped vertical bars — the shape of the paper's Figures 6/8/9."""
    if not group_labels or not series:
        raise ValueError("need at least one group and one series")
    for name, values in series.items():
        if len(values) != len(group_labels):
            raise ValueError(f"series {name!r} length mismatch")
        if any(v < 0 for v in values):
            raise ValueError(f"series {name!r} has negative values")

    margin_left, margin_bottom, margin_top = 56, 70, 34
    plot_w = width - margin_left - 16
    plot_h = height - margin_top - margin_bottom
    peak = max(max(values) for values in series.values()) or 1.0

    parts = _header(width, height, title)
    # Axes.
    axis_y0 = margin_top + plot_h
    parts.append(
        f"<line x1='{margin_left}' y1='{margin_top}' x2='{margin_left}' "
        f"y2='{axis_y0}' stroke='black'/>"
    )
    parts.append(
        f"<line x1='{margin_left}' y1='{axis_y0}' "
        f"x2='{margin_left + plot_w}' y2='{axis_y0}' stroke='black'/>"
    )
    for tick in range(5):
        value = peak * tick / 4
        y = axis_y0 - plot_h * tick / 4
        parts.append(
            f"<text x='{margin_left - 6}' y='{y + 4}' text-anchor='end' "
            f"font-size='10' {_FONT}>{value:.2g}</text>"
        )
        parts.append(
            f"<line x1='{margin_left}' y1='{y}' x2='{margin_left + plot_w}' "
            f"y2='{y}' stroke='#dddddd'/>"
        )
    if y_label:
        parts.append(
            f"<text x='14' y='{margin_top + plot_h / 2}' font-size='11' {_FONT} "
            f"transform='rotate(-90 14 {margin_top + plot_h / 2})' "
            f"text-anchor='middle'>{escape(y_label)}</text>"
        )

    n_groups = len(group_labels)
    n_series = len(series)
    group_w = plot_w / n_groups
    bar_w = group_w * 0.8 / n_series
    for g_index, group in enumerate(group_labels):
        x0 = margin_left + g_index * group_w + group_w * 0.1
        for s_index, (name, values) in enumerate(series.items()):
            value = values[g_index]
            bar_h = plot_h * value / peak
            x = x0 + s_index * bar_w
            y = axis_y0 - bar_h
            color = PALETTE[s_index % len(PALETTE)]
            parts.append(
                f"<rect x='{x:.1f}' y='{y:.1f}' width='{bar_w:.1f}' "
                f"height='{bar_h:.1f}' fill='{color}'>"
                f"<title>{escape(str(name))} / {escape(str(group))}: "
                f"{value:.4g}</title></rect>"
            )
        label_x = margin_left + g_index * group_w + group_w / 2
        parts.append(
            f"<text x='{label_x:.1f}' y='{axis_y0 + 14}' text-anchor='middle' "
            f"font-size='10' {_FONT} transform='rotate(30 {label_x:.1f} "
            f"{axis_y0 + 14})'>{escape(str(group))}</text>"
        )

    # Legend.
    legend_y = height - 16
    legend_x = margin_left
    for s_index, name in enumerate(series):
        color = PALETTE[s_index % len(PALETTE)]
        parts.append(
            f"<rect x='{legend_x}' y='{legend_y - 9}' width='10' height='10' "
            f"fill='{color}'/>"
        )
        parts.append(
            f"<text x='{legend_x + 14}' y='{legend_y}' font-size='11' {_FONT}>"
            f"{escape(str(name))}</text>"
        )
        legend_x += 14 + 8 * len(str(name)) + 18
    parts.append("</svg>")
    return "\n".join(parts)


def svg_line_chart(
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
    title: Optional[str] = None,
    width: int = 720,
    height: int = 320,
    log_x: bool = False,
    y_label: str = "",
) -> str:
    """Multi-series line chart (Figure 7, wear timelines)."""
    if not x_values or not series:
        raise ValueError("need x values and at least one series")
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(f"series {name!r} length mismatch")
    if log_x and any(x <= 0 for x in x_values):
        raise ValueError("log x-axis needs positive x values")

    import math

    margin_left, margin_bottom, margin_top = 56, 44, 34
    plot_w = width - margin_left - 16
    plot_h = height - margin_top - margin_bottom
    xs = [math.log10(x) for x in x_values] if log_x else list(x_values)
    x_min, x_max = min(xs), max(xs)
    x_span = (x_max - x_min) or 1.0
    y_max = max(max(values) for values in series.values()) or 1.0

    def px(x: float) -> float:
        return margin_left + plot_w * (x - x_min) / x_span

    def py(y: float) -> float:
        return margin_top + plot_h * (1 - y / y_max)

    parts = _header(width, height, title)
    axis_y0 = margin_top + plot_h
    parts.append(
        f"<line x1='{margin_left}' y1='{margin_top}' x2='{margin_left}' "
        f"y2='{axis_y0}' stroke='black'/>"
    )
    parts.append(
        f"<line x1='{margin_left}' y1='{axis_y0}' "
        f"x2='{margin_left + plot_w}' y2='{axis_y0}' stroke='black'/>"
    )
    for tick in range(5):
        value = y_max * tick / 4
        y = py(value)
        parts.append(
            f"<text x='{margin_left - 6}' y='{y + 4}' text-anchor='end' "
            f"font-size='10' {_FONT}>{value:.2g}</text>"
        )
    for raw, x in zip(x_values, xs):
        parts.append(
            f"<text x='{px(x):.1f}' y='{axis_y0 + 14}' text-anchor='middle' "
            f"font-size='9' {_FONT}>{raw:g}</text>"
        )
    if y_label:
        parts.append(
            f"<text x='14' y='{margin_top + plot_h / 2}' font-size='11' {_FONT} "
            f"transform='rotate(-90 14 {margin_top + plot_h / 2})' "
            f"text-anchor='middle'>{escape(y_label)}</text>"
        )

    for s_index, (name, values) in enumerate(series.items()):
        color = PALETTE[s_index % len(PALETTE)]
        points = " ".join(
            f"{px(x):.1f},{py(v):.1f}" for x, v in zip(xs, values)
        )
        parts.append(
            f"<polyline points='{points}' fill='none' stroke='{color}' "
            f"stroke-width='2'><title>{escape(str(name))}</title></polyline>"
        )
        parts.append(
            f"<text x='{px(xs[-1]) + 4:.1f}' y='{py(values[-1]) + 4:.1f}' "
            f"font-size='10' fill='{color}' {_FONT}>{escape(str(name))}</text>"
        )
    parts.append("</svg>")
    return "\n".join(parts)


def svg_wear_heatmap(
    wear_fractions: Sequence[float],
    columns: int = 32,
    title: Optional[str] = None,
    cell: int = 12,
) -> str:
    """Per-page wear as a color grid (white = fresh, dark red = dead)."""
    values = list(wear_fractions)
    if not values:
        raise ValueError("need at least one page")
    if columns < 1:
        raise ValueError("need at least one column")
    if any(v < 0 for v in values):
        raise ValueError("wear fractions must be non-negative")

    rows = (len(values) + columns - 1) // columns
    margin_top = 30 if title else 6
    width = columns * cell + 12
    height = rows * cell + margin_top + 6
    parts = _header(width, height, title)
    for index, value in enumerate(values):
        clipped = min(1.0, value)
        # White -> red ramp; fully worn pages get a black border.
        red = 255
        greenblue = int(round(255 * (1 - clipped)))
        x = 6 + (index % columns) * cell
        y = margin_top + (index // columns) * cell
        stroke = "black" if clipped >= 1.0 else "#cccccc"
        parts.append(
            f"<rect x='{x}' y='{y}' width='{cell - 1}' height='{cell - 1}' "
            f"fill='rgb({red},{greenblue},{greenblue})' stroke='{stroke}' "
            f"stroke-width='0.5'><title>page {index}: "
            f"{value:.3f}</title></rect>"
        )
    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(svg_text: str, path: str) -> None:
    """Write an SVG string to ``path`` (directories created)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        handle.write(svg_text)
