"""Result analysis: statistics, calibration, tables, extrapolation."""

from .stats import geometric_mean, summarize
from .calibration import (
    PAPER_IDEAL_CALIBRATION,
    PAPER_ATTACK_BANDWIDTH_BYTES,
    ideal_lifetime_seconds,
    ideal_lifetime_years,
    attack_ideal_lifetime_years,
)
from .tables import ResultTable, format_table, ascii_bar_chart, grouped_bar_chart
from .extrapolate import (
    fraction_to_full_scale_years,
    targeted_attack_full_scale_seconds,
)
from .timeline import TimelinePoint, WearTimeline
from .svg import svg_grouped_bars, svg_line_chart, svg_wear_heatmap, save_svg
from .models import (
    choose_a_probability,
    swap_probability,
    markov_swap_probability,
    pair_wear_shares,
    markov_pair_wear_shares,
    slot_repeat_probability,
    pair_lifetime_fraction,
    uniform_wear_lifetime_fraction,
    interval_swap_ratio,
)

__all__ = [
    "geometric_mean",
    "summarize",
    "PAPER_IDEAL_CALIBRATION",
    "PAPER_ATTACK_BANDWIDTH_BYTES",
    "ideal_lifetime_seconds",
    "ideal_lifetime_years",
    "attack_ideal_lifetime_years",
    "ResultTable",
    "format_table",
    "ascii_bar_chart",
    "grouped_bar_chart",
    "fraction_to_full_scale_years",
    "targeted_attack_full_scale_seconds",
    "TimelinePoint",
    "WearTimeline",
    "svg_grouped_bars",
    "svg_line_chart",
    "svg_wear_heatmap",
    "save_svg",
    "choose_a_probability",
    "swap_probability",
    "markov_swap_probability",
    "markov_pair_wear_shares",
    "slot_repeat_probability",
    "pair_wear_shares",
    "pair_lifetime_fraction",
    "uniform_wear_lifetime_fraction",
    "interval_swap_ratio",
]
