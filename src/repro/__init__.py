"""Reproduction of "Toss-up Wear Leveling: Protecting Phase-Change
Memories from Inconsistent Write Patterns" (Zhang & Sun, DAC 2017).

The package provides the paper's entire evaluation stack: the PCM device
model with process variation, the wear-leveling schemes it compares
(NOWL, Start-Gap, Security Refresh, Wear-Rate Leveling, Bloom-filter
WL), the Toss-up Wear Leveling contribution, the four attack workloads
including the inconsistent-write attack, synthetic PARSEC workloads
calibrated to the paper's Table 2, the lifetime simulator, the timing
model behind Figure 9, and the hardware-cost model behind Section 5.4.

Quickstart::

    from repro import measure_attack_lifetime, attack_ideal_lifetime_years

    result = measure_attack_lifetime("twl_swp", "inconsistent")
    years = result.lifetime_fraction * attack_ideal_lifetime_years()
"""

from .version import __version__
from .config import (
    PCMConfig,
    ScaledArrayConfig,
    TimingConfig,
    TWLConfig,
    SecurityRefreshConfig,
    StartGapConfig,
    WRLConfig,
    BWLConfig,
    SimConfig,
    PAPER_PCM,
)
from .errors import (
    ReproError,
    ConfigError,
    AddressError,
    PageWornOutError,
    TableError,
    TraceError,
    SimulationError,
    ExtrapolationError,
    CellExecutionError,
)
from .pcm import PCMArray, FirstFailure, WearStatistics
from .core import TossUpWearLeveling
from .wearlevel import (
    WearLeveler,
    NoWearLeveling,
    StartGap,
    SecurityRefresh,
    WearRateLeveling,
    BloomWearLeveling,
    make_scheme,
    scheme_names,
)
from .attacks import (
    AttackWorkload,
    RepeatWriteAttack,
    RandomWriteAttack,
    ScanWriteAttack,
    InconsistentWriteAttack,
    make_attack,
    attack_names,
)
from .traces import (
    Trace,
    BenchmarkProfile,
    PARSEC_TABLE2,
    get_profile,
    make_benchmark_trace,
)
from .engine import (
    SimulationEngine,
    EngineOutcome,
    EngineObserver,
    BatchSnapshot,
    SchemeOverheadsObserver,
    WearTimelineObserver,
)
from .sim import (
    LifetimeResult,
    run_to_failure,
    fast_forward_to_failure,
    FastForwardConfig,
    TraceDriver,
    AttackDriver,
    build_array,
    measure_attack_lifetime,
    measure_trace_lifetime,
)
from .exec import (
    ExperimentCell,
    attack_cell,
    trace_cell,
    overheads_cell,
    run_cells,
    CellCache,
    cell_fingerprint,
    default_cache_dir,
)
from .analysis import (
    geometric_mean,
    attack_ideal_lifetime_years,
    ideal_lifetime_years,
    PAPER_IDEAL_CALIBRATION,
)
from .hwcost import twl_design_overhead

__all__ = [
    "__version__",
    # configuration
    "PCMConfig",
    "ScaledArrayConfig",
    "TimingConfig",
    "TWLConfig",
    "SecurityRefreshConfig",
    "StartGapConfig",
    "WRLConfig",
    "BWLConfig",
    "SimConfig",
    "PAPER_PCM",
    # errors
    "ReproError",
    "ConfigError",
    "AddressError",
    "PageWornOutError",
    "TableError",
    "TraceError",
    "SimulationError",
    "ExtrapolationError",
    "CellExecutionError",
    # device
    "PCMArray",
    "FirstFailure",
    "WearStatistics",
    # schemes
    "TossUpWearLeveling",
    "WearLeveler",
    "NoWearLeveling",
    "StartGap",
    "SecurityRefresh",
    "WearRateLeveling",
    "BloomWearLeveling",
    "make_scheme",
    "scheme_names",
    # attacks
    "AttackWorkload",
    "RepeatWriteAttack",
    "RandomWriteAttack",
    "ScanWriteAttack",
    "InconsistentWriteAttack",
    "make_attack",
    "attack_names",
    # traces
    "Trace",
    "BenchmarkProfile",
    "PARSEC_TABLE2",
    "get_profile",
    "make_benchmark_trace",
    # engine
    "SimulationEngine",
    "EngineOutcome",
    "EngineObserver",
    "BatchSnapshot",
    "SchemeOverheadsObserver",
    "WearTimelineObserver",
    # simulation
    "LifetimeResult",
    "run_to_failure",
    "fast_forward_to_failure",
    "FastForwardConfig",
    "TraceDriver",
    "AttackDriver",
    "build_array",
    "measure_attack_lifetime",
    "measure_trace_lifetime",
    # parallel execution + result cache
    "ExperimentCell",
    "attack_cell",
    "trace_cell",
    "overheads_cell",
    "run_cells",
    "CellCache",
    "cell_fingerprint",
    "default_cache_dir",
    # analysis
    "geometric_mean",
    "attack_ideal_lifetime_years",
    "ideal_lifetime_years",
    "PAPER_IDEAL_CALIBRATION",
    # hardware cost
    "twl_design_overhead",
]
