"""Registry of named streaming workload generators.

Mirrors :mod:`repro.attacks.registry`: experiment grids and the CLI
name a stream (``"ftl"``), and :func:`make_stream` builds it sized to
the scheme's logical address space with all randomness derived from the
cell seed.  Generators registered here are first-class workload sources
alongside the attacks — :func:`repro.sim.runner.measure_stream_lifetime`
drives them through the same engine loop.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..errors import ConfigError
from .ftl import FTLWorkloadStream
from .stream import DEFAULT_CHUNK_REQUESTS, TraceStream

#: name -> factory(n_pages, seed, chunk_size, **kwargs).
STREAM_FACTORIES: Dict[str, Callable[..., TraceStream]] = {
    "ftl": FTLWorkloadStream,
}


def stream_names() -> List[str]:
    """Registered stream generator names, sorted."""
    return sorted(STREAM_FACTORIES)


def make_stream(
    name: str,
    n_pages: int,
    seed: int = 0,
    chunk_size: int = DEFAULT_CHUNK_REQUESTS,
    **kwargs: object,
) -> TraceStream:
    """Build the named stream generator over ``n_pages`` pages."""
    try:
        factory = STREAM_FACTORIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown stream {name!r}; registered: {', '.join(stream_names())}"
        ) from None
    return factory(n_pages, seed=seed, chunk_size=chunk_size, **kwargs)
