"""Memory request traces and synthetic workload generation.

The paper collects PARSEC memory traces from gem5 and loops them until a
page wears out.  We reproduce the same methodology with synthetic traces
whose two wear-relevant statistics — write bandwidth and write
concentration — are calibrated per benchmark from the paper's own
Table 2 (see ``repro.traces.parsec``).

The workload pipeline is **streaming-first** (``docs/workloads.md``):
:class:`TraceStream` is the canonical chunked, rewindable source;
:class:`Trace` is its materialized adapter.  On-disk formats (monolithic
``.npz``, chunked ``.twt``, text, block-trace CSV) all open through
:func:`open_trace_stream`; :func:`trace_info` peeks metadata without
loading arrays; :func:`make_stream` builds registered dynamic
generators (the FTL workload) sized to a scheme's address space.
"""

from .request import MemoryRequest, OP_READ, OP_WRITE
from .trace import Trace
from .stream import (
    DEFAULT_CHUNK_REQUESTS,
    MaterializedStream,
    TraceStream,
)
from .synth import (
    zipf_weights,
    zipf_alpha_for_concentration,
    make_zipf_trace,
    make_uniform_trace,
    make_sequential_trace,
    make_single_address_trace,
)
from .parsec import BenchmarkProfile, PARSEC_TABLE2, get_profile, make_benchmark_trace
from .io import TraceInfo, open_trace_stream, save_trace, load_trace, trace_info
from .chunked import ChunkedFileStream, ChunkedTraceWriter, save_chunked_trace
from .text_format import TextTraceStream, load_text_trace, save_text_trace
from .blocktrace import BlockTraceStream, load_block_trace
from .ftl import FTLConfig, FTLWorkloadStream
from .registry import STREAM_FACTORIES, make_stream, stream_names

__all__ = [
    "MemoryRequest",
    "OP_READ",
    "OP_WRITE",
    "Trace",
    "TraceStream",
    "MaterializedStream",
    "DEFAULT_CHUNK_REQUESTS",
    "zipf_weights",
    "zipf_alpha_for_concentration",
    "make_zipf_trace",
    "make_uniform_trace",
    "make_sequential_trace",
    "make_single_address_trace",
    "BenchmarkProfile",
    "PARSEC_TABLE2",
    "get_profile",
    "make_benchmark_trace",
    "TraceInfo",
    "trace_info",
    "open_trace_stream",
    "save_trace",
    "load_trace",
    "ChunkedFileStream",
    "ChunkedTraceWriter",
    "save_chunked_trace",
    "TextTraceStream",
    "load_text_trace",
    "save_text_trace",
    "BlockTraceStream",
    "load_block_trace",
    "FTLConfig",
    "FTLWorkloadStream",
    "STREAM_FACTORIES",
    "make_stream",
    "stream_names",
]
