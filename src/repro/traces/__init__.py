"""Memory request traces and synthetic workload generation.

The paper collects PARSEC memory traces from gem5 and loops them until a
page wears out.  We reproduce the same methodology with synthetic traces
whose two wear-relevant statistics — write bandwidth and write
concentration — are calibrated per benchmark from the paper's own
Table 2 (see ``repro.traces.parsec``).
"""

from .request import MemoryRequest, OP_READ, OP_WRITE
from .trace import Trace
from .synth import (
    zipf_weights,
    zipf_alpha_for_concentration,
    make_zipf_trace,
    make_uniform_trace,
    make_sequential_trace,
    make_single_address_trace,
)
from .parsec import BenchmarkProfile, PARSEC_TABLE2, get_profile, make_benchmark_trace
from .io import save_trace, load_trace
from .text_format import load_text_trace, save_text_trace

__all__ = [
    "MemoryRequest",
    "OP_READ",
    "OP_WRITE",
    "Trace",
    "zipf_weights",
    "zipf_alpha_for_concentration",
    "make_zipf_trace",
    "make_uniform_trace",
    "make_sequential_trace",
    "make_single_address_trace",
    "BenchmarkProfile",
    "PARSEC_TABLE2",
    "get_profile",
    "make_benchmark_trace",
    "save_trace",
    "load_trace",
    "load_text_trace",
    "save_text_trace",
]
