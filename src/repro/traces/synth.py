"""Synthetic trace generators.

The central generator is the Zipf trace: page popularity follows
``w_k ~ 1 / k**alpha`` over a shuffled page ordering.  Wear-leveling
outcomes depend on the *write concentration* — how many times more often
the hottest page is written than the array average — so
:func:`zipf_alpha_for_concentration` inverts the Zipf exponent from a
target concentration.  That is what lets Table 2's per-benchmark
"ideal lifetime / lifetime without wear leveling" ratio pin down the
synthetic workload at any array scale (DESIGN.md §2).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import TraceError
from .request import OP_READ, OP_WRITE
from .trace import Trace


def zipf_weights(n_pages: int, alpha: float) -> np.ndarray:
    """Normalized Zipf popularity weights over ``n_pages`` ranks.

    ``alpha = 0`` is uniform; larger alpha concentrates writes on the
    top-ranked pages.
    """
    if n_pages < 1:
        raise TraceError("need at least one page")
    if alpha < 0:
        raise TraceError(f"alpha must be non-negative, got {alpha}")
    ranks = np.arange(1, n_pages + 1, dtype=np.float64)
    weights = ranks ** (-alpha)
    return weights / weights.sum()


def concentration_of_alpha(n_pages: int, alpha: float) -> float:
    """Write concentration of a Zipf(alpha) workload.

    Concentration = (hottest page's write share) * n_pages; 1.0 means
    uniform.  This is exactly the ratio ideal-lifetime / no-WL-lifetime
    for a PV-free array, because no-WL lifetime is set by the hottest
    page while ideal lifetime spreads writes evenly.
    """
    weights = zipf_weights(n_pages, alpha)
    return float(weights[0] * n_pages)


def zipf_alpha_for_concentration(
    n_pages: int,
    concentration: float,
    tolerance: float = 1e-6,
) -> float:
    """Invert :func:`concentration_of_alpha` by bisection.

    Raises if the concentration is unreachable (it is bounded above by
    ``n_pages``, where all writes hit one page).
    """
    if concentration < 1.0:
        raise TraceError(
            f"concentration must be >= 1 (uniform), got {concentration}"
        )
    if concentration >= n_pages:
        raise TraceError(
            f"concentration {concentration} unreachable with {n_pages} pages"
        )
    if concentration == 1.0:
        return 0.0
    low, high = 0.0, 1.0
    # Grow the bracket until it encloses the target.
    while concentration_of_alpha(n_pages, high) < concentration:
        high *= 2
        if high > 64:
            raise TraceError(
                f"could not bracket concentration {concentration}"
            )
    while high - low > tolerance:
        middle = (low + high) / 2
        if concentration_of_alpha(n_pages, middle) < concentration:
            low = middle
        else:
            high = middle
    return (low + high) / 2


def _interleave_reads(
    write_pages: np.ndarray,
    write_fraction: float,
    rng: np.random.Generator,
) -> tuple:
    """Mix read requests (to the same popularity ordering) into a write stream."""
    if not 0.0 < write_fraction <= 1.0:
        raise TraceError(f"write fraction must be in (0, 1], got {write_fraction}")
    n_writes = write_pages.size
    if write_fraction == 1.0:
        ops = np.full(n_writes, OP_WRITE, dtype=np.uint8)
        return ops, write_pages
    n_reads = int(round(n_writes * (1.0 - write_fraction) / write_fraction))
    read_pages = rng.choice(write_pages, size=n_reads, replace=True)
    ops = np.concatenate(
        [
            np.full(n_writes, OP_WRITE, dtype=np.uint8),
            np.full(n_reads, OP_READ, dtype=np.uint8),
        ]
    )
    pages = np.concatenate([write_pages, read_pages])
    order = rng.permutation(ops.size)
    return ops[order], pages[order]


def make_zipf_trace(
    n_pages: int,
    n_writes: int,
    alpha: float,
    rng: np.random.Generator,
    name: str = "zipf",
    write_fraction: float = 1.0,
    write_bandwidth_mbps: Optional[float] = None,
) -> Trace:
    """Zipf-popularity trace over a shuffled page ordering.

    The popularity ranking is assigned to random page addresses so hot
    pages are scattered across the physical layout, as in real workloads.
    """
    if n_writes < 1:
        raise TraceError("need at least one write")
    weights = zipf_weights(n_pages, alpha)
    ordering = rng.permutation(n_pages)
    ranks = rng.choice(n_pages, size=n_writes, p=weights)
    write_pages = ordering[ranks]
    ops, pages = _interleave_reads(write_pages, write_fraction, rng)
    return Trace(
        ops, pages, name=name, write_bandwidth_mbps=write_bandwidth_mbps
    )


def make_uniform_trace(
    n_pages: int,
    n_writes: int,
    rng: np.random.Generator,
    name: str = "uniform",
    write_bandwidth_mbps: Optional[float] = None,
) -> Trace:
    """Uniformly random write trace."""
    if n_writes < 1:
        raise TraceError("need at least one write")
    pages = rng.integers(0, n_pages, size=n_writes)
    return Trace.writes_only(
        pages, name=name, write_bandwidth_mbps=write_bandwidth_mbps
    )


def make_sequential_trace(
    n_pages: int,
    n_writes: int,
    name: str = "sequential",
    start: int = 0,
    write_bandwidth_mbps: Optional[float] = None,
) -> Trace:
    """Sequential scan trace (addresses ascend modulo the array size)."""
    if n_writes < 1:
        raise TraceError("need at least one write")
    pages = (start + np.arange(n_writes)) % n_pages
    return Trace.writes_only(
        pages, name=name, write_bandwidth_mbps=write_bandwidth_mbps
    )


def make_single_address_trace(
    page: int,
    n_writes: int,
    name: str = "repeat",
    write_bandwidth_mbps: Optional[float] = None,
) -> Trace:
    """All writes to one fixed page."""
    if n_writes < 1:
        raise TraceError("need at least one write")
    if page < 0:
        raise TraceError("page must be non-negative")
    pages = np.full(n_writes, page, dtype=np.int64)
    return Trace.writes_only(
        pages, name=name, write_bandwidth_mbps=write_bandwidth_mbps
    )
