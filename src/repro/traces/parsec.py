"""Synthetic PARSEC workload profiles calibrated to paper Table 2.

The paper characterizes each PARSEC benchmark by exactly the statistics
that matter for wear leveling (Table 2): sustained write bandwidth, the
ideal lifetime it implies, and the lifetime without wear leveling.  The
ratio ideal/no-WL is the workload's *write concentration* — how many
times the hottest page exceeds the average write rate — and it is
scale-invariant, so we can regenerate an equivalent workload on a small
simulated array by fitting a Zipf exponent to that concentration
(``repro.traces.synth.zipf_alpha_for_concentration``).

``memory_boundedness`` is a synthetic substitute for the gem5
full-system behaviour behind Figure 9: benchmarks with higher write
bandwidth spend more of their execution time waiting on PCM writes and
therefore expose more of the wear-leveling control overhead.  See
DESIGN.md §2 (substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import TraceError
from ..rng.streams import make_generator
from .synth import make_zipf_trace, zipf_alpha_for_concentration
from .trace import Trace


@dataclass(frozen=True)
class BenchmarkProfile:
    """Wear-relevant characterization of one benchmark (paper Table 2)."""

    name: str
    write_bandwidth_mbps: float
    ideal_lifetime_years: float
    lifetime_no_wl_years: float
    #: Fraction of memory requests that are writes (synthetic; the paper
    #: does not publish per-benchmark mixes).
    write_fraction: float = 0.33
    #: Fraction of the memory's pages the benchmark ever writes.  PARSEC
    #: working sets are far smaller than a 32 GB main memory; pages
    #: outside the footprint receive no demand writes, which is what
    #: lets PV-aware placement park weak frames under idle data.  25%
    #: keeps the active set statistically large at simulation scale
    #: while preserving the sparse-footprint behaviour (DESIGN.md §2).
    footprint_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.write_bandwidth_mbps <= 0:
            raise TraceError("write bandwidth must be positive")
        if self.ideal_lifetime_years <= 0 or self.lifetime_no_wl_years <= 0:
            raise TraceError("lifetimes must be positive")
        if self.lifetime_no_wl_years > self.ideal_lifetime_years:
            raise TraceError("no-WL lifetime cannot exceed ideal lifetime")
        if not 0.0 < self.write_fraction <= 1.0:
            raise TraceError("write fraction must be in (0, 1]")
        if not 0.0 < self.footprint_fraction <= 1.0:
            raise TraceError("footprint fraction must be in (0, 1]")

    @property
    def concentration(self) -> float:
        """Write concentration: hottest-page share times page count."""
        return self.ideal_lifetime_years / self.lifetime_no_wl_years

    def memory_boundedness(self, max_bandwidth_mbps: float = 3309.0) -> float:
        """Fraction of execution time exposed to PCM write latency.

        Scales with write bandwidth: the most write-intensive benchmark
        (vips at 3309 MBps) is fully memory-bound, the least intensive
        ones expose about half of the control overhead.
        """
        ratio = min(1.0, self.write_bandwidth_mbps / max_bandwidth_mbps)
        return 0.5 + 0.5 * ratio


#: Paper Table 2, verbatim.
PARSEC_TABLE2: Dict[str, BenchmarkProfile] = {
    profile.name: profile
    for profile in (
        BenchmarkProfile("blackscholes", 121.0, 446.0, 14.5),
        BenchmarkProfile("bodytrack", 271.0, 199.0, 8.0),
        BenchmarkProfile("canneal", 319.0, 169.0, 2.9),
        BenchmarkProfile("dedup", 1529.0, 35.0, 2.5),
        BenchmarkProfile("facesim", 1101.0, 49.0, 3.0),
        BenchmarkProfile("ferret", 1025.0, 52.0, 1.2),
        BenchmarkProfile("fluidanimate", 1092.0, 49.0, 2.0),
        BenchmarkProfile("freqmine", 491.0, 110.0, 6.4),
        BenchmarkProfile("rtview", 351.0, 154.0, 5.4),
        BenchmarkProfile("streamcluster", 12.0, 4229.0, 132.2),
        BenchmarkProfile("swaptions", 120.0, 449.0, 12.8),
        BenchmarkProfile("vips", 3309.0, 16.0, 0.9),
        BenchmarkProfile("x264", 538.0, 100.0, 2.0),
    )
}


def get_profile(name: str) -> BenchmarkProfile:
    """Look up a Table-2 benchmark profile by name."""
    try:
        return PARSEC_TABLE2[name]
    except KeyError:
        known = ", ".join(sorted(PARSEC_TABLE2))
        raise TraceError(f"unknown benchmark {name!r}; known: {known}") from None


def make_benchmark_trace(
    profile: BenchmarkProfile,
    n_pages: int,
    n_writes: int,
    seed: int = 0,
    include_reads: bool = False,
    concentration_override: Optional[float] = None,
    footprint_override: Optional[float] = None,
) -> Trace:
    """Generate the synthetic trace for one benchmark at array scale.

    Writes are confined to a random active set of
    ``footprint_fraction * n_pages`` pages; the Zipf exponent over the
    active set is fitted so the hottest page's write share times
    ``n_pages`` equals the benchmark's Table-2 concentration, making the
    no-wear-leveling lifetime land at the paper's value at any scale
    regardless of footprint.
    """
    concentration = concentration_override or profile.concentration
    footprint = footprint_override or profile.footprint_fraction
    # The hottest page's share is concentration / n_pages; over the
    # active set this is a concentration of C * footprint, which must
    # stay above uniform — bump the footprint if the workload is too
    # diffuse for the requested one.
    footprint = min(1.0, max(footprint, 1.2 / concentration))
    active_pages = max(2, min(n_pages, int(round(n_pages * footprint))))
    active_concentration = concentration * active_pages / n_pages
    if active_concentration <= 1.0:
        active_concentration = 1.0 + 1e-9
    alpha = zipf_alpha_for_concentration(active_pages, active_concentration)
    rng = make_generator(seed, "parsec", profile.name)
    trace = make_zipf_trace(
        active_pages,
        n_writes,
        alpha,
        rng,
        name=profile.name,
        write_fraction=profile.write_fraction if include_reads else 1.0,
        write_bandwidth_mbps=profile.write_bandwidth_mbps,
    )
    # Scatter the active set across the full address space.
    placement = rng.permutation(n_pages)[: active_pages]
    pages = placement[trace.pages]
    return Trace(
        trace.ops,
        pages,
        name=profile.name,
        write_bandwidth_mbps=profile.write_bandwidth_mbps,
    )
