"""Plain-text trace import/export.

For interoperability with externally collected traces (gem5/NVMain
post-processing scripts typically emit one request per line), traces can
be exchanged in a simple text format::

    # comment lines start with '#'
    W 0x1a2b      <- write to byte address 0x1a2b (mapped to its page)
    R 4096        <- read, decimal addresses accepted
    W 8192 extra-fields-are-ignored

Addresses are byte addresses; the loader shifts them to page granularity
(the paper's wear model).  The writer emits page addresses back as byte
addresses of the page base.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from ..config import PAPER_PAGE_BYTES
from ..errors import TraceError
from .request import OP_READ, OP_WRITE
from .trace import Trace

_OPS = {"R": OP_READ, "W": OP_WRITE}
_OP_LETTERS = {OP_READ: "R", OP_WRITE: "W"}


def load_text_trace(
    path: str,
    page_bytes: int = PAPER_PAGE_BYTES,
    name: Optional[str] = None,
    write_bandwidth_mbps: Optional[float] = None,
) -> Trace:
    """Parse a text trace file into a :class:`Trace`."""
    if page_bytes < 1:
        raise TraceError("page size must be positive")
    if not os.path.exists(path):
        raise TraceError(f"trace file not found: {path}")
    shift = page_bytes.bit_length() - 1
    if (1 << shift) != page_bytes:
        raise TraceError(f"page size must be a power of two, got {page_bytes}")

    ops = []
    pages = []
    with open(path) as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            if len(fields) < 2:
                raise TraceError(
                    f"{path}:{line_number}: expected 'OP ADDRESS', got {line!r}"
                )
            op_letter = fields[0].upper()
            if op_letter not in _OPS:
                raise TraceError(
                    f"{path}:{line_number}: unknown op {fields[0]!r} (use R/W)"
                )
            try:
                address = int(fields[1], 0)
            except ValueError:
                raise TraceError(
                    f"{path}:{line_number}: bad address {fields[1]!r}"
                ) from None
            if address < 0:
                raise TraceError(f"{path}:{line_number}: negative address")
            ops.append(_OPS[op_letter])
            pages.append(address >> shift)
    if not ops:
        raise TraceError(f"{path}: no requests found")
    return Trace(
        np.array(ops, dtype=np.uint8),
        np.array(pages, dtype=np.int64),
        name=name or os.path.splitext(os.path.basename(path))[0],
        write_bandwidth_mbps=write_bandwidth_mbps,
    )


def save_text_trace(
    trace: Trace,
    path: str,
    page_bytes: int = PAPER_PAGE_BYTES,
) -> None:
    """Write ``trace`` in the text format (page-base byte addresses)."""
    if page_bytes < 1:
        raise TraceError("page size must be positive")
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        handle.write(f"# trace: {trace.name}\n")
        if trace.write_bandwidth_mbps is not None:
            handle.write(f"# write_bandwidth_mbps: {trace.write_bandwidth_mbps}\n")
        for op, page in zip(trace.ops.tolist(), trace.pages.tolist()):
            handle.write(f"{_OP_LETTERS[op]} 0x{page * page_bytes:x}\n")
