"""Plain-text trace import/export.

For interoperability with externally collected traces (gem5/NVMain
post-processing scripts typically emit one request per line), traces can
be exchanged in a simple text format::

    # comment lines start with '#'
    W 0x1a2b      <- write to byte address 0x1a2b (mapped to its page)
    R 4096        <- read, decimal addresses accepted
    W 8192 extra-fields-are-ignored

Addresses are byte addresses; the loader shifts them to page granularity
(the paper's wear model).  The writer emits page addresses back as byte
addresses of the page base.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

import numpy as np

from ..config import PAPER_PAGE_BYTES
from ..errors import TraceError
from .request import OP_READ, OP_WRITE
from .stream import DEFAULT_CHUNK_REQUESTS, Chunk, TraceStream
from .trace import Trace

_OPS = {"R": OP_READ, "W": OP_WRITE}
_OP_LETTERS = {OP_READ: "R", OP_WRITE: "W"}


def _page_shift(page_bytes: int) -> int:
    """Validated power-of-two page size -> address shift."""
    if page_bytes < 1:
        raise TraceError("page size must be positive")
    shift = page_bytes.bit_length() - 1
    if (1 << shift) != page_bytes:
        raise TraceError(f"page size must be a power of two, got {page_bytes}")
    return shift


def _parse_line(
    path: str, line_number: int, raw: str, shift: int
) -> Optional[Tuple[int, int]]:
    """One text-trace line -> ``(op, page)``, or ``None`` for comments."""
    line = raw.strip()
    if not line or line.startswith("#"):
        return None
    fields = line.split()
    if len(fields) < 2:
        raise TraceError(
            f"{path}:{line_number}: expected 'OP ADDRESS', got {line!r}"
        )
    op_letter = fields[0].upper()
    if op_letter not in _OPS:
        raise TraceError(
            f"{path}:{line_number}: unknown op {fields[0]!r} (use R/W)"
        )
    try:
        address = int(fields[1], 0)
    except ValueError:
        raise TraceError(
            f"{path}:{line_number}: bad address {fields[1]!r}"
        ) from None
    if address < 0:
        raise TraceError(f"{path}:{line_number}: negative address")
    return _OPS[op_letter], address >> shift


class TextTraceStream(TraceStream):
    """Constant-memory chunked reader for the text trace format.

    Parses at most ``chunk_size`` requests per :meth:`next_chunk`, so a
    multi-gigabyte text trace streams without ever being held whole;
    :meth:`rewind` seeks back to the top for trace looping.  Per-line
    diagnostics (``path:line: ...``) are identical to
    :func:`load_text_trace`, which is now a thin
    :meth:`~repro.traces.stream.TraceStream.materialize` over this
    reader.
    """

    def __init__(
        self,
        path: str,
        page_bytes: int = PAPER_PAGE_BYTES,
        chunk_size: int = DEFAULT_CHUNK_REQUESTS,
        name: Optional[str] = None,
        write_bandwidth_mbps: Optional[float] = None,
    ):
        self._shift = _page_shift(page_bytes)
        if chunk_size < 1:
            raise TraceError(f"chunk size must be positive, got {chunk_size}")
        if not os.path.exists(path):
            raise TraceError(f"trace file not found: {path}")
        self.path = path
        self.chunk_size = chunk_size
        self.name = name or os.path.splitext(os.path.basename(path))[0]
        self.write_bandwidth_mbps = write_bandwidth_mbps
        self._handle = open(path)
        self._line_number = 0

    def rewind(self) -> None:
        if self._handle is None:
            raise TraceError(f"stream for {self.path} is closed")
        self._handle.seek(0)
        self._line_number = 0

    def next_chunk(self) -> Optional[Chunk]:
        if self._handle is None:
            raise TraceError(f"stream for {self.path} is closed")
        ops = []
        pages = []
        path, shift = self.path, self._shift
        for raw in self._handle:
            self._line_number += 1
            parsed = _parse_line(path, self._line_number, raw, shift)
            if parsed is None:
                continue
            ops.append(parsed[0])
            pages.append(parsed[1])
            if len(ops) == self.chunk_size:
                break
        if not ops:
            return None
        return np.array(ops, dtype=np.uint8), np.array(pages, dtype=np.int64)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def load_text_trace(
    path: str,
    page_bytes: int = PAPER_PAGE_BYTES,
    name: Optional[str] = None,
    write_bandwidth_mbps: Optional[float] = None,
) -> Trace:
    """Parse a text trace file into a :class:`Trace` (materialized)."""
    with TextTraceStream(
        path,
        page_bytes=page_bytes,
        name=name,
        write_bandwidth_mbps=write_bandwidth_mbps,
    ) as stream:
        try:
            return stream.materialize()
        except TraceError as error:
            if "contains no requests" in str(error):
                raise TraceError(f"{path}: no requests found") from None
            raise


def save_text_trace(
    trace: Trace,
    path: str,
    page_bytes: int = PAPER_PAGE_BYTES,
) -> None:
    """Write ``trace`` in the text format (page-base byte addresses)."""
    if page_bytes < 1:
        raise TraceError("page size must be positive")
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        handle.write(f"# trace: {trace.name}\n")
        if trace.write_bandwidth_mbps is not None:
            handle.write(f"# write_bandwidth_mbps: {trace.write_bandwidth_mbps}\n")
        for op, page in zip(trace.ops.tolist(), trace.pages.tolist()):
            handle.write(f"{_OP_LETTERS[op]} 0x{page * page_bytes:x}\n")
