"""Trace container (the materialized adapter of the workload pipeline).

A :class:`Trace` is a finite request sequence plus the workload metadata
the lifetime and timing models need (write bandwidth, read/write mix).
Lifetime simulation loops the trace until a page wears out, exactly as
the paper does with its gem5-collected traces.

The canonical workload source in this repo is the *streaming* protocol
(:class:`~repro.traces.stream.TraceStream`, see ``docs/workloads.md``);
a ``Trace`` is its thin fully-materialized adapter, appropriate for
small synthetic workloads and tests where holding both arrays in RAM is
fine.  :meth:`Trace.stream` wraps a trace as a chunked stream;
:meth:`Trace.from_stream` gathers a (finite or capped) stream back into
a trace.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional

import numpy as np

from ..errors import TraceError
from ..units import mbps_to_bytes_per_second
from .request import MemoryRequest, OP_READ, OP_WRITE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .stream import MaterializedStream, TraceStream


class Trace:
    """A sequence of page-granular memory requests with metadata."""

    def __init__(
        self,
        ops: np.ndarray,
        pages: np.ndarray,
        name: str = "trace",
        write_bandwidth_mbps: Optional[float] = None,
    ):
        ops_array = np.asarray(ops, dtype=np.uint8)
        pages_array = np.asarray(pages, dtype=np.int64)
        if ops_array.ndim != 1 or pages_array.ndim != 1:
            raise TraceError("ops and pages must be 1-D")
        if ops_array.shape != pages_array.shape:
            raise TraceError(
                f"ops/pages length mismatch: {ops_array.shape} vs {pages_array.shape}"
            )
        if ops_array.size == 0:
            raise TraceError("trace must contain at least one request")
        invalid_ops = ~np.isin(ops_array, (OP_READ, OP_WRITE))
        if invalid_ops.any():
            raise TraceError("trace contains invalid op codes")
        if (pages_array < 0).any():
            raise TraceError("trace contains negative page addresses")
        self.ops = ops_array
        self.pages = pages_array
        self.name = name
        self.write_bandwidth_mbps = write_bandwidth_mbps

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_requests(
        cls,
        requests: List[MemoryRequest],
        name: str = "trace",
        write_bandwidth_mbps: Optional[float] = None,
    ) -> "Trace":
        """Build a trace from request objects."""
        ops = np.array([r.op for r in requests], dtype=np.uint8)
        pages = np.array([r.logical_page for r in requests], dtype=np.int64)
        return cls(ops, pages, name=name, write_bandwidth_mbps=write_bandwidth_mbps)

    @classmethod
    def writes_only(
        cls,
        pages,
        name: str = "trace",
        write_bandwidth_mbps: Optional[float] = None,
    ) -> "Trace":
        """Build an all-write trace from a page sequence."""
        pages_array = np.asarray(pages, dtype=np.int64)
        ops = np.full(pages_array.size, OP_WRITE, dtype=np.uint8)
        return cls(ops, pages_array, name=name, write_bandwidth_mbps=write_bandwidth_mbps)

    @classmethod
    def from_stream(
        cls, stream: "TraceStream", max_requests: Optional[int] = None
    ) -> "Trace":
        """Materialize a stream (rewound; capped at ``max_requests``)."""
        return stream.materialize(max_requests=max_requests)

    def stream(self, chunk_size: Optional[int] = None) -> "MaterializedStream":
        """This trace as a chunked :class:`TraceStream` (zero-copy views)."""
        from .stream import DEFAULT_CHUNK_REQUESTS, MaterializedStream

        return MaterializedStream(
            self, chunk_size=chunk_size or DEFAULT_CHUNK_REQUESTS
        )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def n_requests(self) -> int:
        """Total requests in the trace."""
        return int(self.ops.size)

    @property
    def n_writes(self) -> int:
        """Write requests in the trace."""
        return int((self.ops == OP_WRITE).sum())

    @property
    def write_fraction(self) -> float:
        """Fraction of requests that are writes."""
        return self.n_writes / self.n_requests

    @property
    def footprint_pages(self) -> int:
        """Number of distinct pages the trace touches."""
        return int(np.unique(self.pages).size)

    @property
    def max_page(self) -> int:
        """Highest page address referenced."""
        return int(self.pages.max())

    @property
    def write_bandwidth_bytes(self) -> Optional[float]:
        """Write bandwidth in bytes/second, if the trace declares one."""
        if self.write_bandwidth_mbps is None:
            return None
        return mbps_to_bytes_per_second(self.write_bandwidth_mbps)

    def write_pages(self) -> np.ndarray:
        """Page addresses of the write requests, in order."""
        return self.pages[self.ops == OP_WRITE]

    def write_page_list(self) -> List[int]:
        """Write pages as a plain list (fast to iterate in hot loops)."""
        return self.write_pages().tolist()

    def write_histogram(self, n_pages: int) -> np.ndarray:
        """Per-page write counts over ``[0, n_pages)``."""
        writes = self.write_pages()
        if writes.size and int(writes.max()) >= n_pages:
            raise TraceError(
                f"trace touches page {int(writes.max())} >= n_pages {n_pages}"
            )
        return np.bincount(writes, minlength=n_pages)

    def requests(self) -> Iterator[MemoryRequest]:
        """Iterate requests as objects (convenience; slow path)."""
        for op, page in zip(self.ops.tolist(), self.pages.tolist()):
            yield MemoryRequest(op, page)

    def __len__(self) -> int:
        return self.n_requests

    def __repr__(self) -> str:
        return (
            f"Trace(name={self.name!r}, requests={self.n_requests}, "
            f"writes={self.n_writes}, footprint={self.footprint_pages})"
        )
