"""Trace file I/O.

Traces persist in three formats, all openable through one front door:

* ``.npz`` archives (ops, pages, metadata) — the original materialized
  format (:func:`save_trace` / :func:`load_trace`);
* chunked ``.twt`` files — the streaming-first format replayable at
  constant memory (:mod:`repro.traces.chunked`);
* text formats — the repo's ``W 0x...`` lines
  (:mod:`repro.traces.text_format`) and MSR-Cambridge-style block-trace
  CSV (:mod:`repro.traces.blocktrace`).

:func:`open_trace_stream` sniffs the format and returns a
:class:`~repro.traces.stream.TraceStream`; :func:`trace_info` peeks
name/bandwidth/length metadata without decompressing any request
arrays, for callers (CLIs, report tables) that never need the data.
"""

from __future__ import annotations

import json
import os
import zipfile
import zlib
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import TraceError
from .stream import DEFAULT_CHUNK_REQUESTS, TraceStream
from .trace import Trace

_FORMAT_VERSION = 1

#: Zip archive magic (``.npz`` files are zip archives).
_ZIP_MAGIC = b"PK\x03\x04"


def save_trace(trace: Trace, path: str) -> None:
    """Write ``trace`` to ``path`` (npz format)."""
    metadata = {
        "version": _FORMAT_VERSION,
        "name": trace.name,
        "write_bandwidth_mbps": trace.write_bandwidth_mbps,
    }
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez_compressed(
        path,
        ops=trace.ops,
        pages=trace.pages,
        metadata=np.frombuffer(json.dumps(metadata).encode(), dtype=np.uint8),
    )


def load_trace(path: str) -> Trace:
    """Load a trace previously written by :func:`save_trace`.

    Every way the file can be bad — missing, not an npz archive,
    truncated mid-member, missing members, undecodable or non-object
    metadata, wrong format version, or record arrays that fail
    :class:`Trace` validation — raises :class:`~repro.errors.TraceError`
    naming the file and the offending record, never a bare
    ``zipfile``/``zlib``/``numpy`` exception.
    """
    if not os.path.exists(path):
        raise TraceError(f"trace file not found: {path}")
    try:
        archive = np.load(path)
    except (zipfile.BadZipFile, ValueError, OSError) as error:
        raise TraceError(
            f"unreadable trace file {path}: not a valid npz archive ({error})"
        ) from None
    with archive:
        members = {}
        for member in ("ops", "pages", "metadata"):
            if member not in archive.files:
                raise TraceError(
                    f"malformed trace file {path}: missing record {member!r}"
                )
            try:
                members[member] = archive[member]
            except (zipfile.BadZipFile, zlib.error, ValueError, OSError, EOFError) as error:
                raise TraceError(
                    f"truncated trace file {path}: record {member!r} "
                    f"is unreadable ({error})"
                ) from None
        try:
            metadata = json.loads(members["metadata"].tobytes().decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise TraceError(f"malformed trace metadata in {path}: {error}") from None
    if not isinstance(metadata, dict):
        raise TraceError(
            f"malformed trace metadata in {path}: expected a JSON object, "
            f"got {type(metadata).__name__}"
        )
    version = metadata.get("version")
    if version != _FORMAT_VERSION:
        raise TraceError(
            f"unsupported trace format version {version!r} in {path}"
        )
    try:
        return Trace(
            members["ops"],
            members["pages"],
            name=metadata.get("name", "trace"),
            write_bandwidth_mbps=metadata.get("write_bandwidth_mbps"),
        )
    except (TraceError, ValueError, TypeError) as error:
        raise TraceError(f"invalid trace records in {path}: {error}") from None


@dataclass(frozen=True)
class TraceInfo:
    """Workload metadata peeked from a trace file without loading it."""

    path: str
    #: ``"npz"``, ``"chunked"``, ``"text"`` or ``"csv"``.
    format: str
    name: str
    write_bandwidth_mbps: Optional[float]
    #: Total requests, when the format records it cheaply (``None`` for
    #: text formats, which would need a full parse).
    n_requests: Optional[int]


def _sniff_format(path: str) -> str:
    """Classify a trace file by magic bytes, falling back to extension."""
    from .chunked import CHUNKED_MAGIC

    if not os.path.exists(path):
        raise TraceError(f"trace file not found: {path}")
    with open(path, "rb") as handle:
        magic = handle.read(8)
    if magic[: len(CHUNKED_MAGIC)] == CHUNKED_MAGIC:
        return "chunked"
    if magic[: len(_ZIP_MAGIC)] == _ZIP_MAGIC:
        return "npz"
    if os.path.splitext(path)[1].lower() == ".csv":
        return "csv"
    return "text"


def _npz_request_count(path: str) -> Optional[int]:
    """Request count from the npy header of the ``ops`` member.

    Reads ~100 bytes of the member stream — never the compressed array
    data — so peeking a multi-gigabyte archive stays O(1).
    """
    try:
        with zipfile.ZipFile(path) as archive:
            with archive.open("ops.npy") as member:
                version = np.lib.format.read_magic(member)
                if version == (1, 0):
                    shape, _, _ = np.lib.format.read_array_header_1_0(member)
                elif version == (2, 0):
                    shape, _, _ = np.lib.format.read_array_header_2_0(member)
                else:
                    return None
    except (zipfile.BadZipFile, KeyError, ValueError, OSError) as error:
        raise TraceError(
            f"unreadable trace file {path}: cannot peek request count ({error})"
        ) from None
    return int(shape[0]) if shape else None


def trace_info(path: str) -> TraceInfo:
    """Fast metadata peek: name/bandwidth/length without array loads.

    For ``.npz`` traces only the (tiny) metadata member and the npy
    header of the ``ops`` member are read — the compressed ops/pages
    arrays are never decompressed.  For chunked ``.twt`` traces the
    header and the fixed-size chunk headers are read, seeking over every
    payload.  Text formats report what the file can say without a full
    parse.  Raises :class:`~repro.errors.TraceError` with the same
    structured diagnostics as the full loaders.
    """
    kind = _sniff_format(path)
    if kind == "chunked":
        from .chunked import ChunkedFileStream

        with ChunkedFileStream(path) as stream:
            return TraceInfo(
                path=path,
                format=kind,
                name=stream.name,
                write_bandwidth_mbps=stream.write_bandwidth_mbps,
                n_requests=stream.n_requests,
            )
    if kind == "npz":
        try:
            archive = np.load(path)
        except (zipfile.BadZipFile, ValueError, OSError) as error:
            raise TraceError(
                f"unreadable trace file {path}: not a valid npz archive ({error})"
            ) from None
        with archive:
            if "metadata" not in archive.files:
                raise TraceError(
                    f"malformed trace file {path}: missing record 'metadata'"
                )
            try:
                raw = archive["metadata"]
            except (zipfile.BadZipFile, zlib.error, ValueError, OSError, EOFError) as error:
                raise TraceError(
                    f"truncated trace file {path}: record 'metadata' is "
                    f"unreadable ({error})"
                ) from None
            try:
                metadata = json.loads(raw.tobytes().decode())
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise TraceError(
                    f"malformed trace metadata in {path}: {error}"
                ) from None
        if not isinstance(metadata, dict):
            raise TraceError(
                f"malformed trace metadata in {path}: expected a JSON object, "
                f"got {type(metadata).__name__}"
            )
        version = metadata.get("version")
        if version != _FORMAT_VERSION:
            raise TraceError(f"unsupported trace format version {version!r} in {path}")
        return TraceInfo(
            path=path,
            format=kind,
            name=metadata.get("name", "trace"),
            write_bandwidth_mbps=metadata.get("write_bandwidth_mbps"),
            n_requests=_npz_request_count(path),
        )
    # Text formats: nothing cheap beyond the filename.
    return TraceInfo(
        path=path,
        format=kind,
        name=os.path.splitext(os.path.basename(path))[0],
        write_bandwidth_mbps=None,
        n_requests=None,
    )


def open_trace_stream(
    path: str, chunk_size: int = DEFAULT_CHUNK_REQUESTS
) -> TraceStream:
    """Open any supported trace file as a :class:`TraceStream`.

    Chunked ``.twt`` files and text formats stream at constant memory;
    ``.npz`` archives are inherently monolithic, so they load once and
    stream through the :class:`~repro.traces.stream.MaterializedStream`
    adapter (``chunk_size`` sets the delivery granularity — for ``.twt``
    files the on-disk chunking already fixes it).
    """
    kind = _sniff_format(path)
    if kind == "chunked":
        from .chunked import ChunkedFileStream

        return ChunkedFileStream(path)
    if kind == "npz":
        return load_trace(path).stream(chunk_size)
    if kind == "csv":
        from .blocktrace import BlockTraceStream

        return BlockTraceStream(path, chunk_size=chunk_size)
    from .text_format import TextTraceStream

    return TextTraceStream(path, chunk_size=chunk_size)
