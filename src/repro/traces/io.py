"""Trace file I/O.

Traces persist as ``.npz`` archives (ops, pages, and metadata), so
generated workloads can be cached between benchmark runs and shared.
"""

from __future__ import annotations

import json
import os

import numpy as np

from ..errors import TraceError
from .trace import Trace

_FORMAT_VERSION = 1


def save_trace(trace: Trace, path: str) -> None:
    """Write ``trace`` to ``path`` (npz format)."""
    metadata = {
        "version": _FORMAT_VERSION,
        "name": trace.name,
        "write_bandwidth_mbps": trace.write_bandwidth_mbps,
    }
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez_compressed(
        path,
        ops=trace.ops,
        pages=trace.pages,
        metadata=np.frombuffer(json.dumps(metadata).encode(), dtype=np.uint8),
    )


def load_trace(path: str) -> Trace:
    """Load a trace previously written by :func:`save_trace`."""
    if not os.path.exists(path):
        raise TraceError(f"trace file not found: {path}")
    with np.load(path) as archive:
        try:
            ops = archive["ops"]
            pages = archive["pages"]
            raw_metadata = archive["metadata"]
        except KeyError as error:
            raise TraceError(f"malformed trace file {path}: missing {error}") from None
        try:
            metadata = json.loads(raw_metadata.tobytes().decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise TraceError(f"malformed trace metadata in {path}: {error}") from None
    version = metadata.get("version")
    if version != _FORMAT_VERSION:
        raise TraceError(
            f"unsupported trace format version {version!r} in {path}"
        )
    return Trace(
        ops,
        pages,
        name=metadata.get("name", "trace"),
        write_bandwidth_mbps=metadata.get("write_bandwidth_mbps"),
    )
