"""Trace file I/O.

Traces persist as ``.npz`` archives (ops, pages, and metadata), so
generated workloads can be cached between benchmark runs and shared.
"""

from __future__ import annotations

import json
import os
import zipfile
import zlib

import numpy as np

from ..errors import TraceError
from .trace import Trace

_FORMAT_VERSION = 1


def save_trace(trace: Trace, path: str) -> None:
    """Write ``trace`` to ``path`` (npz format)."""
    metadata = {
        "version": _FORMAT_VERSION,
        "name": trace.name,
        "write_bandwidth_mbps": trace.write_bandwidth_mbps,
    }
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez_compressed(
        path,
        ops=trace.ops,
        pages=trace.pages,
        metadata=np.frombuffer(json.dumps(metadata).encode(), dtype=np.uint8),
    )


def load_trace(path: str) -> Trace:
    """Load a trace previously written by :func:`save_trace`.

    Every way the file can be bad — missing, not an npz archive,
    truncated mid-member, missing members, undecodable or non-object
    metadata, wrong format version, or record arrays that fail
    :class:`Trace` validation — raises :class:`~repro.errors.TraceError`
    naming the file and the offending record, never a bare
    ``zipfile``/``zlib``/``numpy`` exception.
    """
    if not os.path.exists(path):
        raise TraceError(f"trace file not found: {path}")
    try:
        archive = np.load(path)
    except (zipfile.BadZipFile, ValueError, OSError) as error:
        raise TraceError(
            f"unreadable trace file {path}: not a valid npz archive ({error})"
        ) from None
    with archive:
        members = {}
        for member in ("ops", "pages", "metadata"):
            if member not in archive.files:
                raise TraceError(
                    f"malformed trace file {path}: missing record {member!r}"
                )
            try:
                members[member] = archive[member]
            except (zipfile.BadZipFile, zlib.error, ValueError, OSError, EOFError) as error:
                raise TraceError(
                    f"truncated trace file {path}: record {member!r} "
                    f"is unreadable ({error})"
                ) from None
        try:
            metadata = json.loads(members["metadata"].tobytes().decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise TraceError(f"malformed trace metadata in {path}: {error}") from None
    if not isinstance(metadata, dict):
        raise TraceError(
            f"malformed trace metadata in {path}: expected a JSON object, "
            f"got {type(metadata).__name__}"
        )
    version = metadata.get("version")
    if version != _FORMAT_VERSION:
        raise TraceError(
            f"unsupported trace format version {version!r} in {path}"
        )
    try:
        return Trace(
            members["ops"],
            members["pages"],
            name=metadata.get("name", "trace"),
            write_bandwidth_mbps=metadata.get("write_bandwidth_mbps"),
        )
    except (TraceError, ValueError, TypeError) as error:
        raise TraceError(f"invalid trace records in {path}: {error}") from None
