"""Streaming workload sources: the :class:`TraceStream` protocol.

The paper loops finite gem5-collected traces to failure; the repo's
north star is multi-billion-request campaigns, which a fully
materialized :class:`~repro.traces.trace.Trace` (two in-RAM numpy
arrays) cannot reach.  A :class:`TraceStream` is the streaming-first
replacement: a *chunked*, *rewindable* source of ``(ops, pages)`` array
pairs plus the workload metadata the lifetime and timing models need.

Design points:

* **Chunked** — :meth:`TraceStream.next_chunk` yields bounded arrays,
  so peak memory is the chunk size, never the stream length.  Chunk
  boundaries are an execution detail: the request *sequence* a stream
  yields is independent of how it is chunked, which is what lets the
  engine's batch-identity contract extend to streamed runs
  (``tests/test_engine_identity.py``).
* **Rewindable** — :meth:`TraceStream.rewind` restarts a finite stream
  from its first request, so drivers can loop a trace to failure
  exactly as the paper does.  Endless generators (the FTL workload,
  :mod:`repro.traces.ftl`) never exhaust and mark themselves with
  :attr:`TraceStream.endless`.
* **Adaptable** — :meth:`TraceStream.materialize` gathers a stream into
  a plain :class:`~repro.traces.trace.Trace`; ``Trace.stream()`` wraps a
  trace back into a :class:`MaterializedStream`.  ``Trace`` is thereby a
  thin materialized adapter over the streaming protocol, kept for small
  synthetic workloads and tests.

See ``docs/workloads.md`` for the full pipeline story.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Iterator, Optional, Tuple

import numpy as np

from ..errors import TraceError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .trace import Trace

#: One ``(ops, pages)`` array pair: ``uint8`` op codes and ``int64``
#: page addresses of equal length.
Chunk = Tuple[np.ndarray, np.ndarray]

#: Default requests per chunk.  Large enough that per-chunk Python
#: overhead vanishes against the vectorized work, small enough that a
#: streamed campaign's peak RSS stays a few megabytes.
DEFAULT_CHUNK_REQUESTS = 65536


class TraceStream(abc.ABC):
    """Chunked, rewindable source of page-granular memory requests."""

    #: Workload label for result records.
    name: str = "stream"
    #: Sustained write bandwidth (MB/s) for lifetime-in-years scaling,
    #: if the workload declares one.
    write_bandwidth_mbps: Optional[float] = None
    #: True for generators that never exhaust (``next_chunk`` never
    #: returns ``None``); :meth:`materialize` refuses them without an
    #: explicit request cap.
    endless: bool = False

    @property
    def n_requests(self) -> Optional[int]:
        """Total requests in the stream, if finite and known."""
        return None

    @abc.abstractmethod
    def rewind(self) -> None:
        """Restart the stream from its first request."""

    @abc.abstractmethod
    def next_chunk(self) -> Optional[Chunk]:
        """The next ``(ops, pages)`` chunk, or ``None`` when exhausted.

        Chunks are non-empty ``(uint8, int64)`` array pairs of equal
        length.  Consumers must not assume any particular chunk size —
        only that the concatenated sequence of chunks is the stream's
        request sequence.
        """

    def seek(self, chunk_index: int) -> None:
        """Position the stream so the next chunk is chunk ``chunk_index``.

        ``seek(0)`` is :meth:`rewind`.  Seeking past the end of a finite
        stream raises :class:`TraceError` — a resume must never silently
        start from a different request than the snapshot recorded.  The
        base implementation rewinds and replays ``chunk_index`` chunks;
        streams with cheap positioning (materialized slices, chunked
        files with an offset index, pure generators) override it with an
        O(1)/O(index) path.
        """
        if chunk_index < 0:
            raise TraceError(f"chunk index must be non-negative, got {chunk_index}")
        self.rewind()
        for skipped in range(chunk_index):
            if self.next_chunk() is None:
                raise TraceError(
                    f"stream {self.name!r} exhausted at chunk {skipped} "
                    f"while seeking to chunk {chunk_index}"
                )

    def snapshot_position(self, chunk_index: int) -> dict:
        """Serializable stream position after ``chunk_index`` chunks.

        ``chunk_index`` counts the chunks consumed since the last
        rewind; the driver tracks it, because the base protocol cannot
        observe :meth:`next_chunk` calls.  Streams whose position is not
        a pure function of the chunk count (stateful generators)
        override this to capture their own registers.
        """
        return {"chunk_index": int(chunk_index)}

    def restore_position(self, state: dict) -> None:
        """Restore a position captured by :meth:`snapshot_position`."""
        self.seek(int(state["chunk_index"]))  # type: ignore[arg-type]

    def chunks(self) -> Iterator[Chunk]:
        """Iterate chunks until exhaustion (endless streams never stop)."""
        while True:
            chunk = self.next_chunk()
            if chunk is None:
                return
            yield chunk

    def materialize(self, max_requests: Optional[int] = None) -> "Trace":
        """Gather the whole (rewound) stream into a :class:`Trace`.

        ``max_requests`` truncates the result; it is mandatory for
        endless streams, which otherwise raise :class:`TraceError`
        rather than consume unbounded memory.
        """
        from .trace import Trace

        if self.endless and max_requests is None:
            raise TraceError(
                f"stream {self.name!r} is endless; materialize() needs "
                "an explicit max_requests cap"
            )
        if max_requests is not None and max_requests < 1:
            raise TraceError("max_requests must be positive")
        self.rewind()
        ops_parts = []
        pages_parts = []
        gathered = 0
        for ops, pages in self.chunks():
            if max_requests is not None and gathered + ops.size > max_requests:
                take = max_requests - gathered
                ops, pages = ops[:take], pages[:take]
            ops_parts.append(ops)
            pages_parts.append(pages)
            gathered += ops.size
            if max_requests is not None and gathered >= max_requests:
                break
        if not gathered:
            raise TraceError(f"stream {self.name!r} contains no requests")
        return Trace(
            np.concatenate(ops_parts),
            np.concatenate(pages_parts),
            name=self.name,
            write_bandwidth_mbps=self.write_bandwidth_mbps,
        )

    def close(self) -> None:
        """Release any underlying resources (file handles)."""

    def __enter__(self) -> "TraceStream":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        total = self.n_requests
        size = "endless" if self.endless else (total if total is not None else "?")
        return f"{type(self).__name__}(name={self.name!r}, requests={size})"


class MaterializedStream(TraceStream):
    """Streaming view over an in-RAM :class:`~repro.traces.trace.Trace`.

    The adapter that keeps the legacy materialized path alive inside the
    streaming-first pipeline: chunks are zero-copy slices of the trace's
    arrays.  ``Trace.stream(chunk_size)`` is the ergonomic constructor.
    """

    def __init__(self, trace: "Trace", chunk_size: int = DEFAULT_CHUNK_REQUESTS):
        if chunk_size < 1:
            raise TraceError(f"chunk size must be positive, got {chunk_size}")
        self._trace = trace
        self._chunk_size = chunk_size
        self._position = 0
        self.name = trace.name
        self.write_bandwidth_mbps = trace.write_bandwidth_mbps

    @property
    def n_requests(self) -> Optional[int]:
        return self._trace.n_requests

    @property
    def trace(self) -> "Trace":
        """The backing trace (adapter escape hatch)."""
        return self._trace

    def rewind(self) -> None:
        self._position = 0

    def seek(self, chunk_index: int) -> None:
        if chunk_index < 0:
            raise TraceError(f"chunk index must be non-negative, got {chunk_index}")
        position = chunk_index * self._chunk_size
        total = self._trace.n_requests
        # Chunk ceil(total / chunk_size) is the first past-EOF chunk.
        n_chunks = -(-total // self._chunk_size)
        if chunk_index > n_chunks:
            raise TraceError(
                f"stream {self.name!r} has {n_chunks} chunks; cannot seek "
                f"to chunk {chunk_index}"
            )
        self._position = min(position, total)

    def next_chunk(self) -> Optional[Chunk]:
        start = self._position
        trace = self._trace
        if start >= trace.n_requests:
            return None
        stop = min(start + self._chunk_size, trace.n_requests)
        self._position = stop
        return trace.ops[start:stop], trace.pages[start:stop]
