"""The memory request model.

The attack model of Section 3.1 defines requests as ``(op, addr, data)``
tuples at page granularity; wear depends only on ``op`` and ``addr``, so
the trace machinery carries those two (data payloads never influence
page-level wear under the paper's write model).
"""

from __future__ import annotations

from dataclasses import dataclass

OP_READ = 0
OP_WRITE = 1

_OP_NAMES = {OP_READ: "read", OP_WRITE: "write"}


@dataclass(frozen=True)
class MemoryRequest:
    """One memory request at page granularity."""

    op: int
    logical_page: int

    def __post_init__(self) -> None:
        if self.op not in (OP_READ, OP_WRITE):
            raise ValueError(f"op must be OP_READ or OP_WRITE, got {self.op}")
        if self.logical_page < 0:
            raise ValueError(
                f"logical page must be non-negative, got {self.logical_page}"
            )

    @property
    def is_write(self) -> bool:
        """Whether this request wears the PCM."""
        return self.op == OP_WRITE

    @property
    def op_name(self) -> str:
        """Human-readable operation name."""
        return _OP_NAMES[self.op]
