"""FTL-style dynamic workload generator (endless stream).

Static synthetic profiles (:mod:`repro.traces.synth`) cannot express
the allocator/OS-level dynamics that actually drive wear — SoftWear
(arXiv 2004.03244) shows wear behavior follows allocation, invalidation
and hot/cold reuse, and WoLFRaM (arXiv 2010.02825) evaluates under
exactly such long-horizon dynamic write streams.
:class:`FTLWorkloadStream` models that traffic at page granularity as a
flash-translation-layer-style mix:

* **hot updates** — in-place rewrites of a small hot working set
  (``hot_fraction`` of the logical space), the update traffic an FTL's
  hot/cold separation exists for;
* **allocations** — a *leading cursor* walking a fixed random
  permutation of the cold region, the log-structured append pattern of
  fresh allocations (a page "invalidated" by its rewrite elsewhere is
  eventually reallocated when the cursor wraps);
* **GC relocations** — a *trailing cursor* over the same cold
  permutation, modeling the garbage collector compacting behind the
  allocator;
* **reads** — uniform over the logical space (reads do not wear PCM but
  exercise the streaming read/write mix plumbing).

Determinism: all randomness derives from ``repro.rng`` streams.  The
generator draws **exactly three uniform doubles per request** from one
sequentially filled PCG64 stream, and carries its cursors across chunk
boundaries via cumulative-count ranks — so the request sequence is a
pure function of ``(seed, config, n_pages)`` and *independent of the
chunk size* it is drawn in.  That chunk-size invariance is what makes
``chunk_size`` an execution knob (excluded from cache fingerprints) and
is pinned by ``tests/test_streams.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ConfigError, TraceError
from ..rng.streams import make_generator
from .request import OP_READ, OP_WRITE
from .stream import DEFAULT_CHUNK_REQUESTS, Chunk, TraceStream


@dataclass(frozen=True)
class FTLConfig:
    """Traffic mix of the FTL-style dynamic workload.

    A frozen dataclass so it canonicalizes into cache fingerprints when
    passed through ``stream_kwargs`` (see :mod:`repro.exec.hashing`).
    """

    #: Fraction of requests that are writes.
    write_fraction: float = 0.75
    #: Fraction of the logical space forming the hot working set.
    hot_fraction: float = 0.125
    #: Fraction of writes that are hot-set updates.
    hot_write_fraction: float = 0.70
    #: Fraction of writes that are GC relocations (trailing cursor).
    gc_write_fraction: float = 0.10
    #: Declared sustained write bandwidth (MB/s) for years() scaling.
    write_bandwidth_mbps: float = 400.0

    def validate(self) -> None:
        if not 0.0 < self.write_fraction <= 1.0:
            raise ConfigError(
                f"write_fraction must be in (0, 1], got {self.write_fraction}"
            )
        if not 0.0 < self.hot_fraction < 1.0:
            raise ConfigError(
                f"hot_fraction must be in (0, 1), got {self.hot_fraction}"
            )
        if self.hot_write_fraction < 0.0 or self.gc_write_fraction < 0.0:
            raise ConfigError("write-mix fractions must be non-negative")
        if self.hot_write_fraction + self.gc_write_fraction > 1.0:
            raise ConfigError(
                "hot_write_fraction + gc_write_fraction must not exceed 1"
            )
        if self.write_bandwidth_mbps <= 0:
            raise ConfigError("write bandwidth must be positive")


class FTLWorkloadStream(TraceStream):
    """Endless FTL-style dynamic write stream over ``n_pages`` pages."""

    name = "ftl"
    endless = True

    def __init__(
        self,
        n_pages: int,
        seed: int = 0,
        config: FTLConfig = FTLConfig(),
        chunk_size: int = DEFAULT_CHUNK_REQUESTS,
    ):
        if n_pages < 2:
            raise ConfigError(
                f"FTL workload needs at least two pages, got {n_pages}"
            )
        if chunk_size < 1:
            raise ConfigError(f"chunk size must be positive, got {chunk_size}")
        config.validate()
        self.n_pages = n_pages
        self.seed = seed
        self.config = config
        self.chunk_size = chunk_size
        self.write_bandwidth_mbps: Optional[float] = config.write_bandwidth_mbps
        # Fixed logical layout: one permutation, split hot | cold.  Drawn
        # from its own labeled stream so the per-request draws below stay
        # a pure 3-doubles-per-request sequence.
        layout = make_generator(seed, "ftl-layout").permutation(n_pages)
        n_hot = min(max(1, int(config.hot_fraction * n_pages)), n_pages - 1)
        self._hot_set = layout[:n_hot]
        self._cold_set = layout[n_hot:]
        self._rng = make_generator(seed, "ftl-requests")
        #: Allocation (leading) / GC (trailing) cursors over the cold
        #: permutation.  Plain Python ints: multi-billion-request
        #: campaigns overflow no fixed-width counter.
        self._alloc_cursor = 0
        self._gc_cursor = 0

    def rewind(self) -> None:
        """Restart the request stream (the layout is fixed at __init__)."""
        self._rng = make_generator(self.seed, "ftl-requests")
        self._alloc_cursor = 0
        self._gc_cursor = 0

    def seek(self, chunk_index: int) -> None:
        """Fast-forward by drawing (and discarding) whole chunks.

        The stream is a pure function of ``(seed, config, chunk_index)``
        — never of wall clock or prior consumers — so replaying from a
        rewind always lands on the identical position.  Endless streams
        cannot seek past EOF.
        """
        if chunk_index < 0:
            raise TraceError(
                f"chunk index must be non-negative, got {chunk_index}"
            )
        self.rewind()
        for _ in range(chunk_index):
            self.next_chunk()

    def snapshot_position(self, chunk_index: int) -> dict:
        """O(1) position: the PCG64 register plus the two cold cursors."""
        state = self._rng.bit_generator.state
        return {
            "alloc_cursor": self._alloc_cursor,
            "gc_cursor": self._gc_cursor,
            "rng_state": {
                "bit_generator": state["bit_generator"],
                "has_uint32": int(state["has_uint32"]),
                "state_inc": state["state"]["inc"],
                "state_state": state["state"]["state"],
                "uinteger": int(state["uinteger"]),
            },
        }

    def restore_position(self, state: dict) -> None:
        rng_state = state["rng_state"]
        self.rewind()
        self._rng.bit_generator.state = {
            "bit_generator": rng_state["bit_generator"],
            "state": {
                "state": int(rng_state["state_state"]),
                "inc": int(rng_state["state_inc"]),
            },
            "has_uint32": int(rng_state["has_uint32"]),
            "uinteger": int(rng_state["uinteger"]),
        }
        self._alloc_cursor = int(state["alloc_cursor"])
        self._gc_cursor = int(state["gc_cursor"])

    def next_chunk(self) -> Optional[Chunk]:
        k = self.chunk_size
        config = self.config
        # Exactly 3 sequential uniforms per request (C-order fill), so a
        # different chunk size consumes the identical prefix of the
        # stream — the chunk-size-invariance contract.
        u = self._rng.random((k, 3))
        is_write = u[:, 0] < config.write_fraction
        ops = np.where(is_write, OP_WRITE, OP_READ).astype(np.uint8)
        pages = np.empty(k, dtype=np.int64)

        # Reads: uniform over the logical space.
        n = self.n_pages
        read_mask = ~is_write
        if read_mask.any():
            idx = np.minimum((u[read_mask, 2] * n).astype(np.int64), n - 1)
            pages[read_mask] = idx

        hot_cut = config.hot_write_fraction
        gc_cut = hot_cut + config.gc_write_fraction
        kind = u[:, 1]
        hot_mask = is_write & (kind < hot_cut)
        gc_mask = is_write & (kind >= hot_cut) & (kind < gc_cut)
        alloc_mask = is_write & (kind >= gc_cut)

        if hot_mask.any():
            n_hot = self._hot_set.size
            idx = np.minimum((u[hot_mask, 2] * n_hot).astype(np.int64), n_hot - 1)
            pages[hot_mask] = self._hot_set[idx]

        n_cold = self._cold_set.size
        if gc_mask.any():
            # Trailing cursor: rank each GC event within the chunk and
            # offset by the carried cursor, so chunk boundaries are
            # invisible to the generated sequence.
            ranks = np.cumsum(gc_mask)[gc_mask] - 1
            pages[gc_mask] = self._cold_set[(self._gc_cursor + ranks) % n_cold]
            self._gc_cursor += int(ranks.size)
        if alloc_mask.any():
            ranks = np.cumsum(alloc_mask)[alloc_mask] - 1
            pages[alloc_mask] = self._cold_set[(self._alloc_cursor + ranks) % n_cold]
            self._alloc_cursor += int(ranks.size)
        return ops, pages
