"""MSR-Cambridge-style block-trace CSV import (streaming).

The MSR Cambridge storage traces (SNIA IOTTA; the de-facto standard
block-trace corpus, used by WoLFRaM among many others) are CSV lines::

    timestamp,hostname,disknumber,type,offset,size,responsetime
    128166372003061629,hm,1,Write,2449920,8192,1339

``offset`` and ``size`` are in bytes; ``type`` is ``Read``/``Write``.
Each record expands to one page-granular request per page the byte span
``[offset, offset + size)`` touches — the wear model is per-page, so a
64 KiB write is 16 page writes at 4 KiB pages.

:class:`BlockTraceStream` parses incrementally (constant memory, with a
carry buffer for records that expand across a chunk boundary);
:func:`load_block_trace` materializes small files.  Malformed lines
raise structured :class:`~repro.errors.TraceError`\\ s naming
``path:line``, never bare ``ValueError``\\ s.
"""

from __future__ import annotations

import os
from typing import List, Optional

import numpy as np

from ..config import PAPER_PAGE_BYTES
from ..errors import TraceError
from .request import OP_READ, OP_WRITE
from .stream import DEFAULT_CHUNK_REQUESTS, Chunk, TraceStream
from .text_format import _page_shift
from .trace import Trace

_TYPES = {"read": OP_READ, "write": OP_WRITE, "r": OP_READ, "w": OP_WRITE}


class BlockTraceStream(TraceStream):
    """Chunked reader for MSR-Cambridge-style block-trace CSV files."""

    def __init__(
        self,
        path: str,
        page_bytes: int = PAPER_PAGE_BYTES,
        chunk_size: int = DEFAULT_CHUNK_REQUESTS,
        name: Optional[str] = None,
        write_bandwidth_mbps: Optional[float] = None,
    ):
        self._shift = _page_shift(page_bytes)
        if chunk_size < 1:
            raise TraceError(f"chunk size must be positive, got {chunk_size}")
        if not os.path.exists(path):
            raise TraceError(f"trace file not found: {path}")
        self.path = path
        self.chunk_size = chunk_size
        self.name = name or os.path.splitext(os.path.basename(path))[0]
        self.write_bandwidth_mbps = write_bandwidth_mbps
        self._handle = open(path)
        self._line_number = 0
        #: Requests already expanded but not yet delivered (a record
        #: spanning many pages can overrun the chunk boundary).
        self._carry_ops: List[int] = []
        self._carry_pages: List[int] = []

    def rewind(self) -> None:
        if self._handle is None:
            raise TraceError(f"stream for {self.path} is closed")
        self._handle.seek(0)
        self._line_number = 0
        self._carry_ops = []
        self._carry_pages = []

    def _parse_record(self, raw: str) -> None:
        """Expand one CSV record into the carry buffer."""
        line = raw.strip()
        if not line or line.startswith("#"):
            return
        fields = line.split(",")
        if len(fields) < 6:
            raise TraceError(
                f"{self.path}:{self._line_number}: expected "
                f"'timestamp,host,disk,type,offset,size[,latency]', got {line!r}"
            )
        op_name = fields[3].strip().lower()
        if op_name not in _TYPES:
            # Header lines ("timestamp,hostname,...") fall through here
            # on line 1 only; anywhere else it is a data error.
            if self._line_number == 1:
                return
            raise TraceError(
                f"{self.path}:{self._line_number}: unknown request type "
                f"{fields[3]!r} (use Read/Write)"
            )
        try:
            offset = int(fields[4])
            size = int(fields[5])
        except ValueError:
            raise TraceError(
                f"{self.path}:{self._line_number}: bad offset/size "
                f"{fields[4]!r}/{fields[5]!r}"
            ) from None
        if offset < 0 or size < 1:
            raise TraceError(
                f"{self.path}:{self._line_number}: offset must be >= 0 and "
                f"size >= 1, got {offset}/{size}"
            )
        op = _TYPES[op_name]
        first = offset >> self._shift
        last = (offset + size - 1) >> self._shift
        for page in range(first, last + 1):
            self._carry_ops.append(op)
            self._carry_pages.append(page)

    def next_chunk(self) -> Optional[Chunk]:
        if self._handle is None:
            raise TraceError(f"stream for {self.path} is closed")
        while len(self._carry_ops) < self.chunk_size:
            raw = self._handle.readline()
            if not raw:
                break
            self._line_number += 1
            self._parse_record(raw)
        if not self._carry_ops:
            return None
        take = min(self.chunk_size, len(self._carry_ops))
        ops = np.array(self._carry_ops[:take], dtype=np.uint8)
        pages = np.array(self._carry_pages[:take], dtype=np.int64)
        del self._carry_ops[:take]
        del self._carry_pages[:take]
        return ops, pages

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def load_block_trace(
    path: str,
    page_bytes: int = PAPER_PAGE_BYTES,
    name: Optional[str] = None,
    write_bandwidth_mbps: Optional[float] = None,
) -> Trace:
    """Materialize a block-trace CSV (small files; else stream it)."""
    with BlockTraceStream(
        path,
        page_bytes=page_bytes,
        name=name,
        write_bandwidth_mbps=write_bandwidth_mbps,
    ) as stream:
        try:
            return stream.materialize()
        except TraceError as error:
            if "contains no requests" in str(error):
                raise TraceError(f"{path}: no requests found") from None
            raise
