"""Chunked, compressed on-disk trace format (``.twt``).

The ``.npz`` format (:mod:`repro.traces.io`) stores a trace as two
monolithic arrays — loading it materializes everything, which caps
campaigns at RAM.  The ``.twt`` format stores the same request sequence
as a sequence of independently compressed chunks, so
:class:`ChunkedFileStream` can replay arbitrarily long traces at
constant memory, and a collector can append chunks to a live file
without rewriting it.

Layout (all integers little-endian)::

    magic      8 bytes   b"TWLTRC01"
    hdr_len    uint32    length of the JSON header
    header     hdr_len   UTF-8 JSON: {"version": 1, "name": ...,
                         "write_bandwidth_mbps": ...}
    chunk*               repeated chunk records:
      n_requests  uint64   requests in this chunk
      payload_len uint32   compressed payload bytes
      crc32       uint32   CRC-32 of the compressed payload
      payload     bytes    zlib(ops uint8[n] || pages int64-LE[n])

Every way a file can be bad — wrong magic, malformed header, a chunk
header or payload cut short by a crashed writer, CRC mismatch,
undecompressable payload, or records failing validation — raises a
structured :class:`~repro.errors.TraceError` naming the file and the
chunk index, never a bare ``struct``/``zlib``/``json`` exception.  A
truncated *final* chunk is therefore diagnosable (and recoverable by
re-appending) rather than a silent short read.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import BinaryIO, Optional, Tuple

import numpy as np

from ..errors import TraceError
from .request import OP_READ, OP_WRITE
from .stream import DEFAULT_CHUNK_REQUESTS, Chunk, TraceStream
from .trace import Trace

#: File magic; the trailing "01" is the major layout revision.
CHUNKED_MAGIC = b"TWLTRC01"

#: Header JSON ``version`` field accepted by this reader.
CHUNKED_FORMAT_VERSION = 1

_CHUNK_HEADER = struct.Struct("<QII")

#: Refuse to allocate for absurd chunk records (corrupt headers decode
#: as huge lengths; 1 GiB of compressed payload is never legitimate).
_MAX_PAYLOAD_BYTES = 1 << 30
_MAX_CHUNK_REQUESTS = 1 << 28


def _read_header(handle: BinaryIO, path: str) -> Tuple[dict, int]:
    """Validate magic + JSON header; return (header, data offset)."""
    magic = handle.read(len(CHUNKED_MAGIC))
    if magic != CHUNKED_MAGIC:
        raise TraceError(
            f"unreadable chunked trace {path}: bad magic "
            f"{magic[:8]!r} (expected {CHUNKED_MAGIC!r})"
        )
    raw_len = handle.read(4)
    if len(raw_len) != 4:
        raise TraceError(f"truncated chunked trace {path}: header length cut short")
    (header_len,) = struct.unpack("<I", raw_len)
    if header_len > _MAX_PAYLOAD_BYTES:
        raise TraceError(f"malformed chunked trace {path}: header length {header_len}")
    raw_header = handle.read(header_len)
    if len(raw_header) != header_len:
        raise TraceError(f"truncated chunked trace {path}: header cut short")
    try:
        header = json.loads(raw_header.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise TraceError(f"malformed chunked trace header in {path}: {error}") from None
    if not isinstance(header, dict):
        raise TraceError(
            f"malformed chunked trace header in {path}: expected a JSON "
            f"object, got {type(header).__name__}"
        )
    version = header.get("version")
    if version != CHUNKED_FORMAT_VERSION:
        raise TraceError(f"unsupported chunked trace version {version!r} in {path}")
    return header, len(CHUNKED_MAGIC) + 4 + header_len


class ChunkedTraceWriter:
    """Incremental ``.twt`` writer (append-friendly).

    ``append=True`` reopens an existing file and adds chunks after the
    ones already present — the header (name, bandwidth, version) is
    taken from the file and must not be re-specified.
    """

    def __init__(
        self,
        path: str,
        name: Optional[str] = None,
        write_bandwidth_mbps: Optional[float] = None,
        append: bool = False,
    ):
        self.path = path
        self._closed = False
        if append:
            if name is not None or write_bandwidth_mbps is not None:
                raise TraceError(
                    "append mode takes the name/bandwidth from the existing "
                    "file header; do not re-specify them"
                )
            if not os.path.exists(path):
                raise TraceError(f"trace file not found: {path}")
            with open(path, "rb") as handle:
                header, _ = _read_header(handle, path)
            self.name = header.get("name", "trace")
            self.write_bandwidth_mbps = header.get("write_bandwidth_mbps")
            self._handle = open(path, "ab")
            return
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self.name = name or os.path.splitext(os.path.basename(path))[0]
        self.write_bandwidth_mbps = write_bandwidth_mbps
        header_bytes = json.dumps(
            {
                "version": CHUNKED_FORMAT_VERSION,
                "name": self.name,
                "write_bandwidth_mbps": self.write_bandwidth_mbps,
            }
        ).encode()
        self._handle = open(path, "wb")
        self._handle.write(CHUNKED_MAGIC)
        self._handle.write(struct.pack("<I", len(header_bytes)))
        self._handle.write(header_bytes)

    def write_chunk(self, ops: np.ndarray, pages: np.ndarray) -> None:
        """Append one validated ``(ops, pages)`` chunk."""
        if self._closed:
            raise TraceError(f"writer for {self.path} is closed")
        ops_array = np.ascontiguousarray(ops, dtype=np.uint8)
        pages_array = np.ascontiguousarray(pages, dtype="<i8")
        if ops_array.ndim != 1 or pages_array.ndim != 1:
            raise TraceError("chunk ops and pages must be 1-D")
        if ops_array.shape != pages_array.shape:
            raise TraceError(
                f"chunk ops/pages length mismatch: "
                f"{ops_array.shape} vs {pages_array.shape}"
            )
        if ops_array.size == 0:
            raise TraceError("chunk must contain at least one request")
        if (~np.isin(ops_array, (OP_READ, OP_WRITE))).any():
            raise TraceError("chunk contains invalid op codes")
        if (pages_array < 0).any():
            raise TraceError("chunk contains negative page addresses")
        payload = zlib.compress(ops_array.tobytes() + pages_array.tobytes())
        self._handle.write(
            _CHUNK_HEADER.pack(ops_array.size, len(payload), zlib.crc32(payload))
        )
        self._handle.write(payload)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._handle.close()

    def __enter__(self) -> "ChunkedTraceWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def save_chunked_trace(
    trace: Trace, path: str, chunk_size: int = DEFAULT_CHUNK_REQUESTS
) -> None:
    """Write ``trace`` as a ``.twt`` file in ``chunk_size`` pieces."""
    if chunk_size < 1:
        raise TraceError(f"chunk size must be positive, got {chunk_size}")
    with ChunkedTraceWriter(
        path, name=trace.name, write_bandwidth_mbps=trace.write_bandwidth_mbps
    ) as writer:
        for start in range(0, trace.n_requests, chunk_size):
            stop = start + chunk_size
            writer.write_chunk(trace.ops[start:stop], trace.pages[start:stop])


class ChunkedFileStream(TraceStream):
    """Constant-memory replay of a ``.twt`` file.

    Chunks come back exactly as written (the file's chunking *is* the
    delivery granularity); :meth:`rewind` seeks back to the first chunk,
    so drivers can loop the trace to failure without ever holding more
    than one decompressed chunk.
    """

    def __init__(self, path: str):
        if not os.path.exists(path):
            raise TraceError(f"trace file not found: {path}")
        self.path = path
        self._handle: Optional[BinaryIO] = open(path, "rb")
        header, self._data_start = _read_header(self._handle, path)
        self.name = header.get("name", "trace")
        bandwidth = header.get("write_bandwidth_mbps")
        self.write_bandwidth_mbps = None if bandwidth is None else float(bandwidth)
        self._chunk_index = 0
        self._n_requests: Optional[int] = None

    @property
    def n_requests(self) -> Optional[int]:
        """Total requests, counted from chunk headers (payloads skipped)."""
        if self._n_requests is None:
            self._n_requests = sum(
                count for count, _, _ in self._scan_chunk_headers()
            )
        return self._n_requests

    def _scan_chunk_headers(self):
        """Yield ``(n_requests, payload_len, offset)`` per chunk record.

        Seeks over payloads, so the scan cost is independent of the
        trace length in requests; raises the same structured errors the
        reader would.
        """
        handle = self._require_handle()
        position = handle.tell()
        file_size = os.fstat(handle.fileno()).st_size
        try:
            handle.seek(self._data_start)
            index = 0
            while True:
                raw = handle.read(_CHUNK_HEADER.size)
                if not raw:
                    return
                count, payload_len, _ = self._parse_chunk_header(raw, index)
                offset = handle.tell()
                if offset + payload_len > file_size:
                    raise TraceError(
                        f"truncated chunked trace {self.path}: chunk {index} "
                        f"payload cut short"
                    )
                handle.seek(payload_len, os.SEEK_CUR)
                yield count, payload_len, offset
                index += 1
        finally:
            handle.seek(position)

    def _parse_chunk_header(self, raw: bytes, index: int) -> Tuple[int, int, int]:
        if len(raw) != _CHUNK_HEADER.size:
            raise TraceError(
                f"truncated chunked trace {self.path}: chunk {index} header "
                f"cut short ({len(raw)} of {_CHUNK_HEADER.size} bytes)"
            )
        count, payload_len, crc = _CHUNK_HEADER.unpack(raw)
        if count == 0 or count > _MAX_CHUNK_REQUESTS or payload_len > _MAX_PAYLOAD_BYTES:
            raise TraceError(
                f"malformed chunked trace {self.path}: chunk {index} header "
                f"declares {count} requests / {payload_len} payload bytes"
            )
        return count, payload_len, crc

    def _require_handle(self) -> BinaryIO:
        if self._handle is None:
            raise TraceError(f"stream for {self.path} is closed")
        return self._handle

    def rewind(self) -> None:
        self._require_handle().seek(self._data_start)
        self._chunk_index = 0

    def seek(self, chunk_index: int) -> None:
        """Seek over payloads: O(chunks), never decompresses anything."""
        if chunk_index < 0:
            raise TraceError(f"chunk index must be non-negative, got {chunk_index}")
        handle = self._require_handle()
        if chunk_index == 0:
            self.rewind()
            return
        # The scan generator restores the handle position on close, so
        # resolve the target offset first and seek afterwards.
        scan = self._scan_chunk_headers()
        target = None
        try:
            for index, (_, payload_len, offset) in enumerate(scan):
                if index + 1 == chunk_index:
                    target = offset + payload_len
                    break
        finally:
            scan.close()
        if target is None:
            raise TraceError(
                f"stream {self.name!r} exhausted while seeking to chunk "
                f"{chunk_index} in {self.path}"
            )
        handle.seek(target)
        self._chunk_index = chunk_index

    def next_chunk(self) -> Optional[Chunk]:
        handle = self._require_handle()
        index = self._chunk_index
        raw = handle.read(_CHUNK_HEADER.size)
        if not raw:
            return None
        count, payload_len, crc = self._parse_chunk_header(raw, index)
        payload = handle.read(payload_len)
        if len(payload) != payload_len:
            raise TraceError(
                f"truncated chunked trace {self.path}: chunk {index} payload "
                f"cut short ({len(payload)} of {payload_len} bytes)"
            )
        if zlib.crc32(payload) != crc:
            raise TraceError(
                f"corrupt chunked trace {self.path}: chunk {index} CRC mismatch"
            )
        try:
            data = zlib.decompress(payload)
        except zlib.error as error:
            raise TraceError(
                f"corrupt chunked trace {self.path}: chunk {index} does not "
                f"decompress ({error})"
            ) from None
        expected = count * 9  # uint8 op + int64 page per request
        if len(data) != expected:
            raise TraceError(
                f"corrupt chunked trace {self.path}: chunk {index} decodes to "
                f"{len(data)} bytes, expected {expected}"
            )
        ops = np.frombuffer(data, dtype=np.uint8, count=count)
        pages = np.frombuffer(data, dtype="<i8", count=count, offset=count).astype(
            np.int64, copy=False
        )
        if (~np.isin(ops, (OP_READ, OP_WRITE))).any():
            raise TraceError(
                f"corrupt chunked trace {self.path}: chunk {index} contains "
                f"invalid op codes"
            )
        if (pages < 0).any():
            raise TraceError(
                f"corrupt chunked trace {self.path}: chunk {index} contains "
                f"negative page addresses"
            )
        self._chunk_index = index + 1
        return ops, pages

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
