"""Exception hierarchy for the TWL reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent."""


class AddressError(ReproError):
    """A logical or physical address is out of range."""


class PageWornOutError(ReproError):
    """A write was issued to a page whose endurance is exhausted.

    The simulator normally stops at first failure before this can happen;
    the exception guards direct users of :class:`repro.pcm.PCMArray`.
    """

    def __init__(self, physical_page: int, writes: int, endurance: int):
        self.physical_page = physical_page
        self.writes = writes
        self.endurance = endurance
        super().__init__(
            f"physical page {physical_page} is worn out "
            f"({writes} writes >= endurance {endurance})"
        )


class TableError(ReproError):
    """A hardware-table invariant was violated (bad entry, wrong width)."""


class TraceError(ReproError):
    """A trace file or request stream is malformed."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent state."""


class ExtrapolationError(ReproError):
    """Fast-forward lifetime extrapolation could not converge."""
