"""Exception hierarchy for the TWL reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterable, Iterator, Sequence


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent."""


class AddressError(ReproError):
    """A logical or physical address is out of range."""


class PageWornOutError(ReproError):
    """A write was issued to a page whose endurance is exhausted.

    The simulator normally stops at first failure before this can happen;
    the exception guards direct users of :class:`repro.pcm.PCMArray`.
    """

    def __init__(self, physical_page: int, writes: int, endurance: int) -> None:
        self.physical_page = physical_page
        self.writes = writes
        self.endurance = endurance
        super().__init__(
            f"physical page {physical_page} is worn out "
            f"({writes} writes >= endurance {endurance})"
        )


class TableError(ReproError):
    """A hardware-table invariant was violated (bad entry, wrong width)."""


class TraceError(ReproError):
    """A trace file or request stream is malformed."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent state."""


class SnapshotError(ReproError):
    """A mid-run snapshot file is malformed, truncated or mismatched.

    Raised by :mod:`repro.engine.snapshot` when a snapshot container
    fails its magic/version/CRC validation, or when a snapshot's
    recorded identity (scheme, page count) does not match the run it is
    being restored into.  A corrupt snapshot never silently resumes: the
    caller falls back to recomputing the cell from scratch.
    """


class ExtrapolationError(ReproError):
    """Fast-forward lifetime extrapolation could not converge."""


class InvariantViolation(SimulationError):
    """A runtime hardware-state invariant failed during an engine run.

    Raised by :class:`repro.engine.InvariantCheckObserver` when one of
    the contracts every wear leveler must maintain — remapping-table
    bijectivity, write-count conservation, endurance-table immutability,
    SWPT pairing validity — stops holding, typically because injected
    soft errors (:mod:`repro.pcm.softerrors`) corrupted controller state
    without protection.  Carries the scheme name, the engine step index
    and the offending structure so campaign logs can name the failure
    precisely.  Like :class:`PageWornOutError` this has a multi-argument
    constructor; the executor wraps it into a single-string
    :class:`CellExecutionError` before it crosses a pool boundary.
    """

    def __init__(
        self, scheme: str, step: int, table: str, details: Sequence[str]
    ) -> None:
        self.scheme = scheme
        self.step = step
        self.table = table
        self.details = list(details)
        described = "; ".join(self.details) or "invariant violated"
        super().__init__(
            f"invariant violation in scheme {scheme!r} at engine step "
            f"{step} [{table}]: {described}"
        )


class CellExecutionError(SimulationError):
    """An experiment cell failed inside the executor.

    Always constructed with a single message string so it survives
    pickling across :class:`concurrent.futures.ProcessPoolExecutor`
    boundaries (exceptions with multi-argument constructors, such as
    :class:`PageWornOutError`, cannot be unpickled by the pool).
    """


class CellTimeoutError(CellExecutionError):
    """An experiment cell exceeded its per-cell wall-clock budget.

    Raised by the executor when a :class:`repro.exec.FailurePolicy`
    carries a ``timeout`` and the cell runs past it.  Subclasses
    :class:`CellExecutionError` (single message string, pool-picklable)
    so existing handlers keep working while callers that care can tell
    a timeout from an in-simulation failure.
    """


class DeterminismViolation(ReproError):
    """Global RNG state was consulted inside result-producing code.

    Raised by the runtime determinism sanitizer
    (:mod:`repro.devtools.sanitize`, armed via ``REPRO_SANITIZE=1`` or
    ``--sanitize``) when a ``random`` / ``numpy.random`` global-state
    entry point fires inside the engine step loop or a cell run —
    exactly the leak that would silently break cache reuse and resume
    bit-identity (rule TWL001 in ``docs/invariants.md``).
    """


class CampaignError(ReproError):
    """One or more cells failed during a ``keep-going`` campaign.

    Under :class:`repro.exec.FailurePolicy`'s ``on_error="keep-going"``
    mode the executor finishes every runnable cell, records structured
    ``CellFailure`` outcomes for the ones that exhausted their retry
    budget, and raises a single :class:`CampaignError` summarizing them
    at the end — the cells that did finish are already in the cache and
    the checkpoint journal, so a repaired re-run only pays for the
    failures.  ``failures`` preserves the structured records.
    """

    def __init__(self, failures: Iterable[Any]) -> None:
        self.failures = list(failures)
        summary = "; ".join(str(failure) for failure in self.failures)
        count = len(self.failures)
        super().__init__(f"{count} cell(s) failed: {summary}")


@contextmanager
def error_context(label: str, error_type: type = SimulationError) -> Iterator[None]:
    """Re-raise any :class:`ReproError` with ``label`` prepended.

    Shared by the experiment executor (which labels failures with the
    failing cell's identity) and the replicate runner (which labels them
    with the replicate index and derived seed).  Programming errors
    (``TypeError`` etc.) propagate unwrapped, per the package policy.
    """
    try:
        yield
    except ReproError as error:
        raise error_type(f"{label}: {error}") from error
