"""On-demand page retirement (inspired by OD3P [Asadinia et al., DAC'14]).

The paper's related work includes dynamic remapping that reacts to pages
*nearing* failure rather than predicting write intensity.  This scheme
is the cleanest member of that family:

* a fraction of frames is held back as spares (over-provisioning);
* the controller counts the writes it issues per frame and retires a
  frame — migrating its resident to the freshest spare — once the
  frame's *estimated* remaining life drops below a safety margin;
* the device dies when a frame's true endurance is exceeded, which
  happens when its tested-endurance estimate was too optimistic by more
  than the margin, or when the spare pool runs dry.

The estimate error is the whole game: with a perfect endurance table,
retirement trivially converts any workload into full capacity
utilization.  Real tested endurance is a noisy measurement, so the
scheme's lifetime is a race between the margin (capacity given away on
every frame) and the worst estimation error in the population — a
trade-off the A9 ablation sweeps.  Contrast with TWL, which consumes
endurance information only through *ratios* inside a pair and is
therefore insensitive to calibrated measurement noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..pcm.array import PCMArray
from ..rng.streams import make_generator
from ..tables.remap import RemappingTable
from .base import WearLeveler


@dataclass(frozen=True)
class RetirementConfig:
    """Parameters of the retirement scheme.

    ``estimate_sigma_fraction`` models the tested-endurance measurement
    error (relative, Gaussian).  ``margin_fraction`` is the remaining-
    life threshold (relative to the *estimated* endurance) at which a
    frame is retired.
    """

    spare_fraction: float = 0.02
    margin_fraction: float = 0.10
    estimate_sigma_fraction: float = 0.03

    def __post_init__(self) -> None:
        if not 0.0 < self.spare_fraction < 0.5:
            raise ConfigError("spare fraction must be in (0, 0.5)")
        if not 0.0 < self.margin_fraction < 1.0:
            raise ConfigError("margin fraction must be in (0, 1)")
        if not 0.0 <= self.estimate_sigma_fraction < 0.5:
            raise ConfigError("estimate sigma must be in [0, 0.5)")


class RetirementWearLeveling(WearLeveler):
    """Spare-pool page retirement driven by estimated remaining life."""

    name = "retire"

    def __init__(
        self,
        array: PCMArray,
        config: RetirementConfig = RetirementConfig(),
        seed: int = 0,
    ):
        super().__init__(array)
        n = array.n_pages
        n_spares = max(1, int(round(config.spare_fraction * n)))
        if n_spares >= n:
            raise ConfigError("spare pool swallows the whole array")
        self.config = config
        self._n_logical = n - n_spares
        self.remap = RemappingTable(n)
        # Noisy tested-endurance estimates (the controller's ET).
        rng = make_generator(seed, "retirement-et")
        noise = rng.normal(1.0, config.estimate_sigma_fraction, size=n)
        self._estimated = np.maximum(
            array.endurance.astype(np.float64) * noise, 1.0
        ).astype(np.int64)
        self._retire_at = self._estimated - np.maximum(
            1, (self._estimated * config.margin_fraction).astype(np.int64)
        )
        self._retire_at_list = np.maximum(self._retire_at, 1).tolist()
        self._frame_writes = [0] * n
        #: Frames currently holding no live logical page.
        self._spares = set(range(self._n_logical, n))
        self.retired_frames = 0
        self.spare_pool_exhausted = False

    @property
    def logical_pages(self) -> int:
        return self._n_logical

    def translate(self, logical: int) -> int:
        self.check_logical(logical)
        return self.remap.lookup(logical)

    def spares_remaining(self) -> int:
        """Healthy spare frames still available."""
        return len(self._spares)

    def write(self, logical: int) -> int:
        self.check_logical(logical)
        frame = self.remap.lookup(logical)
        self.array.write(frame)
        count = self._frame_writes[frame] + 1
        self._frame_writes[frame] = count
        self._count_demand()
        writes = 1
        if count >= self._retire_at_list[frame] and not self.spare_pool_exhausted:
            writes += self._retire(logical, frame)
        return writes

    def _retire(self, logical: int, frame: int) -> int:
        """Move ``logical`` off ``frame`` onto the freshest spare."""
        if not self._spares:
            self.spare_pool_exhausted = True
            return 0
        # Freshest spare: maximal estimated remaining life.
        best = max(
            self._spares,
            key=lambda s: self._estimated[s] - self._frame_writes[s],
        )
        self._spares.discard(best)
        # One page write migrates the data; the worn frame goes idle
        # (its new resident is a never-written logical slot).
        self.array.write(best)
        self._frame_writes[best] += 1
        self.remap.swap_logical(logical, self.remap.inverse(best))
        self.retired_frames += 1
        self._count_swap(1)
        return 1

    def _snapshot_state(self):
        # The noisy endurance estimates and retirement thresholds are
        # derivable (seeded); the moving state is the RT, the per-frame
        # write counts and the spare-pool membership.
        return {
            "frame_writes": list(self._frame_writes),
            "remap": self.remap.snapshot(),
            "retired_frames": self.retired_frames,
            "spare_pool_exhausted": self.spare_pool_exhausted,
            "spares": sorted(self._spares),
        }

    def _restore_state(self, state):
        self._frame_writes = [int(c) for c in state["frame_writes"]]
        self.remap.restore(state["remap"])
        self.retired_frames = int(state["retired_frames"])
        self.spare_pool_exhausted = bool(state["spare_pool_exhausted"])
        self._spares = {int(s) for s in state["spares"]}

    def fault_surface(self):
        """Retirement's injectable SRAM state: the remapping table.

        The RT here also encodes which frames are spares (they map to
        logical slots above ``logical_pages``), so its fail-safe is the
        most lossy of any scheme: identity mapping brings every retired
        frame back into service.  Still correct — every access resolves
        — but leveling and retirement history are forfeited, which is
        exactly what "graceful degradation" means for this scheme.
        """
        from ..pcm.softerrors import BitTarget

        remap = self.remap
        return {
            "rt": BitTarget(
                name="rt",
                n_entries=remap.n_pages,
                entry_bits=remap.entry_bits,
                read=remap.raw_entry,
                write=remap.poke_entry,
                repair=remap.repair_entry,
                fail_safe=self.fault_fail_safe,
            ),
        }

    def fault_fail_safe(self) -> None:
        """Graceful degradation: collapse the RT to identity mapping."""
        self.remap.reset_identity()
        self.fault_degraded = True

    def stats(self):
        base = super().stats()
        base.update(
            {
                "retired_frames": float(self.retired_frames),
                "spares_remaining": float(self.spares_remaining()),
            }
        )
        return base
