"""Bloom-filter based dynamic wear leveling [Yun et al., DATE'12].

The paper's state-of-the-art PV-aware baseline ("BWL").  Instead of a
full write number table, BWL identifies hot logical addresses with a
counting Bloom filter and dynamically adapts its detection threshold so
phase lengths track the workload.  At each swap point:

* detected-hot logical pages migrate onto the frames with the most
  *remaining life* (tested endurance minus the controller's count of
  writes issued to the frame) — remaining-life placement is what rotates
  a persistently hot page across strong frames instead of pinning it to
  one;
* detected-cold logical pages — *observed* addresses whose Bloom estimate
  stayed at or below the cold threshold, tracked in a bounded
  cold-candidate queue — migrate onto the least-remaining-life frames;
* the hot filter is cleared and a new detection phase begins (wear
  state persists, as wear does).

Per demand write the hardware probes the Bloom filters and the cold/hot
list — the per-write overhead that makes BWL the slowest scheme in the
paper's Figure 9.

Like WRL, BWL trusts that the write distribution observed during
detection persists afterwards; the inconsistent-write attack inverts the
distribution right after the swap and grinds the weakest frames down
("PCM adopting BWL breaks down in 98 seconds").
"""

from __future__ import annotations

from collections import deque
from typing import List, Sequence

import numpy as np

from ..bloom.counting_bloom import CountingBloomFilter
from ..config import BWLConfig
from ..pcm.array import PCMArray
from ..rng.streams import derive_seed
from ..tables.endurance_table import EnduranceTable
from ..tables.remap import RemappingTable
from .base import WearLeveler


class BloomWearLeveling(WearLeveler):
    """Bloom-filter based PV-aware wear leveling with dynamic thresholds."""

    name = "bwl"

    def __init__(
        self,
        array: PCMArray,
        config: BWLConfig = BWLConfig(),
        seed: int = 0,
    ):
        super().__init__(array)
        n = array.n_pages
        self.config = config
        self.remap = RemappingTable(n)
        self.endurance_table = EnduranceTable(array.endurance)
        #: Controller-side per-frame write counters (remaining-life input).
        self._frame_writes = np.zeros(n, dtype=np.int64)
        self._endurance = self.endurance_table.as_array()

        self.hot_filter = CountingBloomFilter(
            config.bloom_bits, config.bloom_hashes, seed=derive_seed(seed, "bwl-hot")
        )
        #: Dynamic hot-detection threshold (write-count estimate).
        self.hot_threshold = 4
        self.cold_threshold = config.cold_threshold
        self._hot_list: List[int] = []
        self._hot_set = set()
        self._target_hot = max(1, int(config.hot_fraction * n))
        self._cold_queue = deque(maxlen=4 * self._target_hot)
        self._cold_set = set()
        self._detection_writes = 0
        self._min_phase_writes = max(1, int(config.prediction_writes_per_page * n))
        self._max_phase_writes = self._min_phase_writes * max(
            2, int(config.running_multiplier)
        )
        self.swap_phases_completed = 0

    def translate(self, logical: int) -> int:
        self.check_logical(logical)
        return self.remap.lookup(logical)

    def fault_surface(self):
        """BWL's injectable SRAM state: the remapping table.

        The Bloom filters and cold/hot lists are soft *heuristic* state
        — corruption there only mispredicts heat, never misroutes an
        access — so the RT is the structure whose integrity actually
        carries correctness, scrubbing from its inverse array with the
        identity-mapping fail-safe.
        """
        from ..pcm.softerrors import BitTarget

        remap = self.remap
        return {
            "rt": BitTarget(
                name="rt",
                n_entries=remap.n_pages,
                entry_bits=remap.entry_bits,
                read=remap.raw_entry,
                write=remap.poke_entry,
                repair=remap.repair_entry,
                fail_safe=self.fault_fail_safe,
            ),
        }

    def fault_fail_safe(self) -> None:
        """Graceful degradation: collapse the RT to identity mapping."""
        self.remap.reset_identity()
        self.fault_degraded = True

    def remaining_life(self) -> np.ndarray:
        """Per-frame remaining life: tested endurance minus issued writes."""
        return self._endurance - self._frame_writes

    def write(self, logical: int) -> int:
        self.check_logical(logical)
        physical = self.remap.lookup(logical)
        self.array.write(physical)
        self._frame_writes[physical] += 1
        self._count_demand()
        writes = 1

        # Per-write hardware path: probe and update the filters, check the
        # hot list (the Figure-9 overhead).
        self.hot_filter.insert(logical)
        self._detection_writes += 1
        if logical not in self._hot_set:
            estimate = self.hot_filter.estimate(logical)
            if estimate >= self.hot_threshold:
                self._hot_set.add(logical)  # twl: allow(TWL008) reason=set mirror of _hot_list; _restore_state rebuilds it from the snapshotted list
                self._hot_list.append(logical)
                self._cold_set.discard(logical)  # twl: allow(TWL008) reason=set mirror of _cold_queue; _restore_state rebuilds it from the snapshotted queue
            elif estimate <= self.cold_threshold and logical not in self._cold_set:
                # An observed-but-cold address: a candidate for the
                # least-remaining-life frames at the next swap point.
                if len(self._cold_queue) == self._cold_queue.maxlen:
                    evicted = self._cold_queue[0]
                    self._cold_set.discard(evicted)
                self._cold_queue.append(logical)
                self._cold_set.add(logical)

        if self._should_swap():
            writes += self._swap_phase()
        return writes

    def write_batch(self, addresses: Sequence[int]) -> np.ndarray:
        """Batch path: scalar heuristic scan, vectorized device writes.

        BWL's swap decision depends on per-write Bloom-filter state, so
        the filter probes cannot be vectorized — but the *device* side
        can: the scan replicates the serial per-write filter/hot/cold
        updates purely in controller state, finds the first position
        whose write triggers a swap, and then issues that whole
        trigger-free prefix as one
        :meth:`~repro.pcm.array.PCMArray.apply_batch` call plus a
        bincount into the frame-write counters.  That moves the array
        bookkeeping — the dominant cost at scale — off the per-write
        path while the heuristic stays exactly the serial sequence.

        Identity with the serial path: a triggering demand write that
        wears out a page still runs its swap phase (serial
        :meth:`write` completes before the drive loop sees the
        failure), and a mid-segment failure truncates the batch exactly
        where the serial loop would.  Heuristic state scanned ahead of a
        mid-segment failure is post-failure drift only — the run is
        over, and nothing observable (stats, wear, result) reads it.
        """
        seq = np.asarray(addresses, dtype=np.int64)
        array = self.array
        if array.failed:
            return np.zeros(0, dtype=np.int64)
        self.check_logical_batch(seq)
        if seq.size == 0:
            return np.zeros(0, dtype=np.int64)
        out = np.ones(seq.size, dtype=np.int64)
        forward = self.remap.mapping_array()  # live view: current across swaps
        frame_writes = self._frame_writes
        logicals = seq.tolist()
        total = int(seq.size)
        start = 0
        while start < total:
            # Heuristic scan: the serial per-write controller updates up
            # to (and including) the first swap trigger.  Aliases rebind
            # each round — _swap_phase replaces these containers.
            hot_filter = self.hot_filter
            hot_set = self._hot_set
            hot_list = self._hot_list
            cold_set = self._cold_set
            cold_queue = self._cold_queue
            trigger = -1
            stop = total
            for index in range(start, total):
                logical = logicals[index]
                hot_filter.insert(logical)
                self._detection_writes += 1
                if logical not in hot_set:
                    estimate = hot_filter.estimate(logical)
                    if estimate >= self.hot_threshold:
                        hot_set.add(logical)
                        hot_list.append(logical)
                        cold_set.discard(logical)
                    elif estimate <= self.cold_threshold and logical not in cold_set:
                        if len(cold_queue) == cold_queue.maxlen:
                            cold_set.discard(cold_queue[0])
                        cold_queue.append(logical)
                        cold_set.add(logical)
                if self._should_swap():
                    trigger = index
                    stop = index + 1
                    break
            segment_physical = forward[seq[start:stop]]
            applied = array.apply_batch(segment_physical)
            frame_writes += np.bincount(
                segment_physical[:applied], minlength=frame_writes.size
            )
            self.demand_writes += applied
            if applied < stop - start:
                return out[: start + applied]
            if trigger >= 0:
                out[trigger] += self._swap_phase()
                if array.failed:
                    return out[:stop]
            start = stop
        return out

    def _snapshot_state(self):
        # _hot_set / _cold_set are derivable from the ordered lists; the
        # queue and hot list are stored in insertion order so eviction
        # and migration priority replay exactly.
        return {
            "cold_queue": list(self._cold_queue),
            "detection_writes": self._detection_writes,
            "frame_writes": self._frame_writes.copy(),
            "hot_filter": self.hot_filter.snapshot(),
            "hot_list": list(self._hot_list),
            "hot_threshold": self.hot_threshold,
            "remap": self.remap.snapshot(),
            "swap_phases_completed": self.swap_phases_completed,
        }

    def _restore_state(self, state):
        self._frame_writes[:] = np.asarray(state["frame_writes"], dtype=np.int64)
        self.remap.restore(state["remap"])
        self.hot_filter.restore(state["hot_filter"])
        self.hot_threshold = int(state["hot_threshold"])
        self._detection_writes = int(state["detection_writes"])
        self.swap_phases_completed = int(state["swap_phases_completed"])
        # Rebind fresh containers (write_batch aliases them per round and
        # _swap_phase replaces them): sets are rebuilt from the lists.
        self._hot_list = [int(la) for la in state["hot_list"]]
        self._hot_set = set(self._hot_list)
        self._cold_queue = deque(
            (int(la) for la in state["cold_queue"]), maxlen=4 * self._target_hot
        )
        self._cold_set = set(self._cold_queue)

    def _should_swap(self) -> bool:
        """Swap when enough hot pages are known, bounded by phase length.

        The dynamic-threshold mechanism: if the hot list fills before the
        minimum phase length, detection was too eager and the threshold is
        raised; if the maximum phase length elapses first, it is lowered.
        """
        if len(self._hot_list) >= self._target_hot:
            if self._detection_writes < self._min_phase_writes:
                self.hot_threshold = min(self.hot_threshold * 2, 1 << 12)
            return True
        if self._detection_writes >= self._min_phase_writes and self._hot_list:
            # Enough evidence and at least one hot page to migrate: swap
            # now rather than letting a narrow hot set (e.g. a single
            # hammered page) wear its frame for the whole max phase.
            return True
        if self._detection_writes >= self._max_phase_writes:
            self.hot_threshold = max(2, self.hot_threshold // 2)
            return True
        return False

    def _cold_pages(self, count: int) -> List[int]:
        """Up to ``count`` cold-queue addresses that never became hot.

        Membership is decided at observation time (estimate at or below
        the cold threshold when written); pages that later crossed the
        hot threshold were already evicted via the hot set.  Newest
        observations first: the most recently confirmed-cold pages are
        the best candidates for the worn frames.
        """
        cold: List[int] = []
        for candidate in reversed(self._cold_queue):
            if len(cold) == count:
                break
            if candidate in self._hot_set:
                continue
            cold.append(candidate)
        return cold

    def _migrate(self, logical: int, target_frame: int) -> int:
        """Swap ``logical`` onto ``target_frame``; cost in page writes."""
        current = self.remap.lookup(logical)
        if current == target_frame:
            return 0
        self.remap.swap_physical(current, target_frame)
        self.array.write(current)
        self.array.write(target_frame)
        self._frame_writes[current] += 1
        self._frame_writes[target_frame] += 1
        return 2

    def _swap_phase(self) -> int:
        """Hot pages to high-remaining-life frames, cold to low."""
        cost = 0
        remaining = self.remaining_life()
        order = np.argsort(remaining, kind="stable")
        # Hot pages take the freshest frames, hottest page first.
        fresh_iter = iter(reversed(order.tolist()))
        for la in self._hot_list[: self._target_hot]:
            target = next(fresh_iter)
            cost += self._migrate(la, target)
        # Cold pages take the most-worn frames — except frames whose
        # resident looks never-written (Bloom estimate zero): displacing
        # an idle page with an observed-cold one would heat the frame.
        # Bloom collisions occasionally make idle residents look written,
        # so the guard is porous exactly the way the hardware's would be.
        cold = self._cold_pages(self._target_hot)
        cold_index = 0
        for target in order.tolist():  # twl: allow(TWL006) reason=once-per-epoch rebalance
            if cold_index == len(cold):
                break
            resident = self.remap.inverse(target)
            if resident not in self._hot_set and (
                self.hot_filter.estimate(resident) == 0
            ):
                continue
            cost += self._migrate(cold[cold_index], target)
            cold_index += 1
        if cost:
            self._count_swap(cost)
        self.swap_phases_completed += 1
        # New detection phase (wear state persists).
        self.hot_filter.clear()
        self._hot_list = []
        self._hot_set = set()
        self._cold_queue.clear()
        self._cold_set = set()
        self._detection_writes = 0
        return cost
