"""No wear leveling (the paper's "NOWL" baseline).

Logical pages map directly onto physical frames; every write lands where
the program aimed it.  Lifetime is then dictated entirely by the hottest
page of the workload — the reference point for Table 2's "Lifetime w/o
WL" column.
"""

from __future__ import annotations

from ..pcm.array import PCMArray
from .base import WearLeveler


class NoWearLeveling(WearLeveler):
    """Identity mapping; no migrations, no overhead."""

    name = "nowl"

    def __init__(self, array: PCMArray):
        super().__init__(array)
        # Bind hot-loop attributes locally for speed.
        self._write_page = array.write

    def translate(self, logical: int) -> int:
        self.check_logical(logical)
        return logical

    def write(self, logical: int) -> int:
        self.check_logical(logical)
        self._write_page(logical)
        self.demand_writes += 1
        return 1
