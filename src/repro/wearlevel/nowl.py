"""No wear leveling (the paper's "NOWL" baseline).

Logical pages map directly onto physical frames; every write lands where
the program aimed it.  Lifetime is then dictated entirely by the hottest
page of the workload — the reference point for Table 2's "Lifetime w/o
WL" column.
"""

from __future__ import annotations

import numpy as np

from ..pcm.array import PCMArray
from .base import WearLeveler


class NoWearLeveling(WearLeveler):
    """Identity mapping; no migrations, no overhead."""

    name = "nowl"

    def translate(self, logical: int) -> int:
        self.check_logical(logical)
        return logical

    def write(self, logical: int) -> int:
        self.check_logical(logical)
        self.array.write(logical)
        self.demand_writes += 1
        return 1

    def write_batch(self, addresses) -> np.ndarray:
        # Identity mapping: the logical sequence *is* the physical
        # sequence, so the whole batch lands in one apply_batch call.
        seq = np.asarray(addresses, dtype=np.int64)
        if self.array.failed:
            return np.zeros(0, dtype=np.int64)
        if seq.size and ((seq < 0).any() or (seq >= self.logical_pages).any()):
            bad = int(seq[(seq < 0) | (seq >= self.logical_pages)][0])
            self.check_logical(bad)
        applied = self.array.apply_batch(seq)
        self.demand_writes += applied
        return np.ones(applied, dtype=np.int64)
