"""Wear Rate Leveling [Dong et al., DAC'11].

The prediction-swap-running flow the paper uses to illustrate PV-aware
wear leveling (Figure 1):

1. **Prediction** — the write number table (WNT) counts writes per
   logical page for ``prediction_writes_per_page * n_pages`` writes.
2. **Swap** — logical pages are ranked hottest-first by WNT and physical
   frames by ascending *wear rate* (accumulated writes divided by tested
   endurance — the scheme's namesake metric); data is migrated so the
   k-th hottest page sits on the k-th least-worn-per-endurance frame.
   Ranking by wear rate rather than raw endurance is what lets the
   scheme rotate a persistently hot page across strong frames instead of
   grinding down a single one.  The migration blocks the memory (the
   attacker's timing probe sees it).
3. **Running** — writes proceed through the updated remapping table for
   ``running_multiplier`` times the prediction length, then the WNT is
   cleared and the cycle restarts.

The scheme's correctness rests on write-distribution *consistency* across
phases — exactly the assumption the inconsistent-write attack of
Section 3 breaks: a page that faked coldness is mapped onto the highest
wear-rate (closest to death) frame and can then be hammered.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..config import WRLConfig
from ..pcm.array import PCMArray
from ..tables.endurance_table import EnduranceTable
from ..tables.remap import RemappingTable
from ..tables.wnt import WriteNumberTable
from .base import WearLeveler

PHASE_PREDICTION = "prediction"
PHASE_RUNNING = "running"


class WearRateLeveling(WearLeveler):
    """Prediction-swap-running PV-aware wear leveling."""

    name = "wrl"

    def __init__(
        self,
        array: PCMArray,
        config: WRLConfig = WRLConfig(),
        seed: int = 0,
    ):
        super().__init__(array)
        n = array.n_pages
        self.config = config
        self.remap = RemappingTable(n)
        self.endurance_table = EnduranceTable(array.endurance)
        self.wnt = WriteNumberTable(n)
        #: Controller-side per-frame write counters (the wear half of the
        #: wear-rate metric; the controller counts the writes it issues).
        self._frame_writes = np.zeros(n, dtype=np.int64)
        self._endurance = self.endurance_table.as_array().astype(np.float64)
        self.prediction_length = max(1, int(config.prediction_writes_per_page * n))
        self.running_length = max(1, int(self.prediction_length * config.running_multiplier))
        self.phase = PHASE_PREDICTION
        self._phase_writes = 0
        self.swap_phases_completed = 0

    def translate(self, logical: int) -> int:
        self.check_logical(logical)
        return self.remap.lookup(logical)

    def write(self, logical: int) -> int:
        self.check_logical(logical)
        physical = self.remap.lookup(logical)
        self.array.write(physical)
        self._frame_writes[physical] += 1
        self._count_demand()
        writes = 1
        if self.phase == PHASE_PREDICTION:
            self.wnt.record_write(logical)
        self._phase_writes += 1
        if self.phase == PHASE_PREDICTION and self._phase_writes >= self.prediction_length:
            writes += self._swap_phase()
            self.phase = PHASE_RUNNING
            self._phase_writes = 0
        elif self.phase == PHASE_RUNNING and self._phase_writes >= self.running_length:
            self.wnt.clear()
            self.phase = PHASE_PREDICTION
            self._phase_writes = 0
        return writes

    def write_batch(self, addresses: Sequence[int]) -> np.ndarray:
        """Vectorized batch path: segment the batch at phase boundaries.

        Between phase boundaries the data path is a pure gather through
        the remapping table, so each boundary-free run of demand writes
        is one :meth:`~repro.pcm.array.PCMArray.apply_batch` call plus a
        bincount into the frame-write counters and (in the prediction
        phase) one batched WNT update.  The scalar
        :meth:`_swap_phase` runs only at boundaries — once per
        ``prediction_length``/``running_length`` writes.

        Identity with the serial path: a boundary demand write that
        wears out a page still completes its phase transition (serial
        :meth:`write` runs to the end before the drive loop sees the
        failure), and a mid-segment failure truncates the batch exactly
        where the serial loop would have stopped.
        """
        seq = np.asarray(addresses, dtype=np.int64)
        array = self.array
        if array.failed:
            return np.zeros(0, dtype=np.int64)
        self.check_logical_batch(seq)
        if seq.size == 0:
            return np.zeros(0, dtype=np.int64)
        out = np.ones(seq.size, dtype=np.int64)
        forward = self.remap.mapping_array()  # live view: current across swaps
        frame_writes = self._frame_writes
        total = int(seq.size)
        start = 0
        while start < total:
            if self.phase == PHASE_PREDICTION:
                room = self.prediction_length - self._phase_writes
            else:
                room = self.running_length - self._phase_writes
            stop = min(total, start + room)
            segment = seq[start:stop]
            physical = forward[segment]
            applied = array.apply_batch(physical)
            frame_writes += np.bincount(physical[:applied], minlength=frame_writes.size)
            self.demand_writes += applied
            if self.phase == PHASE_PREDICTION:
                self.wnt.record_write_batch(segment[:applied])
            self._phase_writes += applied
            if applied < stop - start:
                return out[: start + applied]
            if self.phase == PHASE_PREDICTION and self._phase_writes >= self.prediction_length:
                out[stop - 1] += self._swap_phase()
                self.phase = PHASE_RUNNING
                self._phase_writes = 0
            elif self.phase == PHASE_RUNNING and self._phase_writes >= self.running_length:
                self.wnt.clear()
                self.phase = PHASE_PREDICTION
                self._phase_writes = 0
            if array.failed:
                return out[:stop]
            start = stop
        return out

    def _snapshot_state(self):
        return {
            "frame_writes": self._frame_writes.copy(),
            "phase": self.phase,
            "phase_writes": self._phase_writes,
            "remap": self.remap.snapshot(),
            "swap_phases_completed": self.swap_phases_completed,
            "wnt": self.wnt.snapshot(),
        }

    def _restore_state(self, state):
        self._frame_writes[:] = np.asarray(state["frame_writes"], dtype=np.int64)
        self.phase = str(state["phase"])
        self._phase_writes = int(state["phase_writes"])
        self.remap.restore(state["remap"])
        self.swap_phases_completed = int(state["swap_phases_completed"])
        self.wnt.restore(state["wnt"])

    def fault_surface(self):
        """WRL's injectable SRAM state: RT and the WNT.

        A corrupted WNT entry is repairable only in the "safe value"
        sense — the true count is gone, so the scrub resets the entry
        to zero (the page re-earns its heat ranking next phase).  The
        RT scrubs from its inverse array, with the identity-mapping
        fail-safe when that redundancy is lost too.
        """
        from ..pcm.softerrors import BitTarget

        remap = self.remap
        wnt = self.wnt

        def repair_wnt(page: int) -> bool:
            wnt.poke(page, 0)
            return True

        return {
            "rt": BitTarget(
                name="rt",
                n_entries=remap.n_pages,
                entry_bits=remap.entry_bits,
                read=remap.raw_entry,
                write=remap.poke_entry,
                repair=remap.repair_entry,
                fail_safe=self.fault_fail_safe,
            ),
            "wnt": BitTarget(
                name="wnt",
                n_entries=wnt.n_pages,
                entry_bits=wnt.entry_bits,
                read=wnt.count,
                write=wnt.poke,
                repair=repair_wnt,
            ),
        }

    def fault_fail_safe(self) -> None:
        """Graceful degradation: collapse the RT to identity mapping."""
        self.remap.reset_identity()
        self.fault_degraded = True

    def wear_rates(self) -> np.ndarray:
        """Per-frame wear rate: accumulated writes / tested endurance."""
        return self._frame_writes / self._endurance

    def _swap_phase(self) -> int:
        """Migrate data so predicted-hot pages sit on low-wear-rate frames.

        Builds the desired LA -> PA permutation, applies it through the
        remapping table, and charges one page write per frame that
        receives new data (the migration is staged through the
        controller's page buffer, so frames that transiently participate
        in swaps but end with their original data never hit PCM).
        """
        hot_first = self.wnt.hottest_first()
        fresh_first = np.argsort(self.wear_rates(), kind="stable")
        desired = {int(la): int(fresh_first[rank]) for rank, la in enumerate(hot_first)}

        before = self.remap.mapping()
        for la, target_pa in desired.items():
            current_pa = self.remap.lookup(la)
            if current_pa != target_pa:
                # Once placed, a page is never displaced again: every later
                # target frame is distinct and later sources can't be this
                # frame, so the loop lands exactly on ``desired``.
                self.remap.swap_physical(current_pa, target_pa)
        after = self.remap.mapping()

        changed_frames = [
            after[la] for la in range(self.remap.n_pages) if after[la] != before[la]
        ]
        for frame in changed_frames:
            self.array.write(frame)
            self._frame_writes[frame] += 1
        cost = len(changed_frames)
        if cost:
            self._count_swap(cost)
        self.swap_phases_completed += 1
        return cost
