"""Start-Gap wear leveling [Qureshi et al., MICRO'09].

An extra baseline from the paper's related work ([10] — also the source
of TWL's Feistel RNG).  One spare frame (the *gap*) rotates through the
array: every ``gap_move_interval`` demand writes the page adjacent to the
gap is copied into it, so the whole address space slowly slides across
physical frames.  With ``randomize=True`` the logical address is first
passed through a static Feistel permutation (Randomized Start-Gap), which
breaks spatial correlation between logical and physical neighbourhoods.

Start-Gap is PV-*unaware*: it equalizes writes across frames, which (as
the paper argues) actually accelerates the weakest pages' death under
process variation.
"""

from __future__ import annotations

import numpy as np

from ..config import StartGapConfig
from ..errors import ConfigError
from ..pcm.array import PCMArray
from ..rng.feistel import FeistelNetwork
from .base import WearLeveler


class StartGap(WearLeveler):
    """Start-Gap with optional static address randomization."""

    name = "startgap"

    def __init__(
        self,
        array: PCMArray,
        config: StartGapConfig = StartGapConfig(),
        seed: int = 0,
    ):
        super().__init__(array)
        if array.n_pages < 2:
            raise ConfigError("Start-Gap needs at least two frames (one spare)")
        self.config = config
        #: Logical space is one page smaller than physical: the gap frame.
        self._n_logical = array.n_pages - 1
        self._start = 0
        self._gap = self._n_logical  # gap begins at the last frame
        self._writes_since_move = 0
        self._permutation = None
        #: Lazily built vector mirror of :meth:`_randomize` (the static
        #: permutation never changes, so one table serves all batches).
        self._randomize_table = None
        if config.randomize:
            bits = max(2, self._n_logical.bit_length())
            if bits % 2:
                bits += 1
            self._permutation = FeistelNetwork(bits=bits, seed=seed)

    @property
    def logical_pages(self) -> int:
        return self._n_logical

    def _randomize(self, logical: int) -> int:
        """Static randomization layer (cycle-walking the Feistel output)."""
        if self._permutation is None:
            return logical
        value = self._permutation.encrypt(logical)
        # Cycle-walk until the value lands inside the logical space; the
        # permutation property guarantees termination.
        while value >= self._n_logical:
            value = self._permutation.encrypt(value)
        return value

    def translate(self, logical: int) -> int:
        self.check_logical(logical)
        inner = self._randomize(logical)
        physical = (inner + self._start) % self._n_logical
        if physical >= self._gap:
            physical += 1
        return physical

    def write(self, logical: int) -> int:
        physical = self.translate(logical)
        self.array.write(physical)
        self._count_demand()
        writes = 1
        self._writes_since_move += 1
        if self._writes_since_move >= self.config.gap_move_interval:
            self._writes_since_move = 0
            writes += self._move_gap()
        return writes

    def write_batch(self, addresses) -> np.ndarray:
        """Vectorized batch path: translation is fixed between gap moves.

        The batch is cut into segments at gap-move boundaries; within a
        segment the whole LA -> PA map is static, so the segment is one
        vector translate plus one :meth:`PCMArray.apply_batch` call.
        Gap moves (and the serial failure semantics, including the gap
        move a failing boundary write still performs) are replayed
        exactly as :meth:`write` would.
        """
        seq = np.asarray(addresses, dtype=np.int64)
        if self.array.failed:
            return np.zeros(0, dtype=np.int64)
        if seq.size and ((seq < 0).any() or (seq >= self._n_logical).any()):
            bad = int(seq[(seq < 0) | (seq >= self._n_logical)][0])
            self.check_logical(bad)
        out = np.ones(seq.size, dtype=np.int64)
        array = self.array
        interval = self.config.gap_move_interval
        position = 0
        while position < seq.size:
            until_move = interval - self._writes_since_move
            segment = seq[position : position + until_move]
            if self._permutation is not None:
                inner = self._randomize_vector()[segment]
            else:
                inner = segment
            physical = (inner + self._start) % self._n_logical
            physical = physical + (physical >= self._gap)
            served = array.apply_batch(physical)
            self.demand_writes += served
            self._writes_since_move += served
            position += served
            if self._writes_since_move >= interval:
                self._writes_since_move = 0
                out[position - 1] += self._move_gap()
            if array.failed:
                return out[:position]
        return out

    def fault_surface(self):
        """Start-Gap's injectable state: the start and gap registers.

        Two single-entry targets of address width.  Neither register
        has structural redundancy (there is no inverse to scan), so
        parity protection goes straight to the fail-safe: re-format the
        rotation (start 0, gap parked at the last frame).  Translation
        stays total for *any* register value — ``start`` enters a
        modulo and a corrupt ``gap`` merely stops bumping — so even
        unprotected corruption degrades leveling without ever
        misaddressing the array.
        """
        from ..pcm.softerrors import BitTarget

        bits = max(1, (self.array.n_pages - 1).bit_length())

        def read(entry: int) -> int:
            return self._start if entry == 0 else self._gap

        def write(entry: int, value: int) -> None:
            if entry == 0:
                self._start = int(value)
            else:
                self._gap = int(value)

        return {
            "regs": BitTarget(
                name="regs",
                n_entries=2,
                entry_bits=bits,
                read=read,
                write=write,
                fail_safe=self.fault_fail_safe,
            ),
        }

    def fault_fail_safe(self) -> None:
        """Graceful degradation: re-format the rotation registers."""
        self._start = 0
        self._gap = self._n_logical
        self._writes_since_move = 0
        self.fault_degraded = True

    def _randomize_vector(self) -> np.ndarray:
        if self._randomize_table is None:
            self._randomize_table = np.fromiter(
                (self._randomize(page) for page in range(self._n_logical)),
                dtype=np.int64,
                count=self._n_logical,
            )
        return self._randomize_table

    def _move_gap(self) -> int:
        """Advance the gap by one frame (costs one migration write)."""
        if self._gap == 0:
            self._gap = self._n_logical
            self._start = (self._start + 1) % self._n_logical
            return 0  # the wrap itself moves no data
        # Copy frame gap-1 into the gap frame.
        self.array.write(self._gap)
        self._gap -= 1
        self._count_swap(1)
        return 1
