"""Start-Gap wear leveling [Qureshi et al., MICRO'09].

An extra baseline from the paper's related work ([10] — also the source
of TWL's Feistel RNG).  One spare frame (the *gap*) rotates through the
array: every ``gap_move_interval`` demand writes the page adjacent to the
gap is copied into it, so the whole address space slowly slides across
physical frames.  With ``randomize=True`` the logical address is first
passed through a static Feistel permutation (Randomized Start-Gap), which
breaks spatial correlation between logical and physical neighbourhoods.

Start-Gap is PV-*unaware*: it equalizes writes across frames, which (as
the paper argues) actually accelerates the weakest pages' death under
process variation.
"""

from __future__ import annotations

import numpy as np

from ..config import StartGapConfig
from ..errors import ConfigError
from ..pcm.array import PCMArray
from ..rng.feistel import FeistelNetwork
from .base import WearLeveler


class StartGap(WearLeveler):
    """Start-Gap with optional static address randomization."""

    name = "startgap"

    def __init__(
        self,
        array: PCMArray,
        config: StartGapConfig = StartGapConfig(),
        seed: int = 0,
    ):
        super().__init__(array)
        if array.n_pages < 2:
            raise ConfigError("Start-Gap needs at least two frames (one spare)")
        self.config = config
        #: Logical space is one page smaller than physical: the gap frame.
        self._n_logical = array.n_pages - 1
        self._start = 0
        self._gap = self._n_logical  # gap begins at the last frame
        self._writes_since_move = 0
        self._permutation = None
        #: Lazily built vector mirror of :meth:`_randomize` (the static
        #: permutation never changes, so one table serves all batches).
        self._randomize_table = None
        if config.randomize:
            bits = max(2, self._n_logical.bit_length())
            if bits % 2:
                bits += 1
            self._permutation = FeistelNetwork(bits=bits, seed=seed)

    @property
    def logical_pages(self) -> int:
        return self._n_logical

    def _randomize(self, logical: int) -> int:
        """Static randomization layer (cycle-walking the Feistel output)."""
        if self._permutation is None:
            return logical
        value = self._permutation.encrypt(logical)
        # Cycle-walk until the value lands inside the logical space; the
        # permutation property guarantees termination.
        while value >= self._n_logical:
            value = self._permutation.encrypt(value)
        return value

    def translate(self, logical: int) -> int:
        self.check_logical(logical)
        inner = self._randomize(logical)
        physical = (inner + self._start) % self._n_logical
        if physical >= self._gap:
            physical += 1
        return physical

    def write(self, logical: int) -> int:
        physical = self.translate(logical)
        self.array.write(physical)
        self._count_demand()
        writes = 1
        self._writes_since_move += 1
        if self._writes_since_move >= self.config.gap_move_interval:
            self._writes_since_move = 0
            writes += self._move_gap()
        return writes

    def write_batch(self, addresses) -> np.ndarray:  # twl: allow(TWL009) reason=batch path materializes the lazy seed-derived randomize table the scalar path builds on first miss; contents are identical either way
        """Closed-form batch path: the whole rotation is arithmetic.

        The gap cycles through ``n_logical + 1`` positions, one step per
        ``gap_move_interval`` demand writes, so the start/gap registers
        at any demand write of the batch — and every gap move's written
        frame — follow in closed form from the registers at batch start.
        The entire batch (demand writes plus move writes) then reduces
        to a handful of vector expressions and one bulk accumulate.

        Device-write *order* inside the batch is observable only through
        first-failure attribution, so the fast path first checks whether
        any page could reach its endurance under the batch's combined
        counts; if so, it falls back to :meth:`_write_batch_exact`,
        which replays the serial interleaving (including the gap move a
        failing boundary write still performs).  The guard triggers at
        most once per run — the batch that contains the failure.
        """
        seq = np.asarray(addresses, dtype=np.int64)
        if self.array.failed:
            return np.zeros(0, dtype=np.int64)
        n = self._n_logical
        if seq.size and ((seq < 0).any() or (seq >= n).any()):
            bad = int(seq[(seq < 0) | (seq >= n)][0])
            self.check_logical(bad)
        if seq.size == 0:
            return np.zeros(0, dtype=np.int64)
        array = self.array
        interval = self.config.gap_move_interval
        m = int(seq.size)
        wsm0 = self._writes_since_move
        p0 = self._gap
        start0 = self._start
        cycle = n + 1  # gap states: frames 0..n

        if self._permutation is not None:
            inner = self._randomize_vector()[seq]
        else:
            inner = seq
        # Gap moves completed before demand write t (0-based in-batch).
        moves_before = (wsm0 + np.arange(m, dtype=np.int64)) // interval
        # A move at gap 0 wraps (gap jumps to n, start advances) instead
        # of writing; wraps among the first j moves is closed-form too.
        wraps_before = (moves_before + n - p0) // cycle
        start_t = (start0 + wraps_before) % n
        gap_t = (p0 - moves_before) % cycle
        physical = (inner + start_t) % n
        physical = physical + (physical >= gap_t)

        total_moves = (wsm0 + m) // interval
        moves = np.arange(total_moves, dtype=np.int64)
        gap_at_move = (p0 - moves) % cycle
        nonwrap = gap_at_move != 0
        move_frames = gap_at_move[nonwrap]

        counts = np.bincount(physical, minlength=array.n_pages)
        if move_frames.size:
            counts += np.bincount(move_frames, minlength=array.n_pages)
        if not array.failed and (array.writes + counts >= array.endurance).any():
            return self._write_batch_exact(seq)

        array.apply_write_counts(counts)
        out = np.ones(m, dtype=np.int64)
        if total_moves:
            # Move j fires right after demand write (j+1)*interval-wsm0-1
            # and bills its migration write to that request.
            move_positions = (moves + 1) * interval - wsm0 - 1
            out[move_positions[nonwrap]] += 1
            moved = int(nonwrap.sum())
            self.swap_events += moved
            self.swap_writes += moved
        self.demand_writes += m
        self._writes_since_move = (wsm0 + m) % interval
        self._gap = int((p0 - total_moves) % cycle)
        self._start = int((start0 + (total_moves + n - p0) // cycle) % n)
        return out

    def _write_batch_exact(self, seq: np.ndarray) -> np.ndarray:
        """Serial-interleaving batch path (exact failure attribution).

        The pre-refactor segmented implementation: translation is fixed
        between gap moves, so each segment is one vector translate plus
        one :meth:`PCMArray.apply_batch`, with gap moves (and the move a
        failing boundary write still performs) replayed exactly as
        :meth:`write` would.  Only runs for the batch a failure is
        possible in.
        """
        out = np.ones(seq.size, dtype=np.int64)
        array = self.array
        interval = self.config.gap_move_interval
        position = 0
        while position < seq.size:
            until_move = interval - self._writes_since_move
            segment = seq[position : position + until_move]
            if self._permutation is not None:
                inner = self._randomize_vector()[segment]
            else:
                inner = segment
            physical = (inner + self._start) % self._n_logical
            physical = physical + (physical >= self._gap)
            served = array.apply_batch(physical)
            self.demand_writes += served
            self._writes_since_move += served
            position += served
            if self._writes_since_move >= interval:
                self._writes_since_move = 0
                out[position - 1] += self._move_gap()
            if array.failed:
                return out[:position]
        return out

    def _snapshot_state(self):
        # The Feistel permutation and its table are static (derivable
        # from the seed); only the rotation registers move.
        return {
            "gap": self._gap,
            "start": self._start,
            "writes_since_move": self._writes_since_move,
        }

    def _restore_state(self, state):
        self._gap = int(state["gap"])
        self._start = int(state["start"])
        self._writes_since_move = int(state["writes_since_move"])

    def fault_surface(self):
        """Start-Gap's injectable state: the start and gap registers.

        Two single-entry targets of address width.  Neither register
        has structural redundancy (there is no inverse to scan), so
        parity protection goes straight to the fail-safe: re-format the
        rotation (start 0, gap parked at the last frame).  Translation
        stays total for *any* register value — ``start`` enters a
        modulo and a corrupt ``gap`` merely stops bumping — so even
        unprotected corruption degrades leveling without ever
        misaddressing the array.
        """
        from ..pcm.softerrors import BitTarget

        bits = max(1, (self.array.n_pages - 1).bit_length())

        def read(entry: int) -> int:
            return self._start if entry == 0 else self._gap

        def write(entry: int, value: int) -> None:
            if entry == 0:
                self._start = int(value)
            else:
                self._gap = int(value)

        return {
            "regs": BitTarget(
                name="regs",
                n_entries=2,
                entry_bits=bits,
                read=read,
                write=write,
                fail_safe=self.fault_fail_safe,
            ),
        }

    def fault_fail_safe(self) -> None:
        """Graceful degradation: re-format the rotation registers."""
        self._start = 0
        self._gap = self._n_logical
        self._writes_since_move = 0
        self.fault_degraded = True

    def _randomize_vector(self) -> np.ndarray:
        if self._randomize_table is None:
            # Vectorized cycle-walk: re-encrypt only the entries still
            # outside the logical space (element-wise identical to the
            # scalar :meth:`_randomize` loop).
            values = self._permutation.encrypt_array(
                np.arange(self._n_logical, dtype=np.int64)
            )
            walking = values >= self._n_logical
            while walking.any():
                values[walking] = self._permutation.encrypt_array(values[walking])
                walking = values >= self._n_logical
            self._randomize_table = values  # twl: allow(TWL008) reason=lazy cache of the seed-derived address permutation; a rebuild after restore is bit-identical
        return self._randomize_table

    def _move_gap(self) -> int:
        """Advance the gap by one frame (costs one migration write)."""
        if self._gap == 0:
            self._gap = self._n_logical
            self._start = (self._start + 1) % self._n_logical
            return 0  # the wrap itself moves no data
        # Copy frame gap-1 into the gap frame.
        self.array.write(self._gap)
        self._gap -= 1
        self._count_swap(1)
        return 1
