"""Wear-leveling schemes.

All schemes implement the :class:`WearLeveler` interface: the simulator
hands them logical-page writes and they decide where the writes land on
the :class:`repro.pcm.PCMArray`, performing whatever extra migration
writes their algorithm requires.

Implemented schemes:

* :class:`NoWearLeveling` — identity mapping (paper's "NOWL");
* :class:`StartGap` — Start-Gap [Qureshi et al., MICRO'09], an extra
  baseline from the paper's related work;
* :class:`SecurityRefresh` — dynamically randomized remapping
  [Seong et al., ISCA'10] (paper's "SR");
* :class:`WearRateLeveling` — the prediction-swap-running flow of
  [Dong et al., DAC'11] used in the paper's Figure 1 walkthrough;
* :class:`BloomWearLeveling` — Bloom-filter based dynamic wear leveling
  [Yun et al., DATE'12] (paper's "BWL");
* :class:`repro.core.TossUpWearLeveling` — the paper's contribution
  (exported here for registry completeness).
"""

from .base import WearLeveler, SWAP_VISIBLE_THRESHOLD
from .nowl import NoWearLeveling
from .start_gap import StartGap
from .security_refresh import SecurityRefresh, SingleLevelSecurityRefresh
from .wrl import WearRateLeveling
from .bwl import BloomWearLeveling
from .retirement import RetirementConfig, RetirementWearLeveling
from .registry import SCHEME_FACTORIES, make_scheme, scheme_names

__all__ = [
    "WearLeveler",
    "SWAP_VISIBLE_THRESHOLD",
    "NoWearLeveling",
    "StartGap",
    "SecurityRefresh",
    "SingleLevelSecurityRefresh",
    "WearRateLeveling",
    "BloomWearLeveling",
    "RetirementConfig",
    "RetirementWearLeveling",
    "SCHEME_FACTORIES",
    "make_scheme",
    "scheme_names",
]
