"""Scheme registry: build any wear leveler by name.

The names match the paper's labels: ``nowl``, ``sr``, ``bwl``, plus
``twl_swp`` / ``twl_ap`` / ``twl_random`` for the TWL pairing variants,
``wrl`` for the Figure-1 walkthrough scheme and ``startgap`` as an extra
related-work baseline.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..config import (
    BWLConfig,
    SecurityRefreshConfig,
    StartGapConfig,
    TWLConfig,
    WRLConfig,
    PAIRING_ADJACENT,
    PAIRING_RANDOM,
    PAIRING_STRONG_WEAK,
)
from ..errors import ConfigError
from ..pcm.array import PCMArray
from .base import WearLeveler
from .bwl import BloomWearLeveling
from .nowl import NoWearLeveling
from .retirement import RetirementConfig, RetirementWearLeveling
from .security_refresh import SecurityRefresh, SingleLevelSecurityRefresh
from .start_gap import StartGap
from .wrl import WearRateLeveling

SchemeFactory = Callable[[PCMArray, int], WearLeveler]


def _make_twl(pairing: str):
    def factory(array: PCMArray, seed: int, **overrides) -> WearLeveler:
        # Imported here to avoid a circular import (repro.core builds on
        # the tables this package also uses).
        from ..core.twl import TossUpWearLeveling

        config = overrides.pop("config", None) or TWLConfig(pairing=pairing)
        if config.pairing != pairing:
            config = config.with_pairing(pairing)
        return TossUpWearLeveling(array, config=config, seed=seed, **overrides)

    return factory


SCHEME_FACTORIES: Dict[str, Callable] = {
    "nowl": lambda array, seed, **kw: NoWearLeveling(array),
    "startgap": lambda array, seed, **kw: StartGap(
        array, config=kw.pop("config", StartGapConfig()), seed=seed
    ),
    "sr": lambda array, seed, **kw: SecurityRefresh(
        array, config=kw.pop("config", SecurityRefreshConfig()), seed=seed
    ),
    "sr_single": lambda array, seed, **kw: SingleLevelSecurityRefresh(
        array, config=kw.pop("config", SecurityRefreshConfig()), seed=seed
    ),
    "wrl": lambda array, seed, **kw: WearRateLeveling(
        array, config=kw.pop("config", WRLConfig()), seed=seed
    ),
    "bwl": lambda array, seed, **kw: BloomWearLeveling(
        array, config=kw.pop("config", BWLConfig()), seed=seed
    ),
    "retire": lambda array, seed, **kw: RetirementWearLeveling(
        array, config=kw.pop("config", RetirementConfig()), seed=seed
    ),
    "twl_swp": _make_twl(PAIRING_STRONG_WEAK),
    "twl_ap": _make_twl(PAIRING_ADJACENT),
    "twl_random": _make_twl(PAIRING_RANDOM),
}

#: The paper's Figure-8/9 label "TWL" means the SWP variant.
SCHEME_FACTORIES["twl"] = SCHEME_FACTORIES["twl_swp"]


def scheme_names() -> List[str]:
    """All registered scheme names."""
    return sorted(SCHEME_FACTORIES)


def make_scheme(name: str, array: PCMArray, seed: int = 0, **kwargs) -> WearLeveler:
    """Instantiate the scheme ``name`` over ``array``.

    ``kwargs`` may carry a scheme-specific ``config=`` object.
    """
    try:
        factory = SCHEME_FACTORIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown scheme {name!r}; known: {', '.join(scheme_names())}"
        ) from None
    return factory(array, seed, **kwargs)
