"""Security Refresh [Seong et al., ISCA'10] (the paper's "SR" baseline).

Dynamically randomized address remapping.  The production design is a
two-level hierarchy of XOR-keyed sub-region remappers whose combined
effect is that every demand-written page migrates to a fresh uniformly
random frame within a bounded number of its own writes, at a cost of two
page writes per remap step.

Two models are provided:

* :class:`SecurityRefresh` — the **behavioral model** used for the
  paper-figure experiments: each demand write triggers, with probability
  ``1/refresh_interval``, a swap of the just-written page's frame with a
  uniformly random frame (2 page writes).  This matches the two-level
  design's three observable properties exactly — remap rate per hammered
  address, write overhead (2/interval ≈ 1.6 %), and a uniform stationary
  wear distribution — and unlike a single XOR level it keeps those
  properties at any simulated array scale (see DESIGN.md §2).  The
  trigger is memoryless rather than a modulo counter so that a
  write-stream period can never phase-lock with the refresh period (the
  hardware's sweep pointer is likewise uncorrelated with the stream).
* :class:`SingleLevelSecurityRefresh` — the faithful sweep-split XOR
  mechanics of one SR level: a refresh pointer sweeps the region,
  incrementally migrating data from the current-key placement to a
  next-key placement.  Its full key rotation takes ``n * interval``
  writes, which is *slower than page endurance* for concentrated write
  streams — the reason the original authors layered two levels.  Kept as
  an ablation (``sr_single`` in the registry) demonstrating exactly that
  weakness.

SR is PV-unaware either way: it uniformly randomizes wear, so (as the
paper reports) lifetime is pinned at the weakest page's endurance —
about 44% of ideal — under *every* workload, attack or benign.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..config import SecurityRefreshConfig
from ..errors import ConfigError
from ..pcm.array import PCMArray
from ..rng.lfsr import GaloisLFSR
from ..rng.streams import derive_seed
from ..rng.xorshift import XorShift32
from ..tables.remap import RemappingTable
from .base import WearLeveler


class SecurityRefresh(WearLeveler):
    """Behavioral SR: demand-driven uniformly randomized remapping."""

    name = "sr"

    def __init__(
        self,
        array: PCMArray,
        config: SecurityRefreshConfig = SecurityRefreshConfig(),
        seed: int = 0,
    ):
        super().__init__(array)
        self.config = config
        self.remap = RemappingTable(array.n_pages)
        self._victim_rng = XorShift32(
            (derive_seed(seed, "sr-victim") % 0xFFFF_FFFE) + 1
        )
        self._trigger_rng = XorShift32(
            (derive_seed(seed, "sr-trigger") % 0xFFFF_FFFE) + 1
        )
        self.refresh_steps = 0

    def translate(self, logical: int) -> int:
        self.check_logical(logical)
        return self.remap.lookup(logical)

    def write(self, logical: int) -> int:
        physical = self.remap.lookup(logical)
        self.array.write(physical)
        self._count_demand()
        writes = 1
        if self._trigger_rng.next_below(self.config.refresh_interval) == 0:
            writes += self._refresh_step(logical)
        return writes

    def write_batch(self, addresses: Sequence[int]) -> np.ndarray:
        """Vectorized batch path: segment the batch at refresh triggers.

        The trigger stream and the victim stream come from *separate*
        xorshift instances, so the batch can pre-draw one trigger word
        per request (exactly the draws the serial loop would make) and
        then apply each trigger-free run of demand writes as one
        :meth:`~repro.pcm.array.PCMArray.apply_batch` call, stepping the
        scalar :meth:`_refresh_step` only at trigger positions.  With the
        default refresh interval that is one scalar step per ~interval
        writes; everything else is vectorized.

        Identity with the serial path (enforced by
        ``tests/test_engine_identity.py``): a triggering demand write
        that wears out a page still runs its refresh step — serial
        :meth:`write` completes fully before the drive loop observes the
        failure — and the batch stops exactly where the serial loop
        would.  Trigger words pre-drawn for requests after a mid-batch
        failure are post-failure RNG state only, which nothing
        observable depends on once the run is over.
        """
        seq = np.asarray(addresses, dtype=np.int64)
        array = self.array
        if array.failed:
            return np.zeros(0, dtype=np.int64)
        self.check_logical_batch(seq)
        if seq.size == 0:
            return np.zeros(0, dtype=np.int64)
        out = np.ones(seq.size, dtype=np.int64)
        words = self._trigger_rng.next_words(seq.size)
        triggers = np.flatnonzero(words % self.config.refresh_interval == 0).tolist()
        forward = self.remap.mapping_array()  # live view: current across swaps
        start = 0
        for pos in triggers:
            applied = array.apply_batch(forward[seq[start : pos + 1]])
            self.demand_writes += applied
            if applied < pos + 1 - start:
                return out[: start + applied]
            out[pos] += self._refresh_step(int(seq[pos]))
            if array.failed:
                return out[: pos + 1]
            start = pos + 1
        if start < seq.size:
            applied = array.apply_batch(forward[seq[start:]])
            self.demand_writes += applied
            if applied < seq.size - start:
                return out[: start + applied]
        return out

    def _snapshot_state(self):
        return {
            "refresh_steps": self.refresh_steps,
            "remap": self.remap.snapshot(),
            "trigger_rng": self._trigger_rng.snapshot(),
            "victim_rng": self._victim_rng.snapshot(),
        }

    def _restore_state(self, state):
        self.refresh_steps = int(state["refresh_steps"])
        self.remap.restore(state["remap"])
        self._trigger_rng.restore(state["trigger_rng"])
        self._victim_rng.restore(state["victim_rng"])

    def _refresh_step(self, logical: int) -> int:
        """Swap the written page's frame with a uniformly random frame."""
        n = self.remap.n_pages
        victim = self._victim_rng.next_below(n)
        other = self.remap.inverse(victim)
        if other == logical:
            return 0
        frame_a = self.remap.lookup(logical)
        self.array.write(frame_a)
        self.array.write(victim)
        self.remap.swap_logical(logical, other)
        self.refresh_steps += 1
        self._count_swap(2)
        return 2


class _XorLevel:
    """Sweep-split XOR remapping state for one SR region."""

    __slots__ = ("base", "size", "key_current", "key_next", "pointer", "write_count")

    def __init__(self, base: int, size: int, key_current: int, key_next: int):
        self.base = base
        self.size = size
        self.key_current = key_current
        self.key_next = key_next
        self.pointer = 0
        self.write_count = 0


class SingleLevelSecurityRefresh(WearLeveler):
    """Faithful single-level SR sweep mechanics (ablation baseline).

    A refresh pointer sweeps each region; an offset and its partner
    ``offset ^ key_current ^ key_next`` exchange frames in one remap step
    (2 page writes), so both flip to the next-key placement once the
    pointer passes the smaller of the two.  A full sweep rotates the
    region onto a fresh random key.
    """

    name = "sr_single"

    def __init__(
        self,
        array: PCMArray,
        config: SecurityRefreshConfig = SecurityRefreshConfig(),
        seed: int = 0,
    ):
        super().__init__(array)
        n = array.n_pages
        if n < 2 or (n & (n - 1)) != 0:
            raise ConfigError(
                f"single-level SR needs a power-of-two page count, got {n}"
            )
        region_pages = config.region_pages or n
        if region_pages > n or n % region_pages != 0:
            raise ConfigError(
                f"region size {region_pages} does not divide array size {n}"
            )
        if region_pages < 2:
            raise ConfigError("SR regions need at least two pages")
        self.config = config
        self.region_pages = region_pages
        self._offset_mask = region_pages - 1
        self._region_shift = region_pages.bit_length() - 1
        self._lfsr = GaloisLFSR(
            width=max(4, min(32, self._region_shift + 4)),
            seed=(derive_seed(seed, "sr-lfsr") % ((1 << 16) - 1)) + 1,
        )
        self._regions: List[_XorLevel] = []
        for index in range(n // region_pages):
            key_current = self._fresh_key()
            key_next = self._fresh_key(exclude=key_current)
            self._regions.append(
                _XorLevel(index * region_pages, region_pages, key_current, key_next)
            )

    def _fresh_key(self, exclude: int = -1) -> int:
        """Draw a new random region key different from ``exclude``."""
        while True:
            key = self._lfsr.next_word(self._region_shift)
            if key != exclude:
                return key

    def _map_offset(self, region: _XorLevel, offset: int) -> int:
        """Within-region placement under the sweep-split key pair."""
        partner = offset ^ region.key_current ^ region.key_next
        if min(offset, partner) < region.pointer:
            return offset ^ region.key_next
        return offset ^ region.key_current

    def translate(self, logical: int) -> int:
        self.check_logical(logical)
        region = self._regions[logical >> self._region_shift]
        offset = logical & self._offset_mask
        return region.base + self._map_offset(region, offset)

    def write(self, logical: int) -> int:
        physical = self.translate(logical)
        self.array.write(physical)
        self._count_demand()
        writes = 1
        region = self._regions[logical >> self._region_shift]
        region.write_count += 1
        if region.write_count >= self.config.refresh_interval:
            region.write_count = 0
            writes += self._refresh_step(region)
        return writes

    def _snapshot_state(self):
        # Region geometry (base/size) is derivable from the config; the
        # keys, sweep pointers and write counters are the moving state.
        # The LFSR register must be restored directly — construction
        # consumed draws for the initial keys, and re-drawing would
        # desynchronize every later key rotation.
        return {
            "lfsr": self._lfsr.snapshot(),
            "regions": [
                {
                    "key_current": region.key_current,
                    "key_next": region.key_next,
                    "pointer": region.pointer,
                    "write_count": region.write_count,
                }
                for region in self._regions
            ],
        }

    def _restore_state(self, state):
        self._lfsr.restore(state["lfsr"])
        records = state["regions"]
        if len(records) != len(self._regions):
            raise ConfigError(
                f"snapshot holds {len(records)} SR regions, scheme has "
                f"{len(self._regions)}"
            )
        for region, record in zip(self._regions, records):
            region.key_current = int(record["key_current"])
            region.key_next = int(record["key_next"])
            region.pointer = int(record["pointer"])
            region.write_count = int(record["write_count"])

    def _refresh_step(self, region: _XorLevel) -> int:
        """Advance the region's sweep by one offset."""
        offset = region.pointer
        partner = offset ^ region.key_current ^ region.key_next
        cost = 0
        if offset < partner:
            frame_a = region.base + (offset ^ region.key_current)
            frame_b = region.base + (offset ^ region.key_next)
            self.array.write(frame_a)
            self.array.write(frame_b)
            self._count_swap(2)
            cost = 2
        region.pointer += 1
        if region.pointer >= region.size:
            region.pointer = 0
            region.key_current = region.key_next
            region.key_next = self._fresh_key(exclude=region.key_current)
        return cost
