"""Common interface for wear-leveling schemes.

The contract is intentionally narrow so the simulator's hot loop stays
fast:

* :meth:`WearLeveler.write` serves one logical-page write and returns the
  number of *physical page writes* it performed (1 for a plain write,
  more when migrations/swaps happened).  A return value of 2 or more is
  what an attacker observes as a blocked, slow response — the timing side
  channel of Section 3.1.
* :meth:`WearLeveler.write_batch` serves an ordered batch of logical
  writes and returns the per-request physical write counts.  The base
  implementation is the per-write loop, so batching is bit-identical by
  construction; schemes with a cheap data path override it with a
  vectorized fast path that must preserve that identity (enforced by
  ``tests/test_engine_identity.py``).
* :meth:`WearLeveler.translate` is the side-effect-free LA -> PA lookup
  used by reads.

Schemes keep aggregate counters (`demand_writes`, `swap_writes`,
`swap_events`) that the timing model and the Figure-7a swap-ratio
experiment consume.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Dict, Sequence

import numpy as np

from ..errors import AddressError
from ..pcm.array import PCMArray

if TYPE_CHECKING:
    from ..pcm.softerrors import BitTarget

#: A request that performs at least this many physical writes blocks long
#: enough for the attacker's response-time probe to flag it (memory swaps
#: "block all memory requests to ensure memory integrity").
SWAP_VISIBLE_THRESHOLD = 2


class WearLeveler(abc.ABC):
    """Base class for all wear-leveling schemes."""

    #: Registry name; subclasses override.
    name = "base"

    def __init__(self, array: PCMArray):
        self.array = array
        self.demand_writes = 0
        self.swap_writes = 0
        self.swap_events = 0
        #: Set when a fail-safe fallback fired (soft-error repair was
        #: impossible and the scheme degraded, e.g. to identity mapping).
        self.fault_degraded = False

    # ------------------------------------------------------------------
    # Address space
    # ------------------------------------------------------------------
    @property
    def logical_pages(self) -> int:
        """Size of the logical address space the scheme exposes.

        Equals the physical page count for most schemes; Start-Gap
        reserves one spare frame.
        """
        return self.array.n_pages

    def check_logical(self, logical: int) -> None:
        """Validate a logical address against the exposed space."""
        if not 0 <= logical < self.logical_pages:
            raise AddressError(
                f"logical page {logical} out of range [0, {self.logical_pages})"
            )

    def check_logical_batch(self, seq: np.ndarray) -> None:
        """Validate a batch of logical addresses up front.

        Raises :class:`~repro.errors.AddressError` naming the first
        out-of-range address in request order — the address the serial
        loop would have rejected.
        """
        if seq.size == 0:
            return
        n = self.logical_pages
        if int(seq.min()) < 0 or int(seq.max()) >= n:
            bad = int(seq[(seq < 0) | (seq >= n)][0])
            self.check_logical(bad)

    # ------------------------------------------------------------------
    # The data path
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def translate(self, logical: int) -> int:
        """Current physical frame of ``logical`` (no side effects)."""

    def read(self, logical: int) -> int:
        """Serve a read: translate only (reads do not wear PCM)."""
        return self.translate(logical)

    @abc.abstractmethod
    def write(self, logical: int) -> int:
        """Serve one logical write; return physical writes performed."""

    def write_batch(self, addresses: Sequence[int]) -> np.ndarray:
        """Serve an ordered batch of logical writes.

        Returns the number of physical page writes each request
        performed, as an ``int64`` array.  If some request wears out a
        page, the batch stops after that request and the returned array
        is truncated to the requests actually served — exactly where the
        per-write simulation loop would have stopped, so a batched run
        is bit-identical to a serial one (scheme counters, array state
        and failure attribution included).

        This default implementation is the per-write loop; schemes with
        a vectorizable data path override it and must preserve the
        identity contract.
        """
        seq = np.asarray(addresses, dtype=np.int64)
        out = np.zeros(seq.size, dtype=np.int64)
        array = self.array
        if array.failed:
            return out[:0]
        write = self.write
        served = 0
        for logical in seq.tolist():  # twl: allow(TWL006) reason=default per-write fallback
            out[served] = write(logical)
            served += 1
            if array.failed:
                break
        return out[:served]

    # ------------------------------------------------------------------
    # Mid-run persistence
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """The scheme's complete mutable state as a plain state tree.

        Base counters plus whatever the subclass hook
        (:meth:`_snapshot_state`) contributes: tables, RNG registers,
        phase machines.  Derivable structures (endurance tables, layout
        permutations, hash families) are rebuilt by construction and
        never serialized.  Restoring this state into a freshly
        constructed scheme of the same configuration reproduces the
        run's future bit-exactly — the contract
        ``tests/test_snapshot_identity.py`` enforces for every scheme.
        """
        return {
            "base": {
                "demand_writes": self.demand_writes,
                "fault_degraded": self.fault_degraded,
                "swap_events": self.swap_events,
                "swap_writes": self.swap_writes,
            },
            "scheme": self._snapshot_state(),
        }

    def restore(self, state: Dict[str, object]) -> None:
        """Restore a state captured by :meth:`snapshot`."""
        base = state["base"]
        self.demand_writes = int(base["demand_writes"])  # type: ignore[index]
        self.fault_degraded = bool(base["fault_degraded"])  # type: ignore[index]
        self.swap_events = int(base["swap_events"])  # type: ignore[index]
        self.swap_writes = int(base["swap_writes"])  # type: ignore[index]
        self._restore_state(state["scheme"])  # type: ignore[arg-type]

    def _snapshot_state(self) -> Dict[str, object]:
        """Subclass hook: scheme-specific mutable state (default none)."""
        return {}

    def _restore_state(self, state: Dict[str, object]) -> None:
        """Subclass hook mirroring :meth:`_snapshot_state`."""

    # ------------------------------------------------------------------
    # Fault surface
    # ------------------------------------------------------------------
    def fault_surface(self) -> Dict[str, "BitTarget"]:
        """Controller SRAM structures exposed to soft-error injection.

        Maps stable structure names (``"rt"``, ``"wct"``, ``"swpt"``,
        ``"wnt"``, ``"rng"``, ...) to
        :class:`repro.pcm.softerrors.BitTarget` descriptors.  The base
        scheme has no injectable state; schemes that keep SRAM tables
        or RNG registers override this so
        :class:`~repro.pcm.softerrors.SoftErrorInjector` can corrupt —
        and their repair hooks can heal — exactly the structures a real
        controller would expose.
        """
        return {}

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def _count_demand(self) -> None:
        self.demand_writes += 1

    def _count_swap(self, physical_writes: int) -> None:
        self.swap_events += 1
        self.swap_writes += physical_writes

    @property
    def total_physical_writes(self) -> int:
        """Demand plus migration writes issued to the array by this scheme."""
        return self.demand_writes + self.swap_writes

    def swap_write_ratio(self) -> float:
        """Extra writes per demand write (the Figure-7a metric)."""
        if self.demand_writes == 0:
            return 0.0
        return self.swap_writes / self.demand_writes

    def stats(self) -> Dict[str, float]:
        """Aggregate counters for result tables."""
        return {
            "demand_writes": float(self.demand_writes),
            "swap_writes": float(self.swap_writes),
            "swap_events": float(self.swap_events),
            "swap_write_ratio": self.swap_write_ratio(),
        }

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(demand_writes={self.demand_writes}, "
            f"swap_events={self.swap_events})"
        )
