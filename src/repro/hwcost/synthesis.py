"""The Section-5.4 design-overhead report.

Assembles TWL's storage and logic costs from the structural models:

* storage: 80 bits per 4 KB page → ~2.4e-3 overhead;
* logic: the Feistel RNG core (<128 GE) plus the toss-up datapath — a
  sequential divider for E_A/(E_A+E_B), the threshold comparator, the
  address-equality comparator of the swap judge and the interval
  comparator of the WCT (the paper's "718 gates according to our
  synthesis results"), totalling ≈840 GE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..config import PCMConfig, TWLConfig, PAPER_PCM
from .gates import comparator_gates, feistel_rng_gates, sequential_divider_gates
from .storage import twl_storage_bits_per_page, twl_storage_overhead

#: Endurance-table entry width (paper: 27 bits).
ENDURANCE_ENTRY_BITS = 27


@dataclass(frozen=True)
class DesignOverheadReport:
    """TWL hardware cost summary (the paper's Section 5.4)."""

    storage_bits_per_page: int
    storage_overhead: float
    rng_gates: int
    datapath_gates: int

    @property
    def total_gates(self) -> int:
        """RNG plus datapath (paper: ~840 gates)."""
        return self.rng_gates + self.datapath_gates

    def breakdown(self) -> Dict[str, float]:
        """Flat view for result tables."""
        return {
            "storage_bits_per_page": float(self.storage_bits_per_page),
            "storage_overhead": self.storage_overhead,
            "rng_gates": float(self.rng_gates),
            "datapath_gates": float(self.datapath_gates),
            "total_gates": float(self.total_gates),
        }


def twl_design_overhead(
    pcm: PCMConfig = PAPER_PCM,
    twl: TWLConfig = TWLConfig(),
) -> DesignOverheadReport:
    """Compute the full TWL design-overhead report."""
    address_bits = max(1, (pcm.n_pages - 1).bit_length())
    datapath = (
        sequential_divider_gates(ENDURANCE_ENTRY_BITS)  # E_A / (E_A + E_B)
        + comparator_gates(twl.rng_bits)  # alpha vs threshold
        + comparator_gates(address_bits)  # swap judge: Addr_choose vs Addr_write
        + comparator_gates(twl.write_counter_bits)  # WCT interval trigger
    )
    return DesignOverheadReport(
        storage_bits_per_page=twl_storage_bits_per_page(
            pcm, twl, endurance_bits=ENDURANCE_ENTRY_BITS
        ),
        storage_overhead=twl_storage_overhead(
            pcm, twl, endurance_bits=ENDURANCE_ENTRY_BITS
        ),
        rng_gates=feistel_rng_gates(bits=twl.rng_bits),
        datapath_gates=datapath,
    )
