"""Hardware design-overhead models (paper Section 5.4).

* :mod:`repro.hwcost.gates` — gate-equivalent cost models for the
  datapath primitives (comparators, adders, a sequential divider, the
  iterative Feistel RNG core);
* :mod:`repro.hwcost.storage` — per-page table storage accounting;
* :mod:`repro.hwcost.synthesis` — assembles the full Section-5.4 report.
"""

from .gates import (
    comparator_gates,
    adder_gates,
    register_gates,
    mux_gates,
    sequential_divider_gates,
    feistel_rng_gates,
)
from .storage import (
    twl_storage_bits_per_page,
    twl_storage_overhead,
    scheme_storage_bits,
    scheme_table_geometry,
    secded_check_bits,
    protection_bits_per_entry,
    scheme_protection_bits,
    protection_storage_overhead,
)
from .synthesis import DesignOverheadReport, twl_design_overhead

__all__ = [
    "comparator_gates",
    "adder_gates",
    "register_gates",
    "mux_gates",
    "sequential_divider_gates",
    "feistel_rng_gates",
    "twl_storage_bits_per_page",
    "twl_storage_overhead",
    "scheme_storage_bits",
    "scheme_table_geometry",
    "secded_check_bits",
    "protection_bits_per_entry",
    "scheme_protection_bits",
    "protection_storage_overhead",
    "DesignOverheadReport",
    "twl_design_overhead",
]
