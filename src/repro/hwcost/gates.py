"""Gate-equivalent cost models for datapath primitives.

Costs are in 2-input-NAND gate equivalents (GE), the unit synthesis
reports use.  The per-primitive constants are standard structural
estimates (a full adder ≈ 5 GE, a flip-flop ≈ 6 GE, a 2:1 mux ≈ 3 GE);
the paper's own numbers (<128 GE for the 8-bit Feistel RNG, 718 GE for
the divider-plus-comparators datapath) fall out of the same accounting,
as ``tests/test_hwcost.py`` checks.
"""

from __future__ import annotations

#: Gate equivalents per primitive bit.
FULL_ADDER_GE = 5
FLIP_FLOP_GE = 6
MUX2_GE = 3
XOR_GE = 2
COMPARATOR_STAGE_GE = 3

#: A 4-bit S-box as two-level logic (4 outputs of 4-input functions).
SBOX4_GE = 18


def comparator_gates(bits: int) -> int:
    """Magnitude comparator over ``bits``."""
    _check_bits(bits)
    return COMPARATOR_STAGE_GE * bits


def adder_gates(bits: int) -> int:
    """Ripple-carry adder over ``bits``."""
    _check_bits(bits)
    return FULL_ADDER_GE * bits


def register_gates(bits: int) -> int:
    """Flip-flop register of ``bits``."""
    _check_bits(bits)
    return FLIP_FLOP_GE * bits


def mux_gates(bits: int, inputs: int = 2) -> int:
    """``inputs``:1 multiplexer over a ``bits``-wide word."""
    _check_bits(bits)
    if inputs < 2:
        raise ValueError("mux needs at least two inputs")
    return MUX2_GE * bits * (inputs - 1)


def sequential_divider_gates(bits: int) -> int:
    """Radix-2 restoring divider over ``bits``-wide operands.

    One subtract/compare stage, a remainder register, a quotient
    register and a small FSM; one quotient bit per cycle — the TWL
    engine runs only every toss-up interval, so a multi-cycle divider is
    free in performance terms.
    """
    _check_bits(bits)
    datapath = adder_gates(bits) + comparator_gates(bits) + mux_gates(bits)
    state = register_gates(2 * bits)
    control = 40  # ~counter + FSM
    return datapath + state + control


def feistel_rng_gates(bits: int = 8, rounds: int = 4) -> int:
    """Iterative 8-bit Feistel RNG core (paper: "less than 128 gates").

    The hardware folds all rounds onto one round-function instance
    (add-key, S-box, rotate, XOR) with two half-word state registers;
    rounds execute sequentially, which is free at a 4-cycle RNG latency
    budget.  The counter-mode input reuses the state registers and the
    round adder for its increment, so the counter costs only control
    glue.
    """
    _check_bits(bits)
    if bits % 2:
        raise ValueError("Feistel width must be even")
    if rounds < 1:
        raise ValueError("need at least one round")
    half = bits // 2
    round_function = adder_gates(half) + SBOX4_GE * ((half + 3) // 4) + XOR_GE * half
    state = register_gates(bits)  # the two half registers
    control = 20  # round sequencer + counter-mode glue (adder is shared)
    return round_function + state + control


def _check_bits(bits: int) -> None:
    if bits < 1:
        raise ValueError(f"bit width must be positive, got {bits}")
