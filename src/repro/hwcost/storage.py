"""Table storage accounting (paper Section 5.4).

TWL reserves, per PCM page: a write-counter entry (7 bits), an endurance
table entry (27 bits), a remapping table entry and a strong-weak pair
table entry (ceil(log2(n_pages)) bits each — 23 at the paper's 8.4M-page
scale).  That is 80 bits per 4 KB page, a 2.4e-3 storage overhead
("about 80bits/4KB = 2.5e-3").
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..config import (
    BWLConfig,
    PCMConfig,
    TWLConfig,
    PAPER_PCM,
    PROTECTION_NONE,
    PROTECTION_PARITY,
    PROTECTION_SECDED,
)
from ..errors import ConfigError


def _address_bits(n_pages: int) -> int:
    return max(1, (n_pages - 1).bit_length())


def twl_storage_bits_per_page(
    pcm: PCMConfig = PAPER_PCM,
    twl: TWLConfig = TWLConfig(),
    endurance_bits: int = 27,
) -> int:
    """Per-page SRAM bits TWL reserves (WCT + ET + RT + SWPT)."""
    if endurance_bits < 1:
        raise ConfigError("endurance entry width must be positive")
    address = _address_bits(pcm.n_pages)
    return twl.write_counter_bits + endurance_bits + 2 * address


def twl_storage_overhead(
    pcm: PCMConfig = PAPER_PCM,
    twl: TWLConfig = TWLConfig(),
    endurance_bits: int = 27,
) -> float:
    """TWL storage overhead as a fraction of PCM capacity."""
    bits_per_page = twl_storage_bits_per_page(pcm, twl, endurance_bits)
    return bits_per_page / (pcm.page_bytes * 8)


def scheme_storage_bits(
    scheme_name: str,
    pcm: PCMConfig = PAPER_PCM,
    twl: TWLConfig = TWLConfig(),
    bwl: BWLConfig = BWLConfig(),
) -> Dict[str, int]:
    """Per-structure storage bits of any scheme (comparison table).

    Returns a mapping structure-name -> total bits across the device.
    """
    name = scheme_name.lower()
    n = pcm.n_pages
    address = _address_bits(n)
    if name == "nowl":
        return {}
    if name == "startgap":
        return {"start_register": address, "gap_register": address}
    if name == "sr":
        return {
            "region_keys": 2 * address,
            "refresh_pointer": address,
            "write_counter": 16,
        }
    if name == "wrl":
        return {
            "remap_table": n * address,
            "endurance_table": n * 27,
            "write_number_table": n * 16,
        }
    if name == "bwl":
        return {
            "remap_table": n * address,
            "endurance_table": n * 27,
            "bloom_filters": 2 * bwl.bloom_bits * 8,
            "coldhot_lists": 8 * max(1, int(bwl.hot_fraction * n)) * address,
        }
    if name in ("twl", "twl_swp", "twl_ap", "twl_random"):
        return {
            "remap_table": n * address,
            "endurance_table": n * 27,
            "pair_table": n * address,
            "write_counter_table": n * twl.write_counter_bits,
        }
    raise ConfigError(f"no storage model for scheme {scheme_name!r}")


def scheme_table_geometry(
    scheme_name: str,
    pcm: PCMConfig = PAPER_PCM,
    twl: TWLConfig = TWLConfig(),
    bwl: BWLConfig = BWLConfig(),
) -> Dict[str, Tuple[int, int]]:
    """Per-structure ``(n_entries, entry_bits)`` geometry of a scheme.

    The entry is the protection codeword unit: parity/SECDED check bits
    are added per entry, so the geometry (not just the total bit count
    of :func:`scheme_storage_bits`) determines the protection cost.
    Bit-array structures with no record substructure (Bloom filters,
    lone registers) count as a single wide entry.  Consistent with
    :func:`scheme_storage_bits`: ``n_entries * entry_bits`` sums to the
    same totals.
    """
    name = scheme_name.lower()
    n = pcm.n_pages
    address = _address_bits(n)
    if name == "nowl":
        return {}
    if name == "startgap":
        return {"start_register": (1, address), "gap_register": (1, address)}
    if name == "sr":
        return {
            "region_keys": (2, address),
            "refresh_pointer": (1, address),
            "write_counter": (1, 16),
        }
    if name == "wrl":
        return {
            "remap_table": (n, address),
            "endurance_table": (n, 27),
            "write_number_table": (n, 16),
        }
    if name == "bwl":
        return {
            "remap_table": (n, address),
            "endurance_table": (n, 27),
            "bloom_filters": (2, bwl.bloom_bits * 8),
            "coldhot_lists": (8 * max(1, int(bwl.hot_fraction * n)), address),
        }
    if name in ("twl", "twl_swp", "twl_ap", "twl_random"):
        return {
            "remap_table": (n, address),
            "endurance_table": (n, 27),
            "pair_table": (n, address),
            "write_counter_table": (n, twl.write_counter_bits),
        }
    raise ConfigError(f"no storage model for scheme {scheme_name!r}")


def secded_check_bits(data_bits: int) -> int:
    """Check bits of a Hamming SEC-DED code over ``data_bits`` data bits.

    The smallest ``r`` with ``2**r >= data_bits + r + 1`` gives single
    error correction; one more overall-parity bit adds double error
    detection.  For the classic widths: 8 data bits need 5, 64 need 8.
    """
    if data_bits < 1:
        raise ConfigError("SECDED data width must be positive")
    r = 1
    while (1 << r) < data_bits + r + 1:
        r += 1
    return r + 1


def protection_bits_per_entry(entry_bits: int, protection: str) -> int:
    """Check bits one table entry needs under a protection level."""
    if entry_bits < 1:
        raise ConfigError("entry width must be positive")
    if protection == PROTECTION_NONE:
        return 0
    if protection == PROTECTION_PARITY:
        return 1
    if protection == PROTECTION_SECDED:
        return secded_check_bits(entry_bits)
    raise ConfigError(f"unknown protection level {protection!r}")


def scheme_protection_bits(
    scheme_name: str,
    protection: str,
    pcm: PCMConfig = PAPER_PCM,
    twl: TWLConfig = TWLConfig(),
    bwl: BWLConfig = BWLConfig(),
) -> Dict[str, int]:
    """Per-structure protection check bits of a scheme, device-wide.

    Returns structure-name -> total check bits (``n_entries`` times
    :func:`protection_bits_per_entry`) for every structure in
    :func:`scheme_table_geometry`.
    """
    geometry = scheme_table_geometry(scheme_name, pcm=pcm, twl=twl, bwl=bwl)
    return {
        structure: n_entries * protection_bits_per_entry(entry_bits, protection)
        for structure, (n_entries, entry_bits) in geometry.items()
    }


def protection_storage_overhead(
    scheme_name: str,
    protection: str,
    pcm: PCMConfig = PAPER_PCM,
    twl: TWLConfig = TWLConfig(),
    bwl: BWLConfig = BWLConfig(),
) -> float:
    """Protection check-bit cost as a fraction of PCM capacity."""
    total = sum(
        scheme_protection_bits(
            scheme_name, protection, pcm=pcm, twl=twl, bwl=bwl
        ).values()
    )
    return total / (pcm.n_pages * pcm.page_bytes * 8)
