"""Table storage accounting (paper Section 5.4).

TWL reserves, per PCM page: a write-counter entry (7 bits), an endurance
table entry (27 bits), a remapping table entry and a strong-weak pair
table entry (ceil(log2(n_pages)) bits each — 23 at the paper's 8.4M-page
scale).  That is 80 bits per 4 KB page, a 2.4e-3 storage overhead
("about 80bits/4KB = 2.5e-3").
"""

from __future__ import annotations

from typing import Dict

from ..config import BWLConfig, PCMConfig, TWLConfig, PAPER_PCM
from ..errors import ConfigError


def _address_bits(n_pages: int) -> int:
    return max(1, (n_pages - 1).bit_length())


def twl_storage_bits_per_page(
    pcm: PCMConfig = PAPER_PCM,
    twl: TWLConfig = TWLConfig(),
    endurance_bits: int = 27,
) -> int:
    """Per-page SRAM bits TWL reserves (WCT + ET + RT + SWPT)."""
    if endurance_bits < 1:
        raise ConfigError("endurance entry width must be positive")
    address = _address_bits(pcm.n_pages)
    return twl.write_counter_bits + endurance_bits + 2 * address


def twl_storage_overhead(
    pcm: PCMConfig = PAPER_PCM,
    twl: TWLConfig = TWLConfig(),
    endurance_bits: int = 27,
) -> float:
    """TWL storage overhead as a fraction of PCM capacity."""
    bits_per_page = twl_storage_bits_per_page(pcm, twl, endurance_bits)
    return bits_per_page / (pcm.page_bytes * 8)


def scheme_storage_bits(
    scheme_name: str,
    pcm: PCMConfig = PAPER_PCM,
    twl: TWLConfig = TWLConfig(),
    bwl: BWLConfig = BWLConfig(),
) -> Dict[str, int]:
    """Per-structure storage bits of any scheme (comparison table).

    Returns a mapping structure-name -> total bits across the device.
    """
    name = scheme_name.lower()
    n = pcm.n_pages
    address = _address_bits(n)
    if name == "nowl":
        return {}
    if name == "startgap":
        return {"start_register": address, "gap_register": address}
    if name == "sr":
        return {
            "region_keys": 2 * address,
            "refresh_pointer": address,
            "write_counter": 16,
        }
    if name == "wrl":
        return {
            "remap_table": n * address,
            "endurance_table": n * 27,
            "write_number_table": n * 16,
        }
    if name == "bwl":
        return {
            "remap_table": n * address,
            "endurance_table": n * 27,
            "bloom_filters": 2 * bwl.bloom_bits * 8,
            "coldhot_lists": 8 * max(1, int(bwl.hot_fraction * n)) * address,
        }
    if name in ("twl", "twl_swp", "twl_ap", "twl_random"):
        return {
            "remap_table": n * address,
            "endurance_table": n * 27,
            "pair_table": n * address,
            "write_counter_table": n * twl.write_counter_bits,
        }
    raise ConfigError(f"no storage model for scheme {scheme_name!r}")
