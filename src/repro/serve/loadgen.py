"""Load generator and chaos harness for the campaign server.

``twl-repro loadgen`` drives a running server with many concurrent
client tasks, each performing a seeded mix of actions — honest
submissions, duplicate resubmissions (exercising in-flight coalescing
and the shared cache), malformed frames, oversized frames, mid-request
disconnects and slow-loris writers.  The mix is drawn from the repo's
deterministic RNG streams (rule TWL001): the same seed always produces
the same traffic, byte for byte, which is what makes a chaos run a
*regression test* instead of a dice roll.

The harness double-checks the server's headline contract at the end:

* the server must still be alive (a final ``ping`` must answer);
* every completed response must be **bit-identical to serial
  execution** of the same cell (:func:`verify_bit_identity` replays the
  completed set through :func:`repro.exec.run_cells` and compares
  encoded payloads).

Faults *inside* the server (worker SIGKILLs, server SIGKILL+restart)
are orchestrated by ``benchmarks/serve_chaos_check.py`` via
``REPRO_FAULTS`` on the server process; the loadgen only generates
client-side chaos, so the two compose independently.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..config import ScaledArrayConfig
from ..exec import attack_cell, cell_fingerprint, run_cells
from ..exec.cache import encode_result
from ..exec.cells import ExperimentCell
from ..rng.streams import make_generator
from .protocol import MAX_FRAME_BYTES, encode_cell

__all__ = [
    "Address",
    "LoadReport",
    "default_grid",
    "open_connection",
    "ping",
    "submit_cell",
    "run_loadgen",
    "verify_bit_identity",
]

#: ``("tcp", host, port)`` or ``("unix", path)``.
Address = Union[Tuple[str, str, int], Tuple[str, str]]

#: Chaos action weights (submit carries the rest of the mass).
_CHAOS_WEIGHTS = (
    ("duplicate", 0.25),
    ("malformed", 0.08),
    ("oversized", 0.04),
    ("disconnect", 0.08),
    ("slowloris", 0.05),
)


@dataclass
class LoadReport:
    """Outcome of one loadgen campaign."""

    #: Completed responses: fingerprint → ``{"kind", "payload"}``.
    completed: Dict[str, Dict[str, Any]]
    #: Action/outcome counters (``submit``, ``overloaded`` …).
    counts: Dict[str, int]
    #: Whether the server answered the final ping.
    server_alive: bool
    #: Fingerprints whose responses disagreed with each other (a
    #: violated coalescing/cache contract — must stay empty).
    conflicts: List[str]

    def summary(self) -> str:
        parts = [f"{key}={self.counts[key]}" for key in sorted(self.counts)]
        return (
            f"loadgen: {len(self.completed)} unique result(s), "
            f"alive={self.server_alive}, conflicts={len(self.conflicts)}, "
            + " ".join(parts)
        )


def default_grid(n_seeds: int = 2) -> List[ExperimentCell]:
    """The small deterministic cell grid the harness submits."""
    scaled = ScaledArrayConfig(n_pages=64, endurance_mean=768.0)
    return [
        attack_cell(scheme, attack, scaled=scaled, seed=seed)
        for scheme in ("nowl", "sr")
        for attack in ("repeat", "scan")
        for seed in range(11, 11 + n_seeds)
    ]


async def open_connection(
    address: Address,
) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    limit = MAX_FRAME_BYTES + 1024
    if address[0] == "unix":
        return await asyncio.open_unix_connection(address[1], limit=limit)
    return await asyncio.open_connection(address[1], address[2], limit=limit)


async def _request(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    frame: Dict[str, Any],
    timeout: float,
) -> Dict[str, Any]:
    data = json.dumps(frame, sort_keys=True, separators=(",", ":")) + "\n"
    writer.write(data.encode())
    await writer.drain()
    line = await asyncio.wait_for(reader.readline(), timeout=timeout)
    if not line:
        raise ConnectionError("server closed the connection")
    record = json.loads(line.decode())
    assert isinstance(record, dict)
    return record


async def submit_cell(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    cell: ExperimentCell,
    request_id: str,
    session: str = "loadgen",
    deadline: Optional[float] = None,
    timeout: float = 120.0,
) -> Dict[str, Any]:
    """One submit round-trip (shared with tests and the chaos gate)."""
    frame: Dict[str, Any] = {
        "op": "submit",
        "id": request_id,
        "session": session,
        "cell": encode_cell(cell),
    }
    if deadline is not None:
        frame["deadline"] = deadline
    return await _request(reader, writer, frame, timeout)


async def ping(address: Address, timeout: float = 10.0) -> bool:
    """Whether the server answers a ping within ``timeout``."""
    try:
        reader, writer = await asyncio.wait_for(
            open_connection(address), timeout=timeout
        )
    except (OSError, asyncio.TimeoutError):
        return False
    try:
        record = await _request(
            reader, writer, {"op": "ping", "id": "ping"}, timeout
        )
        return bool(record.get("ok"))
    except (OSError, ValueError, asyncio.TimeoutError, ConnectionError):
        return False
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (OSError, ConnectionError):
            pass


def _pick_action(rng: Any, chaos: bool) -> str:
    if not chaos:
        return "duplicate" if rng.random() < 0.3 else "submit"
    unit = rng.random()
    mass = 0.0
    for action, weight in _CHAOS_WEIGHTS:
        mass += weight
        if unit < mass:
            return action
    return "submit"


class _Recorder:
    """Shared, conflict-detecting sink for completed responses."""

    def __init__(self) -> None:
        self.completed: Dict[str, Dict[str, Any]] = {}
        self.conflicts: List[str] = []

    def record(self, response: Dict[str, Any]) -> None:
        fingerprint = response.get("fingerprint")
        if not isinstance(fingerprint, str):
            return
        payload = {"kind": response.get("kind"), "payload": response.get("payload")}
        known = self.completed.get(fingerprint)
        if known is None:
            self.completed[fingerprint] = payload
        elif known != payload and fingerprint not in self.conflicts:
            self.conflicts.append(fingerprint)


async def _client(
    index: int,
    address: Address,
    cells: Sequence[ExperimentCell],
    actions: int,
    seed: int,
    chaos: bool,
    session: str,
    deadline: Optional[float],
    timeout: float,
    recorder: _Recorder,
    counts: Dict[str, int],
) -> None:
    rng = make_generator(seed, "loadgen", "client", index)
    reader: Optional[asyncio.StreamReader] = None
    writer: Optional[asyncio.StreamWriter] = None
    last_cell = cells[int(rng.integers(len(cells)))]

    def bump(key: str) -> None:
        counts[key] = counts.get(key, 0) + 1

    async def connect() -> None:
        nonlocal reader, writer
        reader, writer = await open_connection(address)

    async def drop() -> None:
        nonlocal reader, writer
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, ConnectionError):
                pass
        reader = writer = None

    for action_index in range(actions):
        action = _pick_action(rng, chaos)
        try:
            if reader is None:
                await connect()
            assert reader is not None and writer is not None
            if action in ("submit", "duplicate"):
                cell = (
                    last_cell
                    if action == "duplicate"
                    else cells[int(rng.integers(len(cells)))]
                )
                last_cell = cell
                response = await submit_cell(
                    reader,
                    writer,
                    cell,
                    request_id=f"c{index}-a{action_index}",
                    session=session,
                    deadline=deadline,
                    timeout=timeout,
                )
                if response.get("ok"):
                    bump(f"done_{response.get('source', 'unknown')}")
                    recorder.record(response)
                else:
                    bump((response.get("error") or {}).get("code", "unknown"))
                bump(action)
            elif action == "malformed":
                record = await _request_raw(
                    reader, writer, b'{"op": "nonsense"\n', timeout
                )
                bump("malformed")
                if record is not None and not record.get("ok", True):
                    bump("malformed_rejected")
            elif action == "oversized":
                writer.write(b"x" * (MAX_FRAME_BYTES + 4096) + b"\n")
                try:
                    await writer.drain()
                    await asyncio.wait_for(reader.readline(), timeout=timeout)
                except (OSError, ConnectionError, asyncio.TimeoutError):
                    pass
                bump("oversized")
                await drop()  # the server closes past-limit streams
            elif action == "disconnect":
                frame = {
                    "op": "submit",
                    "id": f"c{index}-a{action_index}-drop",
                    "session": session,
                    "cell": encode_cell(last_cell),
                }
                writer.write(
                    (json.dumps(frame, sort_keys=True) + "\n").encode()
                )
                await writer.drain()
                await drop()  # vanish mid-request
                bump("disconnect")
            elif action == "slowloris":
                frame = json.dumps(
                    {"op": "ping", "id": f"c{index}-a{action_index}"}
                ).encode()
                half = len(frame) // 2
                writer.write(frame[:half])
                await writer.drain()
                await asyncio.sleep(0.2)
                writer.write(frame[half:] + b"\n")
                await writer.drain()
                await asyncio.wait_for(reader.readline(), timeout=timeout)
                bump("slowloris")
        except (OSError, ConnectionError, ValueError, asyncio.TimeoutError):
            # Connection-level casualties are expected under chaos; the
            # contract under test is the *server's* health, not ours.
            bump("client_error")
            await drop()
    await drop()


async def _request_raw(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    payload: bytes,
    timeout: float,
) -> Optional[Dict[str, Any]]:
    writer.write(payload)
    await writer.drain()
    line = await asyncio.wait_for(reader.readline(), timeout=timeout)
    if not line:
        raise ConnectionError("server closed the connection")
    try:
        record = json.loads(line.decode())
    except (ValueError, UnicodeDecodeError):
        return None
    return record if isinstance(record, dict) else None


async def run_loadgen(
    address: Address,
    cells: Optional[Sequence[ExperimentCell]] = None,
    clients: int = 16,
    actions: int = 10,
    seed: int = 2017,
    chaos: bool = True,
    session: str = "loadgen",
    deadline: Optional[float] = None,
    timeout: float = 120.0,
) -> LoadReport:
    """Drive the server at ``address`` with ``clients`` seeded clients."""
    grid = list(cells) if cells is not None else default_grid()
    recorder = _Recorder()
    counts: Dict[str, int] = {}
    await asyncio.gather(
        *(
            _client(
                index,
                address,
                grid,
                actions,
                seed,
                chaos,
                session,
                deadline,
                timeout,
                recorder,
                counts,
            )
            for index in range(clients)
        )
    )
    alive = await ping(address)
    return LoadReport(
        completed=recorder.completed,
        counts=counts,
        server_alive=alive,
        conflicts=recorder.conflicts,
    )


def verify_bit_identity(
    completed: Dict[str, Dict[str, Any]],
    cells: Sequence[ExperimentCell],
) -> List[str]:
    """Fingerprints whose served payload differs from serial execution.

    Replays every cell of ``cells`` that appears in ``completed``
    through :func:`repro.exec.run_cells` (serial, no cache) and
    compares the canonical encoded payloads byte-for-byte.  An empty
    return is the chaos acceptance criterion: every surviving response
    was bit-identical to serial.
    """
    by_fingerprint = {cell_fingerprint(cell): cell for cell in cells}
    targets = [
        (fingerprint, by_fingerprint[fingerprint])
        for fingerprint in sorted(completed)
        if fingerprint in by_fingerprint
    ]
    mismatches = [
        fingerprint for fingerprint in sorted(completed)
        if fingerprint not in by_fingerprint
    ]
    results = run_cells([cell for _, cell in targets], jobs=1)
    for (fingerprint, _), result in zip(targets, results):
        kind, payload = encode_result(result)
        # One JSON round-trip normalizes container types (tuple→list)
        # exactly the way the wire did for the served copy.
        expected = json.loads(json.dumps({"kind": kind, "payload": payload}))
        if completed[fingerprint] != expected:
            mismatches.append(fingerprint)
    return mismatches
