"""Resilient campaign service: experiment cells over a socket.

``twl-repro serve`` turns the one-shot campaign executor into a
long-lived, failure-tolerant service (ROADMAP open item 2): many
concurrent clients submit experiment cells and trace-stream specs as
newline-delimited JSON over TCP or a UNIX socket, and the server runs
them on the existing process-pool executor under the full robustness
stack — bounded admission with structured backpressure, per-request
deadlines, deterministic retry on worker loss, pool rebuild and
graceful degradation, per-session journal persistence, and
drain-then-exit shutdown.  SoftWear (arxiv 2004.03244) frames wear
leveling itself as a runtime service; this package makes the same move
for the reproduction.

* :mod:`repro.serve.protocol` — the NDJSON wire codec: request/response
  schemas, the cell codec (canonical dataclass-tagged JSON), error
  codes, frame limits;
* :mod:`repro.serve.server` — :class:`CampaignServer`, the asyncio
  front-end over the process pool;
* :mod:`repro.serve.session` — :class:`SessionStore`, per-session
  exclusively-locked checkpoint journals giving bit-identical resume
  across server restarts;
* :mod:`repro.serve.loadgen` — the load-generator client doubling as
  the heavy-traffic benchmark and the seeded chaos harness;
* :mod:`repro.serve.cli` — ``twl-repro serve`` / ``twl-repro loadgen``.

The guarantees (and their limits) are documented in
``docs/serving.md``; the chaos acceptance gate is
``benchmarks/serve_chaos_check.py`` (``make quick-serve``).
"""

from .protocol import (
    ERROR_DEADLINE,
    ERROR_FAILED,
    ERROR_MALFORMED,
    ERROR_OVERLOADED,
    ERROR_OVERSIZED,
    ERROR_SHUTDOWN,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    decode_cell,
    decode_frame,
    encode_cell,
    encode_frame,
)
from .server import CampaignServer, ServerConfig
from .session import SessionStore, valid_session_name

__all__ = [
    "ERROR_DEADLINE",
    "ERROR_FAILED",
    "ERROR_MALFORMED",
    "ERROR_OVERLOADED",
    "ERROR_OVERSIZED",
    "ERROR_SHUTDOWN",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "decode_cell",
    "decode_frame",
    "encode_cell",
    "encode_frame",
    "CampaignServer",
    "ServerConfig",
    "SessionStore",
    "valid_session_name",
]
