"""Wire protocol of the campaign service: NDJSON frames + cell codec.

One frame is one UTF-8 JSON object terminated by ``\\n`` — trivially
streamable, greppable in a packet capture, and bounded: frames longer
than :data:`MAX_FRAME_BYTES` are rejected with a structured
``oversized`` error instead of buffering without limit.

Requests (client → server)::

    {"op": "submit", "id": "r1", "session": "alice",
     "cell": {...}, "deadline": 30.0}
    {"op": "ping", "id": "r2"}
    {"op": "stats", "id": "r3"}

Responses (server → client) always echo ``id`` and carry the current
``degraded`` flag::

    {"format": 1, "id": "r1", "ok": true, "status": "done",
     "kind": "lifetime", "payload": {...}, "source": "run",
     "seconds": 1.83, "degraded": false}
    {"format": 1, "id": "r1", "ok": false, "status": "rejected",
     "error": {"code": "overloaded", "message": "..."}, "degraded": false}

``source`` distinguishes fresh execution (``run``) from the shared
content-addressed cache (``cache``), a resumed per-session journal
record (``journal``), and a duplicate submission coalesced onto an
in-flight execution (``coalesced``) — all four are bit-identical by the
executor's identity contract.

Cell codec
----------

``cell`` is the :func:`repro.exec.hashing.canonical_value` form of an
:class:`~repro.exec.cells.ExperimentCell` — the exact representation
the cache fingerprint hashes, so a submitted cell fingerprints
identically on the server.  Dataclasses ride as
``{"__dataclass__": "TWLConfig", "fields": {...}}`` against an explicit
registry of config types; nothing is ever unpickled from the wire.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, Optional, Tuple, Type

from ..config import (
    BWLConfig,
    PCMConfig,
    ScaledArrayConfig,
    SecurityRefreshConfig,
    SoftErrorConfig,
    StartGapConfig,
    TimingConfig,
    TWLConfig,
    WRLConfig,
)
from ..errors import ConfigError
from ..exec.cells import ExperimentCell
from ..exec.hashing import canonical_value
from ..traces.ftl import FTLConfig
from ..traces.parsec import BenchmarkProfile

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "OP_SUBMIT",
    "OP_PING",
    "OP_STATS",
    "ERROR_MALFORMED",
    "ERROR_OVERSIZED",
    "ERROR_OVERLOADED",
    "ERROR_DEADLINE",
    "ERROR_FAILED",
    "ERROR_SHUTDOWN",
    "ProtocolError",
    "encode_cell",
    "decode_cell",
    "encode_frame",
    "decode_frame",
    "error_response",
]

#: Response schema version.
PROTOCOL_VERSION = 1

#: Hard per-frame byte limit (request and response).  A cell spec is a
#: few KiB; 1 MiB leaves two orders of magnitude of headroom while
#: bounding what a slow-loris or garbage writer can make the server
#: buffer for one line.
MAX_FRAME_BYTES = 1 << 20

#: Request operations.
OP_SUBMIT = "submit"
OP_PING = "ping"
OP_STATS = "stats"
OPS = (OP_SUBMIT, OP_PING, OP_STATS)

#: Structured rejection codes (the NDJSON analogue of HTTP statuses).
ERROR_MALFORMED = "malformed"  # undecodable or schema-violating frame
ERROR_OVERSIZED = "oversized"  # frame exceeded MAX_FRAME_BYTES
ERROR_OVERLOADED = "overloaded"  # admission queue full (503-style)
ERROR_DEADLINE = "deadline"  # per-request deadline expired
ERROR_FAILED = "failed"  # cell executed and failed
ERROR_SHUTDOWN = "shutdown"  # server is draining


class ProtocolError(ConfigError):
    """A frame that decodes as JSON but violates the request schema."""


#: Config dataclasses allowed on the wire, by class name.  An explicit
#: allowlist: decoding never instantiates a type a client names unless
#: it is one of these spec carriers (each validates itself in
#: ``__post_init__``).
_WIRE_DATACLASSES: Tuple[Type[Any], ...] = (
    PCMConfig,
    ScaledArrayConfig,
    TimingConfig,
    TWLConfig,
    SecurityRefreshConfig,
    StartGapConfig,
    WRLConfig,
    BWLConfig,
    SoftErrorConfig,
    FTLConfig,
    BenchmarkProfile,
    ExperimentCell,
)
_REGISTRY: Dict[str, Type[Any]] = {cls.__name__: cls for cls in _WIRE_DATACLASSES}


def encode_cell(cell: ExperimentCell) -> Dict[str, Any]:
    """The canonical JSON-able form of ``cell`` (fingerprint-stable)."""
    encoded = canonical_value(cell)
    assert isinstance(encoded, dict)
    return encoded


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if "__dataclass__" in value:
            return _decode_dataclass(value)
        return {key: _decode_value(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_decode_value(item) for item in value]
    return value


def _decode_dataclass(record: Dict[str, Any]) -> Any:
    name = record.get("__dataclass__")
    cls = _REGISTRY.get(name) if isinstance(name, str) else None
    if cls is None:
        raise ProtocolError(f"unknown dataclass {name!r} on the wire")
    fields = record.get("fields")
    if not isinstance(fields, dict):
        raise ProtocolError(f"dataclass {name} frame carries no fields object")
    declared = {field.name: field for field in dataclasses.fields(cls)}
    kwargs: Dict[str, Any] = {}
    for key, raw in fields.items():
        field = declared.get(key)
        if field is None:
            raise ProtocolError(f"dataclass {name} has no field {key!r}")
        value = _decode_value(raw)
        # canonical_value lowers tuples to lists; restore declared
        # tuple fields (e.g. SoftErrorConfig.targets) so decoded specs
        # are hashable and equal to locally-built ones.
        if isinstance(value, list) and "uple[" in str(field.type):
            value = tuple(value)
        kwargs[key] = value
    try:
        return cls(**kwargs)
    except TypeError as error:
        raise ProtocolError(
            f"dataclass {name} rejected wire fields: {error}"
        ) from error


def decode_cell(record: Any) -> ExperimentCell:
    """Rebuild an :class:`ExperimentCell` from its wire form.

    Raises :class:`ProtocolError` for anything that is not a
    well-formed cell — including specs whose own ``__post_init__``
    validation rejects them (a bad client must never crash a handler).
    """
    if not isinstance(record, dict) or record.get("__dataclass__") != "ExperimentCell":
        raise ProtocolError("submit frame carries no ExperimentCell")
    try:
        cell = _decode_dataclass(record)
    except ConfigError:
        raise
    except Exception as error:  # noqa: BLE001 - wire data is hostile
        raise ProtocolError(f"undecodable cell spec: {error}") from error
    if not isinstance(cell, ExperimentCell):  # pragma: no cover - defensive
        raise ProtocolError("decoded object is not an ExperimentCell")
    return cell


def encode_frame(record: Dict[str, Any]) -> bytes:
    """One wire frame: compact JSON + newline, size-checked."""
    data = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
    payload = data.encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return payload


def decode_frame(line: bytes) -> Dict[str, Any]:
    """Parse one request frame; :class:`ProtocolError` on any defect."""
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(line)} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    try:
        record = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"frame is not valid JSON: {error}") from error
    if not isinstance(record, dict):
        raise ProtocolError("frame must be a JSON object")
    op = record.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; expected one of {OPS}")
    request_id = record.get("id")
    if not isinstance(request_id, str) or not request_id:
        raise ProtocolError("frame carries no request id")
    return record


def error_response(
    request_id: Optional[str],
    code: str,
    message: str,
    degraded: bool = False,
) -> Dict[str, Any]:
    """A structured rejection/failure envelope."""
    return {
        "format": PROTOCOL_VERSION,
        "id": request_id if request_id else "",
        "ok": False,
        "status": "rejected" if code in (
            ERROR_MALFORMED, ERROR_OVERSIZED, ERROR_OVERLOADED, ERROR_SHUTDOWN
        ) else "failed",
        "error": {"code": code, "message": message},
        "degraded": degraded,
    }
