"""The asyncio campaign server: robust execution behind a socket.

:class:`CampaignServer` accepts NDJSON frames (see
:mod:`repro.serve.protocol`) from many concurrent clients and runs the
submitted experiment cells on a :class:`ProcessPoolExecutor`, composing
every robustness mechanism the executor stack already has:

* **Bounded admission.**  At most ``queue_limit`` cells are admitted at
  once; the next submission is rejected with a structured
  ``overloaded`` frame (the NDJSON analogue of HTTP 503) instead of
  buffering without bound.  Rejection is cheap and explicit — the
  client owns the retry decision.
* **Per-request deadlines.**  A submit frame's ``deadline`` rides into
  the worker as the :func:`~repro.exec.executor._execute_one` timeout
  (the portable :class:`~repro.exec.deadline.CellDeadline`), with a
  parent-side ``asyncio.wait_for`` backstop slightly beyond it for the
  case of a worker too wedged to enforce its own budget.  A
  worker-count gate keeps queued cells out of the pool, so the
  deadline starts when the cell starts — queue wait behind a saturated
  pool is never charged against it.
* **Worker-loss retry, pool rebuild, graceful degradation.**  A
  ``BrokenProcessPool`` triggers a deterministic-backoff retry
  (:meth:`FailurePolicy.retry_delay`, keyed by cell fingerprint) on a
  rebuilt pool; past ``max_pool_rebuilds`` the pool is rebuilt at half
  the concurrency (repeatedly, floor 1) and every subsequent response
  carries ``degraded: true``.  A periodic health probe detects silently
  dead pools between requests.
* **Duplicate coalescing.**  Submissions of an already-in-flight
  fingerprint await the same execution (``source: "coalesced"``) — the
  content-addressed-cache contract applied to in-flight work.
* **Per-session persistence.**  Completed cells are journaled per
  session (:class:`~repro.serve.session.SessionStore`); a SIGKILLed
  server restarted on the same state directory serves them back
  bit-identically (``source: "journal"``).
* **Disconnect reclamation.**  A client that vanishes has its pending
  request tasks cancelled; executions nobody else is waiting on are
  cancelled too (reclaiming unstarted pool slots — a cell already on a
  worker runs to completion and lands in cache/journal, so the work is
  banked, not wasted).
* **Drain-then-exit.**  SIGTERM/SIGINT (CLI) or :meth:`begin_drain`
  flips the server into draining: new submissions get ``shutdown``
  rejections while admitted cells finish (bounded by ``drain_grace``),
  then sockets close and journals release their owner locks.
"""

from __future__ import annotations

import asyncio
import contextlib
import multiprocessing
import os
import time
from concurrent.futures import Future as PoolFuture
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, Optional, Set

from ..errors import CellTimeoutError, ConfigError, ReproError
from ..exec.cache import CellCache
from ..exec.cells import CellResult, ExperimentCell
from ..exec.executor import _execute_one
from ..exec.hashing import cell_fingerprint
from ..exec.policy import FailurePolicy
from .protocol import (
    ERROR_DEADLINE,
    ERROR_FAILED,
    ERROR_MALFORMED,
    ERROR_OVERLOADED,
    ERROR_OVERSIZED,
    ERROR_SHUTDOWN,
    MAX_FRAME_BYTES,
    OP_PING,
    OP_STATS,
    OP_SUBMIT,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_cell,
    decode_frame,
    encode_frame,
    error_response,
)
from .session import DEFAULT_SESSION, SessionStore, valid_session_name

__all__ = [
    "ServerConfig",
    "CampaignServer",
    "SubmitRequest",
    "SERVER_IDENTITY_FIELDS",
    "SERVER_EXECUTION_FIELDS",
    "REQUEST_IDENTITY_FIELDS",
    "REQUEST_EXECUTION_FIELDS",
    "encode_result_payload",
]

#: Parent-side slack beyond the worker-side deadline before the server
#: stops waiting for a (presumably wedged) worker and answers the
#: client itself.
DEADLINE_GRACE = 2.0


@dataclass(frozen=True)
class ServerConfig:
    """Everything one server instance is — address, state, limits."""

    #: Durable state root: per-session journals under ``sessions/``,
    #: the shared content-addressed cache under ``cache/``.  Restarting
    #: a server on the same root *is* resuming every session in it.
    state_dir: str
    #: TCP bind address (ignored when ``unix_path`` is set).
    host: str = "127.0.0.1"
    #: TCP port; 0 binds an ephemeral port (see :attr:`CampaignServer.address`).
    port: int = 0
    #: UNIX-domain socket path; when set it wins over TCP.
    unix_path: Optional[str] = None
    #: Worker-pool size.
    workers: int = 2
    #: Maximum concurrently admitted submissions; admission past this
    #: is rejected with a structured ``overloaded`` frame.
    queue_limit: int = 16
    #: Deadline applied to submissions that name none (None = no limit).
    default_deadline: Optional[float] = None
    #: Worker-loss retries per request (deterministic backoff).
    max_retries: int = 2
    #: Pool rebuilds at full concurrency before degrading to half.
    max_pool_rebuilds: int = 2
    #: Seconds between pool health probes (0 disables the probe loop).
    health_interval: float = 5.0
    #: Close connections idle this long with nothing in flight.
    idle_timeout: float = 60.0
    #: Maximum wait for admitted cells during drain-then-exit.
    drain_grace: float = 30.0
    #: Whether to maintain the shared content-addressed result cache.
    cache: bool = True

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.queue_limit < 1:
            raise ConfigError(f"queue_limit must be >= 1, got {self.queue_limit}")
        if self.default_deadline is not None and self.default_deadline <= 0:
            raise ConfigError("default_deadline must be positive when set")
        if not self.state_dir:
            raise ConfigError("state_dir is required")


#: TWL003 classification (enforced by ``repro.devtools.lint``): the
#: identity of a server is where it listens and which durable state it
#: owns; everything else tunes how it executes.
SERVER_IDENTITY_FIELDS: FrozenSet[str] = frozenset(
    {"state_dir", "host", "port", "unix_path"}
)
SERVER_EXECUTION_FIELDS: FrozenSet[str] = frozenset(
    {
        "workers",
        "queue_limit",
        "default_deadline",
        "max_retries",
        "max_pool_rebuilds",
        "health_interval",
        "idle_timeout",
        "drain_grace",
        "cache",
    }
)


@dataclass(frozen=True)
class SubmitRequest:
    """One decoded submit frame."""

    #: The work itself — the only determinant of the result (cache
    #: fingerprint identity).
    cell: ExperimentCell
    #: Durable scope the result is journaled under.
    session: str = DEFAULT_SESSION
    #: Client-side correlation id, echoed verbatim.
    request_id: str = ""
    #: Wall-clock budget (seconds); None inherits the server default.
    deadline: Optional[float] = None


#: TWL003: the cell and its session name *what* is computed and where
#: it persists; the id and deadline only shape this one exchange.
REQUEST_IDENTITY_FIELDS: FrozenSet[str] = frozenset({"cell", "session"})
REQUEST_EXECUTION_FIELDS: FrozenSet[str] = frozenset({"request_id", "deadline"})


def _probe() -> int:
    """Pool health probe body (module-level so it pickles)."""
    return os.getpid()


class _ExecutionCancelled(ReproError):
    """An admitted execution was cancelled out from under its waiters.

    Raised to a *live* waiter whose shielded execution future was
    cancelled externally (pool rebuild with ``cancel_futures=True``, or
    shutdown past ``drain_grace``) so the request still gets a
    structured error frame instead of a silent hang.
    """


def encode_result_payload(result: CellResult) -> Dict[str, Any]:
    """``{"kind": ..., "payload": ...}`` via the shared result codec."""
    from ..exec.cache import encode_result

    kind, payload = encode_result(result)
    return {"kind": kind, "payload": payload}


@dataclass
class _Inflight:
    """One in-flight execution with its coalesced-waiter refcount."""

    future: "asyncio.Future[CellResult]"
    waiters: int = 0


class CampaignServer:
    """Asyncio front-end over the fault-tolerant cell executor."""

    def __init__(
        self,
        config: ServerConfig,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config
        self._clock = clock
        self._sessions = SessionStore(os.path.join(config.state_dir, "sessions"))
        self._cache: Optional[CellCache] = (
            CellCache(os.path.join(config.state_dir, "cache"))
            if config.cache
            else None
        )
        # Used only for its deterministic retry_delay schedule.
        self._retry_policy = FailurePolicy(
            max_retries=config.max_retries, backoff_base=0.05
        )
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_workers = config.workers
        self._rebuilds = 0
        self.degraded = False
        self._active = 0
        self._inflight: Dict[str, _Inflight] = {}
        self._draining = False
        self._server: Optional[asyncio.AbstractServer] = None
        self._health_task: Optional[asyncio.Task] = None
        self._pool_lock: Optional[asyncio.Lock] = None
        #: Submission gate sized to the worker count: the pool never
        #: buffers more cells than it can execute (see :meth:`_execute`).
        self._pool_gate: Optional[asyncio.Semaphore] = None
        #: Single-thread executor for journal/cache I/O: off the event
        #: loop (flock + fsync block), single so appends stay ordered.
        self._io: Optional[ThreadPoolExecutor] = None
        self.stats: Dict[str, int] = {
            "submitted": 0,
            "completed": 0,
            "rejected_overloaded": 0,
            "rejected_malformed": 0,
            "rejected_oversized": 0,
            "rejected_shutdown": 0,
            "failed": 0,
            "deadline_expired": 0,
            "coalesced": 0,
            "cache_hits": 0,
            "journal_hits": 0,
            "pool_rebuilds": 0,
            "disconnects": 0,
        }

    def _make_pool(self) -> ProcessPoolExecutor:
        """A spawn-context worker pool.

        Spawn, never fork: the server process runs an event loop plus
        watchdog threads (fork is undefined behavior there), and forked
        workers would inherit every client connection fd — so a
        SIGKILLed server's orphaned workers would hold client sockets
        open and the listener bound, turning instant EOFs into client
        timeouts and blocking the restart.
        """
        return ProcessPoolExecutor(
            max_workers=self._pool_workers,
            mp_context=multiprocessing.get_context("spawn"),
        )

    # ------------------------------------------------------------------
    # lifecycle

    async def start(self) -> None:
        """Bind the socket and start the pool + health loop."""
        self._pool_lock = asyncio.Lock()
        self._pool = self._make_pool()
        self._pool_gate = asyncio.Semaphore(self._pool_workers)
        self._io = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="twl-serve-io"
        )
        limit = MAX_FRAME_BYTES + 1024
        if self.config.unix_path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.config.unix_path, limit=limit
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection,
                host=self.config.host,
                port=self.config.port,
                limit=limit,
            )
        if self.config.health_interval > 0:
            self._health_task = asyncio.create_task(self._health_loop())

    @property
    def address(self) -> Any:
        """Bound address: ``(host, port)`` for TCP, the path for UNIX."""
        if self.config.unix_path is not None:
            return self.config.unix_path
        assert self._server is not None
        return self._server.sockets[0].getsockname()[:2]

    async def serve_forever(self) -> None:
        assert self._server is not None
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → drain-then-exit (CLI entry point only)."""
        import signal as _signal

        loop = asyncio.get_running_loop()
        for signum in (_signal.SIGTERM, _signal.SIGINT):
            loop.add_signal_handler(
                signum, lambda: asyncio.create_task(self.shutdown())
            )

    def begin_drain(self) -> None:
        """Stop admitting work; in-flight cells keep running."""
        self._draining = True

    async def shutdown(self) -> None:
        """Drain-then-exit: finish admitted cells, then close everything.

        Waits up to ``drain_grace`` for the admitted count to reach
        zero; cells still running after that are abandoned to their own
        worker-side deadlines (their results, if any, still land in the
        cache/journal via the completion callbacks that remain alive
        until the loop stops).
        """
        self.begin_drain()
        deadline = self._clock() + self.config.drain_grace
        while self._active > 0 and self._clock() < deadline:
            await asyncio.sleep(0.02)
        if self._health_task is not None:
            self._health_task.cancel()
            self._health_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        io = self._io
        if io is not None:
            # Flush pending journal/cache writes before releasing the
            # owner locks; clear the handle first so a late request
            # degrades to inline I/O instead of a scheduling error.
            self._io = None
            await asyncio.get_running_loop().run_in_executor(
                None, lambda: io.shutdown(wait=True)
            )
        self._sessions.close()

    # ------------------------------------------------------------------
    # pool management

    async def _ensure_pool(self) -> ProcessPoolExecutor:
        assert self._pool_lock is not None
        async with self._pool_lock:
            if self._pool is None:
                self._pool = self._make_pool()
                self._pool_gate = asyncio.Semaphore(self._pool_workers)
            return self._pool

    async def _note_pool_broken(self, broken: ProcessPoolExecutor) -> None:
        """Rebuild a crashed pool exactly once, degrading past budget.

        Many requests observe the same ``BrokenProcessPool`` at once;
        the identity check under the lock makes the first one rebuild
        and the rest adopt the replacement.
        """
        assert self._pool_lock is not None
        async with self._pool_lock:
            if self._pool is not broken:
                return  # someone else already rebuilt
            broken.shutdown(wait=False, cancel_futures=True)
            self._rebuilds += 1
            self.stats["pool_rebuilds"] += 1
            if self._rebuilds > self.config.max_pool_rebuilds:
                self._pool_workers = max(1, self._pool_workers // 2)
                self.degraded = True
            self._pool = self._make_pool()
            # A fresh gate sized to the (possibly degraded) pool; cells
            # still blocked on the old gate drain as its holders finish.
            self._pool_gate = asyncio.Semaphore(self._pool_workers)

    @staticmethod
    def _pool_looks_alive(pool: ProcessPoolExecutor) -> bool:
        """Best-effort liveness check on the pool's worker processes.

        Inspects the executor's (private) process table; an empty or
        missing table means workers haven't spawned yet — not evidence
        of death — so the benefit of the doubt goes to the pool.  Only
        a table whose every process is dead reads as broken.
        """
        processes = getattr(pool, "_processes", None)
        if not processes:
            return True
        return any(proc.is_alive() for proc in processes.values())

    async def _health_loop(self) -> None:
        """Detect silently dead pools between requests and rebuild.

        The probe only decides "broken" on hard evidence: a
        ``BrokenProcessPool``/``RuntimeError`` from submission, or a
        probe timeout on a pool whose worker processes are all dead.  A
        timeout alone proves nothing — with every worker busy on long
        cells the probe just sits in the queue — so a loaded-but-alive
        pool is never torn down (which would cancel queued admitted
        cells and burn the degradation budget on phantom failures).
        Probes are skipped outright while cells are in flight: busy
        traffic will surface a genuinely broken pool on its own.
        """
        while not self._draining:
            await asyncio.sleep(self.config.health_interval)
            pool = self._pool
            if pool is None:
                continue
            if self._active > 0:
                continue
            loop = asyncio.get_running_loop()
            try:
                probe_future: PoolFuture = pool.submit(_probe)
            except (BrokenProcessPool, RuntimeError):
                await self._note_pool_broken(pool)
                continue
            try:
                await asyncio.wait_for(
                    asyncio.wrap_future(probe_future, loop=loop),
                    timeout=max(self.config.health_interval, 1.0),
                )
            except asyncio.TimeoutError:
                # Inconclusive: a submission may have raced in ahead of
                # the probe.  Rebuild only if the workers are truly dead.
                probe_future.cancel()
                if not self._pool_looks_alive(pool):
                    await self._note_pool_broken(pool)
            except (BrokenProcessPool, RuntimeError):
                await self._note_pool_broken(pool)

    # ------------------------------------------------------------------
    # connection handling

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
        record: Dict[str, Any],
    ) -> None:
        frame = encode_frame(record)
        async with lock:
            writer.write(frame)
            await writer.drain()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        tasks: Set[asyncio.Task] = set()
        try:
            while True:
                try:
                    line = await asyncio.wait_for(
                        reader.readline(), timeout=self.config.idle_timeout
                    )
                except asyncio.TimeoutError:
                    # Idle (or slow-loris) connection: close once nothing
                    # is in flight for it; keep serving pending replies.
                    if not tasks:
                        break
                    continue
                except (ValueError, asyncio.LimitOverrunError):
                    # readline() overran the stream limit: an oversized
                    # frame.  The stream is beyond resync; answer
                    # structurally and close.
                    self.stats["rejected_oversized"] += 1
                    await self._send(
                        writer,
                        write_lock,
                        error_response(
                            None,
                            ERROR_OVERSIZED,
                            f"frame exceeds {MAX_FRAME_BYTES} bytes",
                            degraded=self.degraded,
                        ),
                    )
                    break
                if not line:
                    break  # clean EOF
                if not line.strip():
                    continue
                task = asyncio.create_task(
                    self._handle_frame(line, writer, write_lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (ConnectionError, BrokenPipeError):
            self.stats["disconnects"] += 1
        except asyncio.CancelledError:
            # Server shutdown cancels connection handlers; close quietly
            # (the task is ending either way — no need to re-raise).
            pass
        finally:
            for task in tasks:
                task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError, asyncio.CancelledError):
                self.stats["disconnects"] += 1

    async def _handle_frame(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        try:
            response = await self._respond_to(line)
        except asyncio.CancelledError:
            raise
        except Exception as error:  # noqa: BLE001 - the handler must survive
            # A handler bug must fail the request, never the server.
            self.stats["failed"] += 1
            response = error_response(
                None, ERROR_FAILED, f"internal error: {error}", degraded=self.degraded
            )
        try:
            await self._send(writer, write_lock, response)
        except (ConnectionError, BrokenPipeError):
            self.stats["disconnects"] += 1

    # ------------------------------------------------------------------
    # request execution

    async def _respond_to(self, line: bytes) -> Dict[str, Any]:
        try:
            frame = decode_frame(line)
        except ProtocolError as error:
            self.stats["rejected_malformed"] += 1
            return error_response(
                None, ERROR_MALFORMED, str(error), degraded=self.degraded
            )
        request_id = frame["id"]
        op = frame["op"]
        if op == OP_PING:
            return {
                "format": PROTOCOL_VERSION,
                "id": request_id,
                "ok": True,
                "status": "pong",
                "degraded": self.degraded,
            }
        if op == OP_STATS:
            return {
                "format": PROTOCOL_VERSION,
                "id": request_id,
                "ok": True,
                "status": "stats",
                "degraded": self.degraded,
                "stats": dict(self.stats),
                "active": self._active,
                "draining": self._draining,
                "workers": self._pool_workers,
                "sessions": self._sessions.open_count(),
            }
        return await self._respond_submit(frame, request_id)

    def _parse_submit(self, frame: Dict[str, Any]) -> SubmitRequest:
        session = frame.get("session", DEFAULT_SESSION)
        if not valid_session_name(session):
            raise ProtocolError(f"invalid session name {session!r}")
        deadline = frame.get("deadline", None)
        if deadline is not None:
            if not isinstance(deadline, (int, float)) or deadline <= 0:
                raise ProtocolError(f"deadline must be positive, got {deadline!r}")
            deadline = float(deadline)
        cell = decode_cell(frame.get("cell"))
        return SubmitRequest(
            cell=cell,
            session=session,
            request_id=frame["id"],
            deadline=deadline if deadline is not None else self.config.default_deadline,
        )

    async def _respond_submit(
        self, frame: Dict[str, Any], request_id: str
    ) -> Dict[str, Any]:
        if self._draining:
            self.stats["rejected_shutdown"] += 1
            return error_response(
                request_id,
                ERROR_SHUTDOWN,
                "server is draining; resubmit elsewhere",
                degraded=self.degraded,
            )
        try:
            request = self._parse_submit(frame)
        except (ProtocolError, ReproError) as error:
            self.stats["rejected_malformed"] += 1
            return error_response(
                request_id, ERROR_MALFORMED, str(error), degraded=self.degraded
            )
        self.stats["submitted"] += 1
        started = self._clock()
        fingerprint = cell_fingerprint(request.cell)

        def done(result: CellResult, source: str) -> Dict[str, Any]:
            self.stats["completed"] += 1
            record = encode_result_payload(result)
            record.update(
                {
                    "format": PROTOCOL_VERSION,
                    "id": request.request_id,
                    "ok": True,
                    "status": "done",
                    "source": source,
                    "fingerprint": fingerprint,
                    "seconds": round(self._clock() - started, 6),
                    "degraded": self.degraded,
                }
            )
            return record

        # 1. The session journal: a restarted server resumes here.
        try:
            journal = await self._run_io(
                self._sessions.journal_for, request.session
            )
        except ConfigError as error:
            self.stats["failed"] += 1
            return error_response(
                request_id, ERROR_FAILED, str(error), degraded=self.degraded
            )
        resumed = journal.result_for(fingerprint)
        if resumed is not None:
            self.stats["journal_hits"] += 1
            return done(resumed, "journal")
        # 2. The shared content-addressed cache.
        if self._cache is not None:
            hit = await self._run_io(self._cache.get, request.cell)
            if hit is not None:
                self.stats["cache_hits"] += 1
                await self._persist(
                    journal, request.cell, fingerprint, hit, cache=False
                )
                return done(hit, "cache")
        # 3. Coalesce onto an in-flight duplicate.
        entry = self._inflight.get(fingerprint)
        if entry is not None:
            self.stats["coalesced"] += 1
            source = "coalesced"
        else:
            # 4. Bounded admission.
            if self._active >= self.config.queue_limit:
                self.stats["rejected_overloaded"] += 1
                return error_response(
                    request_id,
                    ERROR_OVERLOADED,
                    f"admission queue full ({self.config.queue_limit} in "
                    "flight); retry with backoff",
                    degraded=self.degraded,
                )
            # 5. Execute (later duplicates coalesce onto this future).
            entry = self._admit(request.cell, fingerprint, request.deadline)
            source = "run"
        try:
            result = await self._await_entry(entry, fingerprint)
        except CellTimeoutError as error:
            self.stats["deadline_expired"] += 1
            return error_response(
                request_id, ERROR_DEADLINE, str(error), degraded=self.degraded
            )
        except _ExecutionCancelled as error:
            if self._draining:
                self.stats["rejected_shutdown"] += 1
                code = ERROR_SHUTDOWN
            else:
                self.stats["failed"] += 1
                code = ERROR_FAILED
            return error_response(
                request_id, code, str(error), degraded=self.degraded
            )
        except ReproError as error:
            self.stats["failed"] += 1
            return error_response(
                request_id, ERROR_FAILED, str(error), degraded=self.degraded
            )
        await self._persist(
            journal, request.cell, fingerprint, result, cache=(source == "run")
        )
        return done(result, source)

    def _admit(
        self,
        cell: ExperimentCell,
        fingerprint: str,
        deadline: Optional[float],
    ) -> _Inflight:
        """Admit one execution; bookkeeping is tied to future settlement.

        ``_active`` and the in-flight map are released by a done
        callback on the execution future itself — not by whichever
        request task happens to finish first — so a cancelled submitter
        can never leak (or double-release) an admission slot while a
        coalesced waiter still runs.
        """
        self._active += 1
        future = asyncio.ensure_future(self._execute(cell, fingerprint, deadline))
        entry = _Inflight(future=future)
        self._inflight[fingerprint] = entry

        def settled(_: "asyncio.Future[CellResult]") -> None:
            self._active -= 1
            if self._inflight.get(fingerprint) is entry:
                self._inflight.pop(fingerprint, None)

        future.add_done_callback(settled)
        return entry

    async def _await_entry(self, entry: _Inflight, fingerprint: str) -> CellResult:
        """Await an execution as one registered waiter.

        The shield keeps one client's disconnect from cancelling an
        execution other clients coalesced onto; the *last* waiter to be
        cancelled takes the execution down with it (an unstarted pool
        future is reclaimed immediately; a cell already on a worker
        runs to completion there and lands in the cache, so the work is
        banked, not wasted).

        A ``CancelledError`` out of the shield is ambiguous: either
        *this waiter's task* is being cancelled (client gone, server
        stopping the handler — propagate, the connection is dying
        anyway) or the *execution future itself* was cancelled out from
        under a perfectly live waiter (pool rebuild with
        ``cancel_futures=True``, shutdown past ``drain_grace``).  The
        second case must become a structured error frame — re-raising
        would kill the handler task without ever answering the client,
        which accepted-and-admitted work must never do.
        """
        entry.waiters += 1
        cancelled = False
        try:
            return await asyncio.shield(entry.future)
        except asyncio.CancelledError:
            task = asyncio.current_task()
            if entry.future.cancelled() and (task is None or not task.cancelling()):
                raise _ExecutionCancelled(
                    "execution cancelled before completion "
                    "(pool rebuild or server shutdown); resubmit"
                ) from None
            cancelled = True
            raise
        finally:
            entry.waiters -= 1
            if cancelled and entry.waiters <= 0 and not entry.future.done():
                entry.future.cancel()

    async def _run_io(self, func: Callable[..., Any], *args: Any) -> Any:
        """Run blocking journal/cache I/O off the event-loop thread.

        A dedicated single-thread executor keeps per-session append
        ordering while never stalling the loop on a journal's flock +
        fsync (or a first-open load/compact) — another process holding
        a ``.lock`` sidecar would otherwise freeze every connection.
        In the shutdown tail, after the executor has been drained, the
        call degrades to inline execution: the loop is about to stop,
        and dropping the final persist would be worse than blocking.
        """
        io = self._io
        if io is None:
            return func(*args)
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(io, func, *args)
        except RuntimeError:
            if self._io is not None:
                raise
            return func(*args)

    async def _persist(
        self,
        journal: Any,
        cell: ExperimentCell,
        fingerprint: str,
        result: CellResult,
        cache: bool,
    ) -> None:
        """Bank a result durably (journal always; cache for fresh runs)."""

        def write() -> None:
            journal.record_done(cell, fingerprint, result)
            if cache and self._cache is not None:
                self._cache.put(cell, result)

        await self._run_io(write)

    def _bank_abandoned(self, pool_future: PoolFuture, cell: ExperimentCell) -> None:
        """Bank the eventual result of a pool future nobody awaits.

        An abandoned cell already running on a worker completes there
        regardless (``Future.cancel`` cannot reach it); without this,
        its result would evaporate.  The done callback runs on the
        executor's management thread — off the event loop — and puts
        the result in the shared content-addressed cache, so the next
        submission of the same cell is a cache hit instead of a re-run.
        """
        if self._cache is None:
            return
        cache = self._cache

        def bank(future: PoolFuture) -> None:
            if future.cancelled() or future.exception() is not None:
                return
            with contextlib.suppress(Exception):
                cache.put(cell, future.result())

        pool_future.add_done_callback(bank)

    async def _execute(
        self,
        cell: ExperimentCell,
        fingerprint: str,
        deadline: Optional[float],
    ) -> CellResult:
        """Run one cell on the pool, retrying across worker loss.

        Submission is throttled by ``_pool_gate``, a semaphore sized to
        the worker count: the pool never holds more cells than it can
        actually execute, so queueing happens here in asyncio-land —
        uncharged against the deadline, and instantly reclaimed on
        cancellation.  (``ProcessPoolExecutor`` marks a future running
        once it enters its bounded call queue, *before* a worker picks
        it up, so an ungated pool cannot tell "queued behind a slow
        cell" from "executing" — and the parent-side backstop would
        misfire on merely-queued cells.)  Past the gate, a cell is on a
        worker at once: the worker-side :class:`CellDeadline` and the
        parent-side ``deadline + grace`` backstop start together, and a
        backstop expiry is hard evidence of a wedged worker — the pool
        is rebuilt on the spot to reclaim it.
        """
        loop = asyncio.get_running_loop()
        attempt = 0
        while True:
            pool = await self._ensure_pool()
            gate = self._pool_gate
            assert gate is not None
            async with gate:
                pool_future: PoolFuture = pool.submit(
                    _execute_one, cell, deadline
                )
                wrapped = asyncio.wrap_future(pool_future, loop=loop)
                try:
                    if deadline is not None:
                        return await asyncio.wait_for(
                            wrapped, timeout=deadline + DEADLINE_GRACE
                        )
                    return await wrapped
                except asyncio.TimeoutError:
                    # The worker failed to enforce its own budget
                    # (wedged in a C call); answer the client now,
                    # rebuild the pool to reclaim the wedged worker,
                    # and bank the result if the cell ever finishes.
                    pool_future.cancel()
                    self._bank_abandoned(pool_future, cell)
                    await self._note_pool_broken(pool)
                    raise CellTimeoutError(
                        f"cell {cell.describe()} missed its {deadline:.6g}s "
                        "deadline (worker unresponsive)"
                    ) from None
                except BrokenProcessPool:
                    await self._note_pool_broken(pool)
                    attempt += 1
                    if attempt > self.config.max_retries:
                        raise
                except asyncio.CancelledError:
                    # Last waiter gone: the cell is already on a worker
                    # (the gate saw to that), so it finishes there and
                    # its result is banked in the cache.
                    pool_future.cancel()
                    self._bank_abandoned(pool_future, cell)
                    raise
            # Worker-loss retry: back off outside the gate (the slot
            # belongs to the rebuilt pool's fresh gate).
            delay = self._retry_policy.retry_delay(fingerprint, attempt)
            if delay > 0:
                await asyncio.sleep(delay)
