"""Command-line entry points: ``twl-repro serve`` and ``twl-repro loadgen``.

``serve`` runs a :class:`~repro.serve.server.CampaignServer` in the
foreground until SIGTERM/SIGINT, which triggers drain-then-exit; its
``--state-dir`` is the durable root a killed server is restarted on to
resume every session.  ``loadgen`` points the chaos harness at a
running server and exits non-zero when the acceptance contract breaks
(server dead, conflicting responses, or — with ``--verify`` —
any completed response not bit-identical to serial execution).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import List, Optional, Sequence

from .loadgen import Address, default_grid, run_loadgen, verify_bit_identity
from .server import CampaignServer, ServerConfig

__all__ = ["serve_main", "loadgen_main", "parse_address"]


def parse_address(value: str) -> Address:
    """``unix:/path`` or ``host:port`` → an :data:`Address`."""
    if value.startswith("unix:"):
        return ("unix", value[len("unix:"):])
    host, _, port = value.rpartition(":")
    if not host or not port.isdigit():
        raise argparse.ArgumentTypeError(
            f"address {value!r} is neither unix:/path nor host:port"
        )
    return ("tcp", host, int(port))


def _serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="twl-repro serve",
        description="Run the resilient campaign server (see docs/serving.md).",
    )
    parser.add_argument("--state-dir", required=True,
                        help="durable root: per-session journals + shared cache")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (0 = ephemeral, printed at startup)")
    parser.add_argument("--unix", default=None, metavar="PATH",
                        help="serve on a UNIX socket instead of TCP")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--queue-limit", type=int, default=16)
    parser.add_argument("--default-deadline", type=float, default=None)
    parser.add_argument("--retries", type=int, default=2,
                        help="worker-loss retries per request")
    parser.add_argument("--max-pool-rebuilds", type=int, default=2)
    parser.add_argument("--health-interval", type=float, default=5.0)
    parser.add_argument("--idle-timeout", type=float, default=60.0)
    parser.add_argument("--drain-grace", type=float, default=30.0)
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the shared content-addressed cache")
    return parser


async def _serve(config: ServerConfig) -> int:
    server = CampaignServer(config)
    await server.start()
    server.install_signal_handlers()
    print(f"serving on {server.address}", file=sys.stderr, flush=True)
    await server.serve_forever()
    # serve_forever returns once shutdown() closed the listener.
    print("drained; exiting", file=sys.stderr, flush=True)
    return 0


def serve_main(argv: Optional[Sequence[str]] = None) -> int:
    args = _serve_parser().parse_args(argv)
    config = ServerConfig(
        state_dir=args.state_dir,
        host=args.host,
        port=args.port,
        unix_path=args.unix,
        workers=args.workers,
        queue_limit=args.queue_limit,
        default_deadline=args.default_deadline,
        max_retries=args.retries,
        max_pool_rebuilds=args.max_pool_rebuilds,
        health_interval=args.health_interval,
        idle_timeout=args.idle_timeout,
        drain_grace=args.drain_grace,
        cache=not args.no_cache,
    )
    return asyncio.run(_serve(config))


def _loadgen_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="twl-repro loadgen",
        description="Chaos load generator for a running campaign server.",
    )
    parser.add_argument("--connect", required=True, type=parse_address,
                        metavar="ADDR", help="unix:/path or host:port")
    parser.add_argument("--clients", type=int, default=16)
    parser.add_argument("--actions", type=int, default=10,
                        help="actions per client")
    parser.add_argument("--seed", type=int, default=2017)
    parser.add_argument("--session", default="loadgen")
    parser.add_argument("--deadline", type=float, default=None,
                        help="per-request deadline forwarded to the server")
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="client-side response timeout")
    parser.add_argument("--no-chaos", action="store_true",
                        help="submissions only; no fault actions")
    parser.add_argument("--grid-seeds", type=int, default=2,
                        help="seeds per scheme×attack in the submitted grid")
    parser.add_argument("--verify", action="store_true",
                        help="re-run completed cells serially and "
                             "require bit-identical payloads")
    parser.add_argument("--json", action="store_true",
                        help="emit the report as JSON on stdout")
    return parser


def loadgen_main(argv: Optional[Sequence[str]] = None) -> int:
    args = _loadgen_parser().parse_args(argv)
    cells = default_grid(args.grid_seeds)
    report = asyncio.run(
        run_loadgen(
            args.connect,
            cells=cells,
            clients=args.clients,
            actions=args.actions,
            seed=args.seed,
            chaos=not args.no_chaos,
            session=args.session,
            deadline=args.deadline,
            timeout=args.timeout,
        )
    )
    mismatches: List[str] = []
    if args.verify and report.completed:
        mismatches = verify_bit_identity(report.completed, cells)
    if args.json:
        print(json.dumps({
            "completed": sorted(report.completed),
            "counts": report.counts,
            "server_alive": report.server_alive,
            "conflicts": report.conflicts,
            "mismatches": mismatches,
        }, sort_keys=True))
    else:
        print(report.summary(), file=sys.stderr, flush=True)
        if mismatches:
            print(f"BIT-IDENTITY MISMATCH: {mismatches}", file=sys.stderr)
    failed = (not report.server_alive) or report.conflicts or mismatches
    return 1 if failed else 0
