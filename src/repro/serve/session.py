"""Per-session durable state for the campaign server.

Every submission names a *session* — a client-chosen label scoping its
durable progress.  Each session owns one exclusively-locked
:class:`~repro.exec.checkpoint.CheckpointJournal` under the server's
state directory (``<state_dir>/sessions/<name>.jsonl``): results are
journaled as they complete, so a server killed mid-campaign and
restarted on the same state directory serves every already-completed
cell of every session from its journal — bit-identically, by the
result-codec identity contract the journal shares with the cache.

The ``exclusive=True`` owner lock (PR 10's journal hardening) is what
makes per-session files safe under the server's concurrency model:
one live server owns a session's journal; a second server pointed at
the same state directory fails fast on that session instead of
interleaving appends, while a lock left by a SIGKILLed server is
detected as stale (dead pid) and broken on restart — the resume path.
"""

from __future__ import annotations

import os
import re
import threading
from typing import Dict, Optional

from ..exec.checkpoint import CheckpointJournal

__all__ = ["SessionStore", "valid_session_name", "DEFAULT_SESSION"]

#: Session used when a submit frame names none.
DEFAULT_SESSION = "default"

#: Session names are path components: one conservative token, no
#: separators, no dotfiles — a hostile name must never escape the
#: sessions directory or collide with journal sidecar suffixes.
_SESSION_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


def valid_session_name(name: str) -> bool:
    """Whether ``name`` is an acceptable session label."""
    return isinstance(name, str) and bool(_SESSION_NAME.match(name))


class SessionStore:
    """Lazily-opened, exclusively-owned per-session journals.

    Thread-safe: the server opens sessions and appends records on its
    dedicated journal-I/O thread (blocking flock/fsync must not stall
    the event loop), while stats queries read from the loop thread; a
    plain lock guards the open-once map.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        self._journals: Dict[str, CheckpointJournal] = {}
        self._lock = threading.Lock()

    def journal_path(self, session: str) -> str:
        return os.path.join(self.root, f"{session}.jsonl")

    def journal_for(self, session: str) -> CheckpointJournal:
        """The session's journal, opened (and owner-locked) on first use.

        Raises :class:`~repro.errors.ConfigError` when another live
        process owns the session — surfaced to the client as a
        structured rejection, never a crash.
        """
        with self._lock:
            journal = self._journals.get(session)
            if journal is None:
                journal = CheckpointJournal(
                    self.journal_path(session), exclusive=True
                )
                self._journals[session] = journal
            return journal

    def open_count(self) -> int:
        with self._lock:
            return len(self._journals)

    def resumed_total(self) -> int:
        """Records served from disk across all open sessions."""
        with self._lock:
            return sum(journal.resumed for journal in self._journals.values())

    def close(self, session: Optional[str] = None) -> None:
        """Release owner locks — one session, or all of them."""
        with self._lock:
            if session is not None:
                journal = self._journals.pop(session, None)
                if journal is not None:
                    journal.close()
                return
            for journal in self._journals.values():
                journal.close()
            self._journals.clear()
