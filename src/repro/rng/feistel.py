"""Feistel-network random number generator.

A Feistel network over ``bits`` bits splits a word into two halves and runs
``rounds`` rounds of::

    L' = R
    R' = L xor F(R, K_i)

Because the construction is an involution-friendly permutation over
``[0, 2**bits)``, it serves two roles in this reproduction:

* as TWL's hardware RNG (counter mode: encrypt an incrementing counter),
  exactly the <128-gate design the paper adopts from Start-Gap [10];
* as a cheap keyed *address permutation* (Start-Gap's randomized layout and
  Security Refresh both need one).

The round function is a small key-dependent S-box style mixer chosen to be
implementable with a handful of gates while passing the statistical checks
in ``tests/test_rng_feistel.py``.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

import numpy as np

from ..errors import ConfigError

_DEFAULT_ROUNDS = 4

#: 4-bit S-box used by the default round function (PRESENT cipher S-box,
#: chosen because it is standard, tiny and maximally nonlinear for 4 bits).
_SBOX4 = (0xC, 0x5, 0x6, 0xB, 0x9, 0x0, 0xA, 0xD, 0x3, 0xE, 0xF, 0x8, 0x4, 0x7, 0x1, 0x2)

#: The same S-box as a numpy lookup table for the vectorized data path.
_SBOX4_NP = np.array(_SBOX4, dtype=np.int64)


def _derive_round_keys(seed: int, rounds: int, half_bits: int) -> List[int]:
    """Derive ``rounds`` round keys of ``half_bits`` bits from a seed.

    Uses a splitmix-style mixer so nearby seeds give unrelated keys.
    """
    keys = []
    state = (seed * 0x9E3779B97F4A7C15 + 0x632BE59BD9B4E019) & 0xFFFFFFFFFFFFFFFF
    mask = (1 << half_bits) - 1
    for _ in range(rounds):
        state = (state + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
        z = state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
        z ^= z >> 31
        keys.append(z & mask)
    return keys


class FeistelNetwork:
    """A keyed Feistel permutation over ``[0, 2**bits)``.

    Parameters
    ----------
    bits:
        Total block width; must be even so the halves are equal.  The
        paper's RNG uses ``bits=8``.
    seed:
        Key material; round keys are derived deterministically from it.
    rounds:
        Number of Feistel rounds (4 by default — enough for statistical
        quality at these tiny widths while staying under the paper's
        128-gate budget, see ``repro.hwcost``).
    keys:
        Explicit round keys, overriding derivation from ``seed``.
    """

    def __init__(
        self,
        bits: int = 8,
        seed: int = 0,
        rounds: int = _DEFAULT_ROUNDS,
        keys: Optional[Sequence[int]] = None,
    ) -> None:
        if bits < 2 or bits % 2 != 0:
            raise ConfigError(f"Feistel width must be even and >= 2, got {bits}")
        if rounds < 1:
            raise ConfigError(f"Feistel needs at least one round, got {rounds}")
        self.bits = bits
        self.rounds = rounds
        self.half_bits = bits // 2
        self._half_mask = (1 << self.half_bits) - 1
        if keys is not None:
            if len(keys) != rounds:
                raise ConfigError(
                    f"expected {rounds} round keys, got {len(keys)}"
                )
            bad = [k for k in keys if not 0 <= k <= self._half_mask]
            if bad:
                raise ConfigError(f"round keys out of range: {bad}")
            self.keys = list(keys)
        else:
            self.keys = _derive_round_keys(seed, rounds, self.half_bits)

    @property
    def period(self) -> int:
        """Size of the permuted domain, ``2**bits``."""
        return 1 << self.bits

    def _round_function(self, value: int, key: int) -> int:
        """Key-dependent mixing of one half-word."""
        mixed = (value + key) & self._half_mask
        out = 0
        # Apply the 4-bit S-box nibble-wise (half widths are <= 32 bits).
        shift = 0
        while shift < self.half_bits:
            nibble = (mixed >> shift) & 0xF
            width = min(4, self.half_bits - shift)
            out |= (_SBOX4[nibble] & ((1 << width) - 1)) << shift
            shift += 4
        # Rotate by one so adjacent rounds diffuse across nibbles.
        out = ((out << 1) | (out >> (self.half_bits - 1))) & self._half_mask
        return out ^ key

    def encrypt(self, value: int) -> int:
        """Apply the permutation to ``value``."""
        self._check_domain(value)
        left = value >> self.half_bits
        right = value & self._half_mask
        for key in self.keys:
            left, right = right, left ^ self._round_function(right, key)
        return (left << self.half_bits) | right

    def _round_function_array(self, values: np.ndarray, key: int) -> np.ndarray:
        """Vectorized :meth:`_round_function` (bit-identical per element)."""
        mixed = (values + key) & self._half_mask
        out = np.zeros_like(mixed)
        shift = 0
        while shift < self.half_bits:
            nibble = (mixed >> shift) & 0xF
            width = min(4, self.half_bits - shift)
            out |= (_SBOX4_NP[nibble] & ((1 << width) - 1)) << shift
            shift += 4
        out = ((out << 1) | (out >> (self.half_bits - 1))) & self._half_mask
        return out ^ key

    def encrypt_array(self, values: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`encrypt` over an ``int64`` array.

        Element-for-element identical to the scalar path (enforced by
        ``tests/test_rng_feistel.py``) — this is what makes the batched
        TWL/Start-Gap data paths bit-identical to serial runs while
        skipping the per-call Python cost of the scalar rounds.
        """
        values = np.asarray(values, dtype=np.int64)
        if values.size and (
            int(values.min()) < 0 or int(values.max()) >= self.period
        ):
            bad = int(values[(values < 0) | (values >= self.period)][0])
            raise ValueError(
                f"value {bad} outside Feistel domain [0, {self.period})"
            )
        left = values >> self.half_bits
        right = values & self._half_mask
        for key in self.keys:
            left, right = right, left ^ self._round_function_array(right, key)
        return (left << self.half_bits) | right

    def decrypt(self, value: int) -> int:
        """Invert the permutation."""
        self._check_domain(value)
        left = value >> self.half_bits
        right = value & self._half_mask
        for key in reversed(self.keys):
            left, right = right ^ self._round_function(left, key), left
        return (left << self.half_bits) | right

    def _check_domain(self, value: int) -> None:
        if not 0 <= value < self.period:
            raise ValueError(
                f"value {value} outside Feistel domain [0, {self.period})"
            )

    def permutation(self) -> List[int]:
        """The full permutation as a list (small widths only)."""
        if self.bits > 20:
            raise ConfigError("refusing to materialize a >1M-entry permutation")
        return [self.encrypt(i) for i in range(self.period)]


class FeistelRNG:
    """Counter-mode RNG built on :class:`FeistelNetwork`.

    Encrypting an incrementing counter yields a full-period sequence of
    ``bits``-wide pseudorandom words — each value appears exactly once per
    period, matching the hardware design's behaviour.  The key is rolled
    automatically at the end of each period so long runs do not repeat.
    """

    #: Widths up to this many bits materialize the epoch's full word
    #: table (one vectorized pass) so ``next_word`` is a table read.
    _TABLE_BITS_MAX = 16

    def __init__(self, bits: int = 8, seed: int = 0, rounds: int = _DEFAULT_ROUNDS) -> None:
        self.bits = bits
        self._seed = seed
        self._epoch = 0
        self._counter = 0
        self._network = FeistelNetwork(bits=bits, seed=seed, rounds=rounds)
        self._rounds = rounds
        # Per-epoch word table: words[i] == network.encrypt(i).  Built
        # lazily on the first draw of an epoch and discarded on key
        # roll; position-independent, so external pokes of ``_counter``
        # (the soft-error fault surface) need no invalidation.
        self._words: Optional[np.ndarray] = None

    @property
    def period(self) -> int:
        """Values per key epoch."""
        return self._network.period

    def snapshot(self) -> dict:
        """The architectural registers: epoch and in-epoch counter.

        The per-epoch word table and the round-key network are pure
        functions of ``(seed, epoch)`` and are rebuilt on restore.
        """
        return {"counter": self._counter, "epoch": self._epoch}

    def restore(self, state: dict) -> None:
        """Restore a state captured by :meth:`snapshot`."""
        epoch = int(state["epoch"])
        self._epoch = epoch
        self._counter = int(state["counter"])
        # Epoch 0's key roll formula degenerates to the construction seed,
        # so one expression rebuilds the network for any epoch.
        self._network = FeistelNetwork(
            bits=self.bits,
            seed=self._seed + 0x10001 * epoch,
            rounds=self._rounds,
        )
        self._words = None

    def next_word(self) -> int:
        """Next pseudorandom word in ``[0, 2**bits)``."""
        if self.bits <= self._TABLE_BITS_MAX:
            if self._words is None:
                self._words = self._network.encrypt_array(  # twl: allow(TWL008) reason=lazy word table derived from (_seed, _epoch), which the snapshot captures
                    np.arange(self._network.period, dtype=np.int64)
                )
            value = int(self._words[self._counter])
        else:
            value = self._network.encrypt(self._counter)
        self._counter += 1
        if self._counter == self._network.period:
            self._counter = 0
            self._epoch += 1
            self._network = FeistelNetwork(  # twl: allow(TWL008) reason=epoch-keyed permutation rebuilt from (_seed, _epoch), which the snapshot captures
                bits=self.bits,
                seed=self._seed + 0x10001 * self._epoch,
                rounds=self._rounds,
            )
            self._words = None
        return value

    def take_words(self, count: int) -> np.ndarray:
        """The next ``count`` words as one array (batched draw).

        Bit-identical to ``count`` calls of :meth:`next_word`, including
        key rolls at epoch boundaries mid-draw.  Table-backed widths
        gather straight from the epoch word table; wider RNGs fall back
        to scalar draws.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        out = np.empty(count, dtype=np.int64)
        if self.bits > self._TABLE_BITS_MAX:
            for i in range(count):
                out[i] = self.next_word()
            return out
        filled = 0
        while filled < count:
            if self._words is None:
                self._words = self._network.encrypt_array(
                    np.arange(self._network.period, dtype=np.int64)
                )
            take = min(count - filled, self._network.period - self._counter)
            out[filled : filled + take] = self._words[
                self._counter : self._counter + take
            ]
            self._counter += take
            filled += take
            if self._counter == self._network.period:
                self._counter = 0
                self._epoch += 1
                self._network = FeistelNetwork(
                    bits=self.bits,
                    seed=self._seed + 0x10001 * self._epoch,
                    rounds=self._rounds,
                )
                self._words = None
        return out

    def next_unit(self) -> float:
        """Next value mapped to [0, 1): ``word / 2**bits``."""
        return self.next_word() / self.period

    def next_below(self, bound: int) -> int:
        """Next value reduced modulo ``bound`` (bound <= period)."""
        if not 0 < bound <= self.period:
            raise ValueError(f"bound must be in (0, {self.period}], got {bound}")
        return self.next_word() % bound

    def iter_words(self, count: int) -> Iterator[int]:
        """Yield ``count`` consecutive words."""
        for _ in range(count):
            yield self.next_word()
