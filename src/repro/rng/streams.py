"""Deterministic seed derivation for independent random streams.

Every stochastic component of the reproduction (endurance sampling, trace
generation, each wear-leveling scheme's internal RNG, attack address
choices) draws from its own stream derived from one experiment seed, so a
single integer reproduces an entire experiment bit-for-bit while streams
stay statistically independent.
"""

from __future__ import annotations

import hashlib
from typing import Union

import numpy as np

Label = Union[str, int]


def derive_seed(root_seed: int, *labels: Label) -> int:
    """Derive a 63-bit child seed from ``root_seed`` and a label path.

    Uses BLAKE2b over the canonical label path, so derivation is stable
    across Python versions and platforms (unlike ``hash()``).

    >>> derive_seed(2017, "trace", "vips") == derive_seed(2017, "trace", "vips")
    True
    >>> derive_seed(2017, "a") != derive_seed(2017, "b")
    True
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(str(int(root_seed)).encode())
    for label in labels:
        h.update(b"/")
        h.update(str(label).encode())
    return int.from_bytes(h.digest(), "big") & 0x7FFF_FFFF_FFFF_FFFF


def make_generator(root_seed: int, *labels: Label) -> np.random.Generator:
    """A numpy Generator seeded from a derived stream."""
    return np.random.default_rng(derive_seed(root_seed, *labels))


class SeedSequenceFactory:
    """Factory producing named, independent generators from one root seed.

    >>> factory = SeedSequenceFactory(2017)
    >>> g1 = factory.generator("attack", "scan")
    >>> g2 = factory.generator("attack", "scan")
    >>> float(g1.random()) == float(g2.random())
    True
    """

    def __init__(self, root_seed: int) -> None:
        self.root_seed = int(root_seed)

    def seed(self, *labels: Label) -> int:
        """Derived integer seed for the given label path."""
        return derive_seed(self.root_seed, *labels)

    def generator(self, *labels: Label) -> np.random.Generator:
        """Derived numpy generator for the given label path."""
        return make_generator(self.root_seed, *labels)
