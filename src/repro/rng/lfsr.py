"""Galois linear-feedback shift registers.

Security Refresh [12] generates its per-region random keys from a hardware
LFSR; we model the same primitive here.  Tap masks below give maximal
period (``2**width - 1``) for the listed widths.
"""

from __future__ import annotations

from typing import Dict, Iterator

from ..errors import ConfigError

#: Maximal-length tap masks (Galois form) for common widths.
MAXIMAL_TAPS: Dict[int, int] = {
    4: 0x9,
    5: 0x12,
    6: 0x21,
    7: 0x41,
    8: 0x8E,
    9: 0x108,
    10: 0x204,
    11: 0x402,
    12: 0x829,
    13: 0x100D,
    14: 0x2015,
    15: 0x4001,
    16: 0x8016,
    20: 0x80004,
    24: 0x80000D,
    31: 0x40000004,
    32: 0x80000057,
}


class GaloisLFSR:
    """A Galois LFSR over ``width`` bits.

    The state never reaches zero (the all-zero state is a fixed point of
    the recurrence and is rejected as a seed), so the output cycles through
    ``2**width - 1`` distinct values for maximal tap masks.
    """

    def __init__(self, width: int, seed: int = 1, taps: int = 0) -> None:
        if width < 2:
            raise ConfigError(f"LFSR width must be >= 2, got {width}")
        if taps == 0:
            if width not in MAXIMAL_TAPS:
                raise ConfigError(
                    f"no built-in maximal taps for width {width}; "
                    f"supply taps= explicitly (known: {sorted(MAXIMAL_TAPS)})"
                )
            taps = MAXIMAL_TAPS[width]
        self.width = width
        self.taps = taps
        self._mask = (1 << width) - 1
        seed &= self._mask
        if seed == 0:
            raise ConfigError("LFSR seed must be non-zero")
        self.state = seed

    @property
    def period(self) -> int:
        """Sequence period for a maximal tap mask."""
        return (1 << self.width) - 1

    def snapshot(self) -> dict:
        """The full register state (one ``width``-bit word)."""
        return {"state": self.state}

    def restore(self, state: dict) -> None:
        """Restore a state captured by :meth:`snapshot`."""
        self.state = int(state["state"])

    def step(self) -> int:
        """Advance one step and return the new state."""
        lsb = self.state & 1
        self.state >>= 1
        if lsb:
            self.state ^= self.taps
        return self.state

    def next_bit(self) -> int:
        """Advance one step and return the output bit."""
        return self.step() & 1

    def next_word(self, bits: int) -> int:
        """Collect ``bits`` output bits into a word (MSB first)."""
        if bits < 1:
            raise ValueError("need at least one bit")
        word = 0
        for _ in range(bits):
            word = (word << 1) | self.next_bit()
        return word

    def iter_states(self, count: int) -> Iterator[int]:
        """Yield the next ``count`` states."""
        for _ in range(count):
            yield self.step()
