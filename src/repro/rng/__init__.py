"""Random-number generation substrates.

The paper's TWL engine uses an 8-bit-wide Feistel network as its hardware
random number generator ("an 8-bit width Feistel Network is adopted to
generate random numbers, which costs less than 128 gates [10]").  This
subpackage implements that network bit-exactly as a keyed permutation plus
a counter-mode RNG on top of it, together with the simpler LFSR/xorshift
generators used by the baselines and deterministic seed-stream helpers
used everywhere in the simulator.
"""

from .feistel import FeistelNetwork, FeistelRNG
from .lfsr import GaloisLFSR, MAXIMAL_TAPS
from .xorshift import XorShift32
from .streams import derive_seed, make_generator, SeedSequenceFactory

__all__ = [
    "FeistelNetwork",
    "FeistelRNG",
    "GaloisLFSR",
    "MAXIMAL_TAPS",
    "XorShift32",
    "derive_seed",
    "make_generator",
    "SeedSequenceFactory",
]
