"""A 32-bit xorshift generator.

Used where the simulator needs a very cheap deterministic PRNG that is
independent of numpy (e.g. inside per-write hot loops of baseline
schemes).  Marsaglia's (13, 17, 5) triple; period ``2**32 - 1``.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError

_MASK32 = 0xFFFFFFFF


class XorShift32:
    """Marsaglia xorshift32 PRNG."""

    def __init__(self, seed: int = 0x1234_5678) -> None:
        seed &= _MASK32
        if seed == 0:
            raise ConfigError("xorshift seed must be non-zero")
        self.state = seed

    def next_word(self) -> int:
        """Next 32-bit word."""
        x = self.state
        x ^= (x << 13) & _MASK32
        x ^= x >> 17
        x ^= (x << 5) & _MASK32
        self.state = x
        return x

    def next_unit(self) -> float:
        """Next float in [0, 1)."""
        return self.next_word() / 4294967296.0

    def next_below(self, bound: int) -> int:
        """Next integer in [0, bound)."""
        if bound <= 0:
            raise ValueError(f"bound must be positive, got {bound}")
        return self.next_word() % bound

    def snapshot(self) -> dict:
        """The full register state (one 32-bit word)."""
        return {"state": self.state}

    def restore(self, state: dict) -> None:
        """Restore a state captured by :meth:`snapshot`."""
        self.state = int(state["state"])

    def next_words(self, count: int) -> np.ndarray:
        """The next ``count`` 32-bit words, as an ``int64`` array.

        The xorshift recurrence is inherently sequential, so this is the
        same draw-by-draw loop :meth:`next_word` runs — just without a
        method call per draw.  ``next_words(k)`` leaves the generator in
        exactly the state ``k`` :meth:`next_word` calls would, which is
        what lets batched scheme paths pre-draw a batch's decisions and
        stay bit-identical to the serial path.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        out = np.empty(count, dtype=np.int64)
        x = self.state
        for index in range(count):
            x ^= (x << 13) & _MASK32
            x ^= x >> 17
            x ^= (x << 5) & _MASK32
            out[index] = x
        self.state = x
        return out
