"""A 32-bit xorshift generator.

Used where the simulator needs a very cheap deterministic PRNG that is
independent of numpy (e.g. inside per-write hot loops of baseline
schemes).  Marsaglia's (13, 17, 5) triple; period ``2**32 - 1``.
"""

from __future__ import annotations

from ..errors import ConfigError

_MASK32 = 0xFFFFFFFF


class XorShift32:
    """Marsaglia xorshift32 PRNG."""

    def __init__(self, seed: int = 0x1234_5678) -> None:
        seed &= _MASK32
        if seed == 0:
            raise ConfigError("xorshift seed must be non-zero")
        self.state = seed

    def next_word(self) -> int:
        """Next 32-bit word."""
        x = self.state
        x ^= (x << 13) & _MASK32
        x ^= x >> 17
        x ^= (x << 5) & _MASK32
        self.state = x
        return x

    def next_unit(self) -> float:
        """Next float in [0, 1)."""
        return self.next_word() / 4294967296.0

    def next_below(self, bound: int) -> int:
        """Next integer in [0, bound)."""
        if bound <= 0:
            raise ValueError(f"bound must be positive, got {bound}")
        return self.next_word() % bound
