"""Unit helpers and physical constants used throughout the reproduction.

The paper mixes binary sizes (32 GB PCM, 4 KB pages) with decimal
bandwidths (MBps in Table 2) and wall-clock lifetimes in years.  This
module is the single place where those conversions live.
"""

from __future__ import annotations

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

KB = 1000
MB = 1000 * KB
GB = 1000 * MB

SECONDS_PER_YEAR = 365.25 * 24 * 3600
SECONDS_PER_DAY = 24 * 3600


def mbps_to_bytes_per_second(mbps: float) -> float:
    """Convert a Table-2 style bandwidth in MBps to bytes/second.

    The paper's bandwidth figures are decimal megabytes per second.
    """
    if mbps < 0:
        raise ValueError(f"bandwidth must be non-negative, got {mbps}")
    return mbps * MB


def years_to_seconds(years: float) -> float:
    """Convert years to seconds (Julian year of 365.25 days)."""
    return years * SECONDS_PER_YEAR


def seconds_to_years(seconds: float) -> float:
    """Convert seconds to years (Julian year of 365.25 days)."""
    return seconds / SECONDS_PER_YEAR


def format_duration(seconds: float) -> str:
    """Human-readable duration, scaled to the most natural unit.

    >>> format_duration(98.0)
    '98.0 s'
    >>> format_duration(2.8 * SECONDS_PER_YEAR)
    '2.80 years'
    """
    if seconds < 0:
        raise ValueError(f"duration must be non-negative, got {seconds}")
    if seconds < 120:
        return f"{seconds:.1f} s"
    if seconds < 2 * 3600:
        return f"{seconds / 60:.1f} min"
    if seconds < 2 * SECONDS_PER_DAY:
        return f"{seconds / 3600:.1f} h"
    if seconds < 0.5 * SECONDS_PER_YEAR:
        return f"{seconds / SECONDS_PER_DAY:.1f} days"
    return f"{seconds / SECONDS_PER_YEAR:.2f} years"


def format_size(num_bytes: int) -> str:
    """Human-readable binary size string.

    >>> format_size(4096)
    '4.0 KiB'
    """
    if num_bytes < 0:
        raise ValueError(f"size must be non-negative, got {num_bytes}")
    value = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024 or unit == "TiB":
            if unit == "B":
                return f"{int(value)} B"
            return f"{value:.1f} {unit}"
        value /= 1024
    raise AssertionError("unreachable")
