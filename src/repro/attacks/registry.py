"""Attack registry: build any attack workload by name."""

from __future__ import annotations

from typing import Callable, Dict, List

from ..errors import ConfigError
from .base import AttackWorkload
from .inconsistent import InconsistentWriteAttack
from .random_attack import RandomWriteAttack
from .repeat import RepeatWriteAttack
from .scan import ScanWriteAttack

ATTACK_FACTORIES: Dict[str, Callable] = {
    "repeat": lambda n_pages, seed=0, **kw: RepeatWriteAttack(n_pages, **kw),
    "random": lambda n_pages, seed=0, **kw: RandomWriteAttack(n_pages, seed=seed, **kw),
    "scan": lambda n_pages, seed=0, **kw: ScanWriteAttack(n_pages, **kw),
    "inconsistent": lambda n_pages, seed=0, **kw: InconsistentWriteAttack(n_pages, **kw),
}


def attack_names() -> List[str]:
    """All registered attack names, in the paper's Figure-6 order."""
    return ["repeat", "random", "scan", "inconsistent"]


def make_attack(name: str, n_pages: int, seed: int = 0, **kwargs) -> AttackWorkload:
    """Instantiate attack ``name`` over an ``n_pages`` logical space."""
    try:
        factory = ATTACK_FACTORIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown attack {name!r}; known: {', '.join(sorted(ATTACK_FACTORIES))}"
        ) from None
    return factory(n_pages, seed=seed, **kwargs)
