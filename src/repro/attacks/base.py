"""Attack workload interface.

An attack is an adaptive request generator: it emits the next logical
address to write and receives the response latency of each request — the
only feedback channel the paper's threat model grants ("the attacker can
use some instructions (e.g. rdtsc()) to measure the memory response
time"; internal wear-leveling state is never exposed).
"""

from __future__ import annotations

import abc

import numpy as np

from ..errors import ConfigError


class AttackWorkload(abc.ABC):
    """Base class for adaptive attack write streams."""

    #: Registry name; subclasses override.
    name = "attack"

    def __init__(self, n_pages: int):
        if n_pages < 1:
            raise ConfigError("attack needs at least one target page")
        self.n_pages = n_pages
        self.writes_emitted = 0

    @abc.abstractmethod
    def next_write(self) -> int:
        """Logical address of the attacker's next write."""

    def next_writes(self, n: int) -> np.ndarray:
        """The next ``n`` write addresses as one array (batched protocol).

        Must emit exactly the sequence ``n`` calls of :meth:`next_write`
        would, including the ``writes_emitted`` side effect.  The base
        implementation draws scalars; attacks whose stream is closed-form
        (scan, repeat) override it with a vector expression.
        """
        if n < 0:
            raise ValueError("batch size must be non-negative")
        next_write = self.next_write
        return np.fromiter(
            (next_write() for _ in range(n)), dtype=np.int64, count=n
        )

    def snapshot(self) -> dict:
        """Full mutable state: base counter plus the subclass hook."""
        return {"attack": self._snapshot_state(), "writes_emitted": self.writes_emitted}

    def restore(self, state: dict) -> None:
        """Restore a state captured by :meth:`snapshot`."""
        self.writes_emitted = int(state["writes_emitted"])
        self._restore_state(state["attack"])

    def _snapshot_state(self) -> dict:
        """Subclass hook: attack-specific mutable state (default none)."""
        return {}

    def _restore_state(self, state: dict) -> None:
        """Subclass hook mirroring :meth:`_snapshot_state`."""

    def observe_response(self, latency_cycles: float) -> None:
        """Feed back the measured response time of the last request.

        Non-adaptive attacks ignore it; the inconsistent-write attack
        uses it to detect swap phases.
        """

    @property
    def is_adaptive(self) -> bool:
        """Whether the attack reacts to response-time feedback.

        Detected from whether :meth:`observe_response` is overridden.
        Adaptive attacks need the per-request feedback loop, so the
        batched simulation protocol degrades them to batches of one
        write; non-adaptive streams batch freely.
        """
        return type(self).observe_response is not AttackWorkload.observe_response

    def _emit(self, logical: int) -> int:
        self.writes_emitted += 1
        return logical
