"""Response-time swap detection (the attacker's side channel).

"Memory swaps will block all memory requests to ensure memory integrity,
which leads to an increase in memory response time" (Section 3.2,
footnote).  The detector learns a baseline response latency online and
flags any request whose latency exceeds the baseline by a configurable
factor — it never sees scheme internals.
"""

from __future__ import annotations

from ..errors import ConfigError


class SwapDetector:
    """Online threshold detector over response latencies."""

    def __init__(self, threshold_factor: float = 1.5, warmup: int = 8):
        if threshold_factor <= 1.0:
            raise ConfigError("threshold factor must exceed 1.0")
        if warmup < 1:
            raise ConfigError("warmup must be at least one sample")
        self.threshold_factor = threshold_factor
        self.warmup = warmup
        self._samples = 0
        self._baseline = 0.0
        self.detections = 0

    def snapshot(self) -> dict:
        """Learned baseline and counters (mid-run persistence)."""
        return {
            "baseline": self._baseline,
            "detections": self.detections,
            "samples": self._samples,
        }

    def restore(self, state: dict) -> None:
        """Restore a state captured by :meth:`snapshot`."""
        self._baseline = float(state["baseline"])
        self.detections = int(state["detections"])
        self._samples = int(state["samples"])

    def observe(self, latency_cycles: float) -> bool:
        """Record one response time; True when a swap is detected.

        The baseline tracks the *minimum* observed latency: plain writes
        dominate the stream, so the smallest latencies are unblocked
        requests, and anything threshold_factor above them was blocked.
        """
        if latency_cycles <= 0:
            raise ValueError("latency must be positive")
        if self._samples < self.warmup:
            self._samples += 1
            if self._baseline == 0.0 or latency_cycles < self._baseline:
                self._baseline = latency_cycles
            return False
        if latency_cycles < self._baseline:
            self._baseline = latency_cycles
            return False
        if latency_cycles > self._baseline * self.threshold_factor:
            self.detections += 1
            return True
        return False
