"""Wear-out attack workloads (paper Sections 3 and 5.2).

Four attack modes drive the Figure-6 evaluation:

* :class:`RepeatWriteAttack` — hammer one fixed address;
* :class:`RandomWriteAttack` — uniformly random addresses;
* :class:`ScanWriteAttack` — consecutive addresses;
* :class:`InconsistentWriteAttack` — the paper's contribution: shape the
  write distribution during prediction, detect the swap phase through
  response-time measurements, then reverse the distribution.

Attackers see only what the threat model allows: the addresses they
choose and per-request response latency (:class:`SwapDetector`).
"""

from .base import AttackWorkload
from .repeat import RepeatWriteAttack
from .random_attack import RandomWriteAttack
from .scan import ScanWriteAttack
from .inconsistent import InconsistentWriteAttack
from .detector import SwapDetector
from .registry import ATTACK_FACTORIES, make_attack, attack_names

__all__ = [
    "AttackWorkload",
    "RepeatWriteAttack",
    "RandomWriteAttack",
    "ScanWriteAttack",
    "InconsistentWriteAttack",
    "SwapDetector",
    "ATTACK_FACTORIES",
    "make_attack",
    "attack_names",
]
