"""Random write attack: uniformly random addresses.

"Random write mode: write addresses are random" (Section 5.2).  Under a
uniform stream every scheme's wear converges to its intrinsic
distribution — PV-unaware schemes die at the weakest page, PV-aware ones
can do better.
"""

from __future__ import annotations

from ..rng.streams import derive_seed
from ..rng.xorshift import XorShift32
from .base import AttackWorkload


class RandomWriteAttack(AttackWorkload):
    """Uniformly random write addresses."""

    name = "random"

    def __init__(self, n_pages: int, seed: int = 0):
        super().__init__(n_pages)
        self._rng = XorShift32((derive_seed(seed, "attack-random") % 0xFFFF_FFFE) + 1)

    def _snapshot_state(self) -> dict:
        return {"rng": self._rng.snapshot()}

    def _restore_state(self, state: dict) -> None:
        self._rng.restore(state["rng"])

    def next_write(self) -> int:
        return self._emit(self._rng.next_below(self.n_pages))
