"""The inconsistent-write attack (paper Section 3.2).

The attack exploits the consistency assumption of prediction-swap-running
wear leveling:

* **Step 1** — write a set of target pages with a monotonically
  increasing intensity staircase (``W_1 < W_k < W_N``), misleading the
  predictor into ranking the low-index targets cold and the high-index
  targets hot, while watching response times for the blocking swap phase.
* **Step 2** — the moment a swap is detected, *reverse* the staircase:
  the pages the predictor placed on the weakest (or most-worn) frames
  are now hammered hardest.  Repeat, flipping at every detected swap.

Three practical details, all within the paper's threat model (the
attacker issues arbitrary address streams and measures response times):

* **phase pacing** — one full staircase pass should span one prediction
  phase, exactly as the paper's two-step loop assumes ("Write LA_i for
  W_i times ... detect the start and end of swap phase").  The attacker
  learns the phase length online from the spacing of detected swaps and
  rescales its staircase after every flip.
* **background scan** — each pass also touches every non-target page
  once, so no page looks *less* written than the attacker's designated
  victims; defenses that refuse to displace never-written pages are
  thereby neutralized.  The victims are written *last* in the pass, so
  they are the freshest entries in any recency-based cold structure.
* **small target set** — the hammered page's traffic share after a
  reversal is independent of memory size, which is what lets the attack
  kill a full-scale 32 GB PCM in minutes once its victim sits on a weak
  frame.

When no swap is observable for ``patience`` writes (a swap phase that
moved no data produces no latency spike), the attacker flips blind —
"keep detecting" degrades to probing.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import ConfigError
from .base import AttackWorkload
from .detector import SwapDetector

#: Exponential-moving-average factor for the online phase-length estimate.
_PERIOD_EMA = 0.5


class InconsistentWriteAttack(AttackWorkload):
    """Distribution-reversing attack against prediction-based schemes."""

    name = "inconsistent"

    def __init__(
        self,
        n_pages: int,
        n_targets: Optional[int] = None,
        detector: Optional[SwapDetector] = None,
        patience: int = 20_000,
        initial_period: Optional[int] = None,
        background_scan: bool = True,
        victim_count: Optional[int] = None,
    ):
        super().__init__(n_pages)
        if n_targets is None:
            n_targets = min(64, n_pages)
        if not 1 <= n_targets <= n_pages:
            raise ConfigError(
                f"n_targets must be in [1, {n_pages}], got {n_targets}"
            )
        if patience < 1:
            raise ConfigError(f"patience must be positive, got {patience}")
        if victim_count is None:
            victim_count = max(1, n_targets // 8)
        if not 1 <= victim_count <= n_targets:
            raise ConfigError(
                f"victim_count must be in [1, {n_targets}], got {victim_count}"
            )
        self.n_targets = n_targets
        self.victim_count = victim_count
        self.background_scan = background_scan
        self.detector = detector if detector is not None else SwapDetector()
        self.patience = patience
        self.reversals = 0
        self._reversed = False
        self._period_estimate = float(initial_period or 8 * n_targets)
        self._writes_since_flip = 0
        self._flip_pending = False
        self._pass_schedule: List[int] = []
        self._build_pass()
        self._cursor = 0

    # ------------------------------------------------------------------
    # Pass construction
    # ------------------------------------------------------------------
    def _staircase_weights(self) -> List[int]:
        """Per-target write counts, scaled to fill the estimated phase.

        Ranks 1..T are scaled so one pass (staircase plus optional scan)
        spans roughly one prediction phase; the direction flag decides
        which end of the target range is hammered.
        """
        count = self.n_targets
        budget = self._period_estimate
        if self.background_scan:
            budget -= self.n_pages - count
        rank_sum = count * (count + 1) / 2
        scale = max(1.0, budget / rank_sum)
        weights = [max(1, int(round(rank * scale))) for rank in range(1, count + 1)]
        if self._reversed:
            weights.reverse()
        return weights

    def _build_pass(self) -> None:
        """Materialize one pass of the attack write sequence.

        Order within the pass: hot decoy bursts first (heaviest first),
        then the background scan over non-target pages, then the
        designated victims — written last so they are the most recent
        cold observations the defense holds.
        """
        weights = self._staircase_weights()
        order = sorted(range(self.n_targets), key=lambda i: -weights[i])
        victims = list(reversed(order[-self.victim_count:]))
        decoys = order[: self.n_targets - self.victim_count]
        schedule: List[int] = []
        for position in decoys:
            schedule.extend([position] * weights[position])
        if self.background_scan:
            schedule.extend(range(self.n_targets, self.n_pages))
        for position in victims:
            schedule.extend([position] * weights[position])
        self._pass_schedule = schedule

    def victim_share(self) -> float:
        """Traffic share of the most-hammered page after a reversal.

        Scale-invariant given a fixed period/footprint ratio; used by
        the full-scale extrapolation of the Figure-6 "worn out quickly"
        entries.
        """
        weights = self._staircase_weights()
        return max(weights) / len(self._pass_schedule)

    @property
    def period_estimate(self) -> float:
        """Current online estimate of the victim scheme's phase length."""
        return self._period_estimate

    # ------------------------------------------------------------------
    # Mid-run persistence
    # ------------------------------------------------------------------
    def _snapshot_state(self) -> dict:
        return {
            "cursor": self._cursor,
            "detector": self.detector.snapshot(),
            "flip_pending": self._flip_pending,
            "pass_schedule": list(self._pass_schedule),
            "period_estimate": self._period_estimate,
            "reversals": self.reversals,
            "reversed": self._reversed,
            "writes_since_flip": self._writes_since_flip,
        }

    def _restore_state(self, state: dict) -> None:
        # The pass schedule is stored rather than rebuilt: it was
        # materialized from the period estimate *at flip time*, which a
        # later EMA update has since moved past.
        self._cursor = int(state["cursor"])
        self.detector.restore(state["detector"])
        self._flip_pending = bool(state["flip_pending"])
        self._pass_schedule = [int(page) for page in state["pass_schedule"]]
        self._period_estimate = float(state["period_estimate"])
        self.reversals = int(state["reversals"])
        self._reversed = bool(state["reversed"])
        self._writes_since_flip = int(state["writes_since_flip"])

    # ------------------------------------------------------------------
    # Write stream
    # ------------------------------------------------------------------
    def next_write(self) -> int:
        if self._flip_pending:
            self._flip_pending = False
            self._reversed = not self._reversed
            self.reversals += 1
            self._build_pass()
            self._cursor = 0
        page = self._pass_schedule[self._cursor]
        self._cursor += 1
        if self._cursor == len(self._pass_schedule):
            self._cursor = 0
        return self._emit(page)

    def observe_response(self, latency_cycles: float) -> None:
        """Flip on a detected swap; refine the phase-length estimate.

        Falls back to a blind flip when nothing observable happened for
        ``patience`` writes.
        """
        self._writes_since_flip += 1
        detected = self.detector.observe(latency_cycles)
        if not detected and self._writes_since_flip < self.patience:
            return
        if detected:
            self._period_estimate = (
                (1 - _PERIOD_EMA) * self._period_estimate
                + _PERIOD_EMA * self._writes_since_flip
            )
        self._flip_pending = True
        self._writes_since_flip = 0
