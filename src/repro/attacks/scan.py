"""Scan write attack: consecutive addresses.

"Scan write mode: write addresses are consecutive" (Section 5.2).  The
worst case for TWL's swap overhead: alternating between the members of a
pair keeps the toss-up in the paper's Case-4 regime (swap probability
near 1/2), which is why the scan column is TWL's minimum in Figure 6.
"""

from __future__ import annotations

import numpy as np

from .base import AttackWorkload


class ScanWriteAttack(AttackWorkload):
    """Sequential write addresses, wrapping at the top of memory."""

    name = "scan"

    def __init__(self, n_pages: int, start: int = 0):
        super().__init__(n_pages)
        if not 0 <= start < n_pages:
            raise ValueError(f"start {start} out of range [0, {n_pages})")
        self._next = start

    def _snapshot_state(self) -> dict:
        return {"next": self._next}

    def _restore_state(self, state: dict) -> None:
        self._next = int(state["next"])

    def next_write(self) -> int:
        current = self._next
        self._next += 1
        if self._next == self.n_pages:
            self._next = 0
        return self._emit(current)

    def next_writes(self, n: int) -> np.ndarray:
        """Vectorized scan stream: one modular ramp per batch."""
        if n < 0:
            raise ValueError("batch size must be non-negative")
        out = (self._next + np.arange(n, dtype=np.int64)) % self.n_pages
        self._next = int((self._next + n) % self.n_pages)
        self.writes_emitted += n
        return out
