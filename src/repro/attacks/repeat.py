"""Repeat write attack: hammer one fixed address.

The classic PCM wear-out attack ("Repeat write mode: fix one address to
write", Section 5.2, after Qureshi et al. [11]).  Defeats any system
without wear leveling in seconds; any remapping scheme spreads it.
"""

from __future__ import annotations

import numpy as np

from .base import AttackWorkload


class RepeatWriteAttack(AttackWorkload):
    """All writes target a single logical page."""

    name = "repeat"

    def __init__(self, n_pages: int, target: int = 0):
        super().__init__(n_pages)
        if not 0 <= target < n_pages:
            raise ValueError(f"target {target} out of range [0, {n_pages})")
        self.target = target

    def next_write(self) -> int:
        return self._emit(self.target)

    def next_writes(self, n: int) -> np.ndarray:
        """Vectorized repeat stream: a constant batch."""
        if n < 0:
            raise ValueError("batch size must be non-negative")
        self.writes_emitted += n
        return np.full(n, self.target, dtype=np.int64)
