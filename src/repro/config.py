"""Configuration dataclasses (paper Table 1 defaults).

Every tunable in the reproduction lives in one of the frozen dataclasses
below.  The defaults reproduce the paper's Table 1 setup:

* 32 GB PCM, 4 KB pages, 128 B lines, 4 ranks, 32 banks;
* read/set/reset latency 250/2000/250 cycles at 2 GHz;
* endurance ~ Gauss(1e8, 0.11 * 1e8), tested per page;
* TWL: toss-up interval 32, inter-pair swap interval 128, RNG latency
  4 cycles, control logic 5 cycles, table lookup 10 cycles.

Simulations run on a *scaled* array (fewer pages, lower endurance) so that
run-to-failure completes in seconds; :class:`ScaledArrayConfig` carries the
scaling knobs and `repro.analysis.extrapolate` converts results back to
full-scale years.  See DESIGN.md §2 for why the scaling preserves the
paper's comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from .errors import ConfigError
from .units import GIB, KIB

#: Paper Table 1 / Section 5.1 constants.
PAPER_CAPACITY_BYTES = 32 * GIB
PAPER_PAGE_BYTES = 4 * KIB
PAPER_LINE_BYTES = 128
PAPER_ENDURANCE_MEAN = 100_000_000
PAPER_ENDURANCE_SIGMA_FRACTION = 0.11
PAPER_CLOCK_HZ = 2_000_000_000
PAPER_ATTACK_BANDWIDTH_BYTES = 8 * GIB  # "approximate 8GB/s write bandwidth"


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


def _power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class PCMConfig:
    """Geometry and endurance model of the PCM main memory.

    ``capacity_bytes`` / ``page_bytes`` gives the number of pages; all
    wear-leveling structures in this reproduction operate at page
    granularity, matching the paper ("endurance information is tested and
    stored at the granularity of page-size").
    """

    capacity_bytes: int = PAPER_CAPACITY_BYTES
    page_bytes: int = PAPER_PAGE_BYTES
    line_bytes: int = PAPER_LINE_BYTES
    ranks: int = 4
    banks: int = 32
    endurance_mean: float = PAPER_ENDURANCE_MEAN
    endurance_sigma_fraction: float = PAPER_ENDURANCE_SIGMA_FRACTION

    def __post_init__(self) -> None:
        _require(self.capacity_bytes > 0, "capacity must be positive")
        _require(_power_of_two(self.page_bytes), "page size must be a power of two")
        _require(_power_of_two(self.line_bytes), "line size must be a power of two")
        _require(
            self.line_bytes <= self.page_bytes,
            "line size cannot exceed page size",
        )
        _require(
            self.capacity_bytes % self.page_bytes == 0,
            "capacity must be a whole number of pages",
        )
        _require(self.ranks > 0 and self.banks > 0, "ranks/banks must be positive")
        _require(self.endurance_mean > 0, "endurance mean must be positive")
        _require(
            0.0 <= self.endurance_sigma_fraction < 1.0,
            "endurance sigma fraction must be in [0, 1)",
        )

    @property
    def n_pages(self) -> int:
        """Number of pages in the array."""
        return self.capacity_bytes // self.page_bytes

    @property
    def lines_per_page(self) -> int:
        """Number of memory lines per page."""
        return self.page_bytes // self.line_bytes

    @property
    def endurance_sigma(self) -> float:
        """Absolute standard deviation of per-page endurance."""
        return self.endurance_mean * self.endurance_sigma_fraction


#: The paper's full-scale memory, used as the reference population for
#: tail-faithful endurance sampling and for full-scale extrapolation.
PAPER_PCM = PCMConfig()


@dataclass(frozen=True)
class ScaledArrayConfig:
    """Parameters of the scaled simulation array.

    ``n_pages`` and ``endurance_mean`` are reduced relative to the paper's
    full-scale memory so run-to-failure finishes quickly.  When
    ``tail_faithful`` is true, the weakest simulated pages are placed at
    the expected extreme order statistics of the *full* ``reference``
    population (default: the paper's 8.4M-page memory), which preserves
    first-failure statistics; see ``repro.pcm.endurance``.
    """

    n_pages: int = 4096
    endurance_mean: float = 10_000.0
    endurance_sigma_fraction: float = PAPER_ENDURANCE_SIGMA_FRACTION
    tail_faithful: bool = True
    reference: PCMConfig = field(default_factory=PCMConfig)
    seed: int = 2017

    def __post_init__(self) -> None:
        _require(self.n_pages >= 2, "need at least two pages")
        _require(self.endurance_mean > 1, "scaled endurance mean must exceed 1")
        _require(
            0.0 <= self.endurance_sigma_fraction < 1.0,
            "endurance sigma fraction must be in [0, 1)",
        )

    def to_pcm_config(self) -> PCMConfig:
        """PCM geometry of the scaled array (4 KiB pages retained)."""
        return PCMConfig(
            capacity_bytes=self.n_pages * PAPER_PAGE_BYTES,
            page_bytes=PAPER_PAGE_BYTES,
            line_bytes=PAPER_LINE_BYTES,
            ranks=1,
            banks=1,
            endurance_mean=self.endurance_mean,
            endurance_sigma_fraction=self.endurance_sigma_fraction,
        )


@dataclass(frozen=True)
class TimingConfig:
    """Latency parameters (cycles at ``clock_hz``), paper Table 1."""

    clock_hz: float = PAPER_CLOCK_HZ
    read_cycles: int = 250
    set_cycles: int = 2000
    reset_cycles: int = 250
    rng_cycles: int = 4
    twl_logic_cycles: int = 5
    table_cycles: int = 10
    bloom_probe_cycles: int = 10
    coldhot_list_cycles: int = 10

    def __post_init__(self) -> None:
        for name in (
            "read_cycles",
            "set_cycles",
            "reset_cycles",
            "rng_cycles",
            "twl_logic_cycles",
            "table_cycles",
            "bloom_probe_cycles",
            "coldhot_list_cycles",
        ):
            _require(getattr(self, name) >= 0, f"{name} must be non-negative")
        _require(self.clock_hz > 0, "clock must be positive")

    @property
    def write_cycles(self) -> int:
        """Worst-case page write latency (SET dominates RESET)."""
        return self.set_cycles

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert a cycle count to seconds at the configured clock."""
        return cycles / self.clock_hz


#: Pairing policies for TWL.
PAIRING_STRONG_WEAK = "swp"
PAIRING_ADJACENT = "ap"
PAIRING_RANDOM = "random"
_PAIRINGS = (PAIRING_STRONG_WEAK, PAIRING_ADJACENT, PAIRING_RANDOM)


@dataclass(frozen=True)
class TWLConfig:
    """Toss-up Wear Leveling parameters (paper Section 4, Table 1)."""

    toss_up_interval: int = 32
    inter_pair_swap_interval: int = 128
    pairing: str = PAIRING_STRONG_WEAK
    rng_bits: int = 8
    use_remaining_endurance: bool = False
    write_counter_bits: int = 7
    #: Keep physical strong-weak frame pairs intact across inter-pair
    #: swaps by rebinding the SWPT (see DESIGN.md §4); turning this off
    #: lets inter-pair swaps gradually randomize pair composition.
    maintain_physical_pairs: bool = True
    #: Re-run the toss-up on the first write after an inter-pair swap
    #: relocates a page, so the endurance-proportional arrangement is
    #: restored immediately instead of after up to a full interval.
    toss_on_relocation: bool = True

    def __post_init__(self) -> None:
        _require(self.toss_up_interval >= 1, "toss-up interval must be >= 1")
        _require(
            self.inter_pair_swap_interval >= 1,
            "inter-pair swap interval must be >= 1",
        )
        _require(self.pairing in _PAIRINGS, f"pairing must be one of {_PAIRINGS}")
        _require(1 <= self.rng_bits <= 32, "rng_bits must be in [1, 32]")
        _require(
            self.toss_up_interval < (1 << self.write_counter_bits),
            "toss-up interval must fit in the write counter",
        )

    def with_pairing(self, pairing: str) -> "TWLConfig":
        """Copy of this config with a different pairing policy."""
        return replace(self, pairing=pairing)

    def with_interval(self, toss_up_interval: int) -> "TWLConfig":
        """Copy of this config with a different toss-up interval."""
        return replace(self, toss_up_interval=toss_up_interval)


@dataclass(frozen=True)
class SecurityRefreshConfig:
    """Security Refresh [Seong et al., ISCA'10] parameters.

    ``refresh_interval`` is the number of demand writes between remap
    steps within a region.  The paper fixes the comparable interval at
    128 ("we fix the inter-pair swap interval at 128 [12]").
    """

    refresh_interval: int = 128
    region_pages: Optional[int] = None  # None = single region over the array

    def __post_init__(self) -> None:
        _require(self.refresh_interval >= 1, "refresh interval must be >= 1")
        if self.region_pages is not None:
            _require(
                _power_of_two(self.region_pages),
                "region size must be a power of two pages",
            )


@dataclass(frozen=True)
class StartGapConfig:
    """Start-Gap [Qureshi et al., MICRO'09] parameters."""

    gap_move_interval: int = 128
    randomize: bool = True

    def __post_init__(self) -> None:
        _require(self.gap_move_interval >= 1, "gap move interval must be >= 1")


@dataclass(frozen=True)
class WRLConfig:
    """Wear Rate Leveling [Dong et al., DAC'11] parameters.

    The running phase is ``running_multiplier`` times the prediction phase
    ("running phase is much longer than the prediction phase (e.g. 10X)").
    ``prediction_writes`` counts writes per page on average before a swap
    phase is triggered.
    """

    prediction_writes_per_page: float = 4.0
    running_multiplier: float = 10.0
    swap_block_cycles: int = 4000

    def __post_init__(self) -> None:
        _require(self.prediction_writes_per_page > 0, "prediction length must be > 0")
        _require(self.running_multiplier > 0, "running multiplier must be > 0")
        _require(self.swap_block_cycles >= 0, "swap block cycles must be >= 0")


@dataclass(frozen=True)
class BWLConfig:
    """Bloom-filter based wear leveling [Yun et al., DATE'12] parameters.

    Two counting Bloom filters track hot logical addresses and write-worn
    physical pages; a cold/hot list drives swaps at phase boundaries.
    """

    bloom_bits: int = 8192
    bloom_hashes: int = 3
    prediction_writes_per_page: float = 4.0
    running_multiplier: float = 10.0
    hot_fraction: float = 0.125
    cold_threshold: int = 2
    swap_block_cycles: int = 4000

    def __post_init__(self) -> None:
        _require(_power_of_two(self.bloom_bits), "bloom bits must be a power of two")
        _require(1 <= self.bloom_hashes <= 8, "bloom hash count must be in [1, 8]")
        _require(self.prediction_writes_per_page > 0, "prediction length must be > 0")
        _require(self.running_multiplier > 0, "running multiplier must be > 0")
        _require(0 < self.hot_fraction <= 0.5, "hot fraction must be in (0, 0.5]")
        _require(self.cold_threshold >= 1, "cold threshold must be >= 1")


#: Per-entry protection levels for controller SRAM structures.
PROTECTION_NONE = "none"
PROTECTION_PARITY = "parity"
PROTECTION_SECDED = "secded"
_PROTECTIONS = (PROTECTION_NONE, PROTECTION_PARITY, PROTECTION_SECDED)


@dataclass(frozen=True)
class SoftErrorConfig:
    """Deterministic controller soft-error injection parameters.

    ``rate`` is the per-demand-write probability that one bit flips
    somewhere in the scheme's exposed controller state (remapping
    table, write counters, SWPT/WNT, RNG registers).  Flip instants
    are scheduled on the *absolute demand-write index* with geometric
    inter-arrival gaps drawn from a dedicated ``repro.rng`` stream, so
    a given ``(scheme, workload, seed, rate)`` cell always suffers the
    same flips at the same instants regardless of batch size or worker
    scheduling.

    ``protection`` selects the per-entry SRAM protection modeled by
    :class:`repro.pcm.softerrors.SoftErrorInjector` (and costed by
    :func:`repro.hwcost.scheme_protection_bits`):

    * ``"none"`` — the flip lands and persists silently;
    * ``"parity"`` — the flip is detected on delivery, triggering
      scrub-and-repair from structural redundancy (or the scheme's
      fail-safe when repair is impossible);
    * ``"secded"`` — the flip is corrected transparently (single-error
      correction), leaving the run bit-identical to the unfaulted one.

    ``targets`` optionally restricts injection to named structures from
    the scheme's fault surface (e.g. ``("rt", "wct")``); empty means
    every exposed structure, weighted by its bit count.
    """

    rate: float = 0.0
    seed: int = 0
    targets: Tuple[str, ...] = ()
    protection: str = PROTECTION_NONE

    def __post_init__(self) -> None:
        _require(
            0.0 <= self.rate <= 1.0,
            f"soft-error rate must be in [0, 1], got {self.rate}",
        )
        _require(
            self.protection in _PROTECTIONS,
            f"protection must be one of {_PROTECTIONS}, got {self.protection!r}",
        )
        for target in self.targets:
            _require(
                isinstance(target, str) and bool(target),
                f"targets must be non-empty structure names, got {target!r}",
            )


@dataclass(frozen=True)
class SimConfig:
    """Simulator run parameters."""

    seed: int = 2017
    max_writes: Optional[int] = None
    fail_fast: bool = True
    collect_wear_histogram: bool = False

    def __post_init__(self) -> None:
        if self.max_writes is not None:
            _require(self.max_writes > 0, "max_writes must be positive")
