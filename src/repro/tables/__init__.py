"""Hardware tables of the wear-leveling controllers (paper Figures 1 & 5).

Every table stores one entry per page and reports its per-entry bit width,
which feeds the Section-5.4 storage accounting in ``repro.hwcost``:

* :class:`RemappingTable` (RT, 23 bits/entry at full scale) — LA -> PA;
* :class:`EnduranceTable` (ET, 27 bits/entry) — tested endurance per PA;
* :class:`PairTable` (SWPT, 23 bits/entry) — the strong-weak pair involution;
* :class:`WriteCounterTable` (WCT, 7 bits/entry) — interval trigger counters;
* :class:`WriteNumberTable` (WNT) — prediction-phase write counters used by
  the prediction-swap-running baselines.
"""

from .remap import RemappingTable
from .endurance_table import EnduranceTable
from .pair_table import PairTable
from .write_counter import WriteCounterTable
from .wnt import WriteNumberTable

__all__ = [
    "RemappingTable",
    "EnduranceTable",
    "PairTable",
    "WriteCounterTable",
    "WriteNumberTable",
]
