"""The write number table (WNT).

The prediction-phase structure of the prediction-swap-running baselines
(Figure 1): per-logical-page write counters accumulated during the
prediction phase, then consumed by the swap phase to rank hot and cold
addresses.  This is the structure the inconsistent-write attack poisons.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..errors import AddressError, TableError


class WriteNumberTable:
    """Per-logical-page write counters for hot/cold prediction."""

    def __init__(self, n_pages: int, bits: int = 16):
        if n_pages < 1:
            raise TableError("write number table needs at least one page")
        if not 1 <= bits <= 30:
            raise TableError(f"counter width must be in [1, 30] bits, got {bits}")
        self.n_pages = n_pages
        self.bits = bits
        self._max = (1 << bits) - 1
        #: Canonical counter storage.
        self._counts = np.zeros(n_pages, dtype=np.int64)
        self.total = 0

    @property
    def entry_bits(self) -> int:
        """Bits per entry."""
        return self.bits

    def record_write(self, logical: int) -> None:
        """Count one write to ``logical`` (saturating at the entry width)."""
        self._check(logical)
        counts = self._counts
        value = int(counts[logical])
        if value < self._max:
            counts[logical] = value + 1
        self.total += 1

    def record_write_batch(self, pages: np.ndarray) -> None:
        """Count one write per entry of ``pages`` (batch path).

        Saturation commutes with addition — each counter ends at
        ``min(before + occurrences, max)`` either way — so one bincount
        plus a clamp is bit-identical to recording the batch write by
        write.
        """
        seq = np.asarray(pages, dtype=np.int64)
        if seq.size == 0:
            return
        lo = int(seq.min())
        hi = int(seq.max())
        if lo < 0 or hi >= self.n_pages:
            self._check(lo if lo < 0 else hi)
        counts = self._counts
        increments = np.bincount(seq, minlength=self.n_pages)
        np.minimum(counts + increments, self._max, out=counts)
        self.total += int(seq.size)

    def count(self, logical: int) -> int:
        """Writes recorded for ``logical`` this phase."""
        self._check(logical)
        return int(self._counts[logical])

    def hottest_first(self) -> np.ndarray:
        """Logical pages ordered by descending recorded writes.

        Ties break toward lower addresses (stable sort), matching a
        deterministic hardware priority encoder.
        """
        return np.argsort(-self._counts, kind="stable")

    def snapshot(self) -> dict:
        """Counters plus the phase-total (mid-run persistence)."""
        return {"counts": self._counts.copy(), "total": self.total}

    def restore(self, state: dict) -> None:
        """Restore a state captured by :meth:`snapshot`."""
        self._counts[:] = np.asarray(state["counts"], dtype=np.int64)
        self.total = int(state["total"])

    def poke(self, logical: int, value: int) -> None:
        """Overwrite one counter in place — models SRAM corruption.

        ``total`` (simulator bookkeeping, not a hardware structure) is
        left untouched: a bit flip changes a stored count, not how many
        writes actually happened.
        """
        self._check(logical)
        self._counts[logical] = int(value)

    def counts(self) -> List[int]:
        """Copy of all counters."""
        return self._counts.tolist()

    def clear(self) -> None:
        """Reset all counters for the next prediction phase."""
        self._counts[:] = 0
        self.total = 0

    def _check(self, page: int) -> None:
        if not 0 <= page < self.n_pages:
            raise AddressError(f"page {page} out of range [0, {self.n_pages})")

    def __len__(self) -> int:
        return self.n_pages
