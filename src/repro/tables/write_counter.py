"""The write counter table (WCT).

One small (7-bit in the paper) counter per page.  The TWL engine bumps a
page's counter on every write and triggers a toss-up when the counter
reaches the toss-up interval, then clears it (interval-triggered toss-up,
§4.3).  Counters wrap at their bit width, as a hardware counter would.
"""

from __future__ import annotations

import numpy as np

from ..errors import AddressError, TableError


class WriteCounterTable:
    """Per-page wrapping write counters with an interval trigger."""

    def __init__(self, n_pages: int, bits: int = 7, interval: int = 32):
        if n_pages < 1:
            raise TableError("write counter table needs at least one page")
        if not 1 <= bits <= 30:
            raise TableError(f"counter width must be in [1, 30] bits, got {bits}")
        if not 1 <= interval < (1 << bits):
            raise TableError(
                f"interval {interval} must fit in a {bits}-bit counter"
            )
        self.n_pages = n_pages
        self.bits = bits
        self.interval = interval
        self._counters = [0] * n_pages
        # Lazy numpy mirror for batch planning: created on the first
        # values_array() call and maintained in place by every mutator
        # from then on, so purely scalar runs never pay for it.
        self._values_np: np.ndarray | None = None

    @property
    def entry_bits(self) -> int:
        """Bits per entry (7 in the paper)."""
        return self.bits

    def record_write(self, page: int) -> bool:
        """Count one write to ``page``; True when the interval fires.

        The counter resets on trigger, so with interval K exactly one in
        every K writes to the page triggers a toss-up.
        """
        self._check(page)
        count = self._counters[page] + 1
        if count >= self.interval:
            count = 0
        self._counters[page] = count
        if self._values_np is not None:
            self._values_np[page] = count
        return count == 0

    def force_trigger_next(self, page: int) -> None:
        """Make the next write to ``page`` fire the interval trigger.

        Used by TWL's relocation hook: after an inter-pair swap parks a
        page on an arbitrary frame of its new pair, the next write
        re-runs the toss-up immediately instead of waiting out the
        interval (a single table write in hardware).
        """
        self._check(page)
        self._counters[page] = self.interval - 1
        if self._values_np is not None:
            self._values_np[page] = self.interval - 1

    def values_array(self) -> np.ndarray:
        """All counters as an int64 array (for vectorized batch planning).

        Returns the live mirror — treat it as read-only; it stays
        current across subsequent mutations.
        """
        if self._values_np is None:
            self._values_np = np.asarray(self._counters, dtype=np.int64)
        return self._values_np

    def bulk_record_quiet(self, per_page: np.ndarray) -> None:
        """Record per-page write counts known not to fire the trigger.

        The batched write path pre-computes, from :meth:`values_array`,
        the longest run of writes during which no counter can reach the
        interval, then folds that run's counts in here in one call.  The
        no-trigger guarantee is the caller's to uphold and is re-checked
        page by page (a crossing here means the batch planner is wrong).
        """
        counters = self._counters
        interval = self.interval
        mirror = self._values_np
        for page in np.flatnonzero(per_page).tolist():
            count = counters[page] + int(per_page[page])
            if count >= interval:
                raise TableError(
                    f"bulk_record_quiet crossed the trigger interval on page "
                    f"{page} ({count} >= {interval})"
                )
            counters[page] = count
            if mirror is not None:
                mirror[page] = count

    def value(self, page: int) -> int:
        """Current counter value for ``page``."""
        self._check(page)
        return self._counters[page]

    def poke(self, page: int, value: int) -> None:
        """Overwrite one counter in place — models SRAM corruption.

        Bypasses the trigger semantics entirely (a bit flip does not
        count as a write); the live numpy mirror is kept in sync so the
        batch planner sees the corrupted value too.  Any value that fits
        the entry width is representable — a corrupted counter at or
        above the interval simply fires the trigger on the next write.
        """
        self._check(page)
        self._counters[page] = int(value)
        if self._values_np is not None:
            self._values_np[page] = int(value)

    def reset(self, page: int) -> None:
        """Clear the counter for ``page``."""
        self._check(page)
        self._counters[page] = 0
        if self._values_np is not None:
            self._values_np[page] = 0

    def _check(self, page: int) -> None:
        if not 0 <= page < self.n_pages:
            raise AddressError(f"page {page} out of range [0, {self.n_pages})")

    def __len__(self) -> int:
        return self.n_pages
