"""The write counter table (WCT).

One small (7-bit in the paper) counter per page.  The TWL engine bumps a
page's counter on every write and triggers a toss-up when the counter
reaches the toss-up interval, then clears it (interval-triggered toss-up,
§4.3).  Counters wrap at their bit width, as a hardware counter would.

The canonical storage is a flat ``int64`` numpy array; the scalar
accessors are thin views over it, and the batched write path updates
whole windows of counters with one vectorized call
(:meth:`WriteCounterTable.bulk_record`).
"""

from __future__ import annotations

import numpy as np

from ..errors import AddressError, TableError


class WriteCounterTable:
    """Per-page wrapping write counters with an interval trigger."""

    def __init__(self, n_pages: int, bits: int = 7, interval: int = 32):
        if n_pages < 1:
            raise TableError("write counter table needs at least one page")
        if not 1 <= bits <= 30:
            raise TableError(f"counter width must be in [1, 30] bits, got {bits}")
        if not 1 <= interval < (1 << bits):
            raise TableError(
                f"interval {interval} must fit in a {bits}-bit counter"
            )
        self.n_pages = n_pages
        self.bits = bits
        self.interval = interval
        #: Canonical counter storage (batch planners read it directly
        #: through :meth:`values_array`).
        self._values = np.zeros(n_pages, dtype=np.int64)

    @property
    def entry_bits(self) -> int:
        """Bits per entry (7 in the paper)."""
        return self.bits

    def record_write(self, page: int) -> bool:
        """Count one write to ``page``; True when the interval fires.

        The counter resets on trigger, so with interval K exactly one in
        every K writes to the page triggers a toss-up.
        """
        self._check(page)
        values = self._values
        count = int(values[page]) + 1
        if count >= self.interval:
            count = 0
        values[page] = count
        return count == 0

    def force_trigger_next(self, page: int) -> None:
        """Make the next write to ``page`` fire the interval trigger.

        Used by TWL's relocation hook: after an inter-pair swap parks a
        page on an arbitrary frame of its new pair, the next write
        re-runs the toss-up immediately instead of waiting out the
        interval (a single table write in hardware).
        """
        self._check(page)
        self._values[page] = self.interval - 1

    def values_array(self) -> np.ndarray:
        """The canonical counter array (for vectorized batch planning).

        Returns the live storage — treat it as read-only; it stays
        current across subsequent mutations.
        """
        return self._values

    def bulk_record(self, pages: np.ndarray) -> None:
        """Record one write per entry of ``pages``, with wrapping.

        Vectorized equivalent of calling :meth:`record_write` once per
        entry *and discarding the trigger results* — the batched write
        path pre-computes trigger positions from :meth:`values_array`
        and serves them through the scalar path, so by construction the
        only counters that wrap here belong to pages whose trigger is a
        no-op (self-paired pages).  Caller guarantees every pre-update
        counter is below the interval (true unless a fault was injected;
        the planner falls back to the scalar path in that case).
        """
        values = self._values
        if pages.size * 8 < self.n_pages:
            # Duplicate-free small chunks (the common planner case) are
            # one gather/scatter on the touched entries.
            s = np.sort(pages)
            if pages.size < 2 or not (s[1:] == s[:-1]).any():
                values[pages] = (values[pages] + 1) % self.interval
                return
        counts = np.bincount(pages, minlength=self.n_pages)
        touched = np.flatnonzero(counts)
        values[touched] = (values[touched] + counts[touched]) % self.interval

    def bulk_record_distinct(self, pages: np.ndarray) -> None:
        """:meth:`bulk_record` for caller-guaranteed distinct pages.

        Skips the duplicate scan — the TWL planner already sorted the
        window to build its trigger schedule and proved distinctness.
        """
        values = self._values
        values[pages] = (values[pages] + 1) % self.interval

    def bulk_record_quiet(self, per_page: np.ndarray) -> None:
        """Record per-page write counts known not to fire the trigger.

        Like :meth:`bulk_record` but for runs the planner certified
        trigger-free: the no-trigger guarantee is re-checked in one
        vectorized pass (a crossing here means the batch planner is
        wrong) before the counts are folded in.
        """
        per_page = np.asarray(per_page, dtype=np.int64)
        touched = np.flatnonzero(per_page)
        values = self._values
        updated = values[touched] + per_page[touched]
        crossed = updated >= self.interval
        if crossed.any():
            page = int(touched[crossed][0])
            raise TableError(
                f"bulk_record_quiet crossed the trigger interval on page "
                f"{page} ({int(values[page]) + int(per_page[page])} >= "
                f"{self.interval})"
            )
        values[touched] = updated

    def snapshot(self) -> dict:
        """The counter array, copied (mid-run persistence)."""
        return {"values": self._values.copy()}

    def restore(self, state: dict) -> None:
        """Restore a state captured by :meth:`snapshot`."""
        self._values[:] = np.asarray(state["values"], dtype=np.int64)

    def value(self, page: int) -> int:
        """Current counter value for ``page``."""
        self._check(page)
        return int(self._values[page])

    def poke(self, page: int, value: int) -> None:
        """Overwrite one counter in place — models SRAM corruption.

        Bypasses the trigger semantics entirely (a bit flip does not
        count as a write).  Any value that fits the entry width is
        representable — a corrupted counter at or above the interval
        simply fires the trigger on the next write (and disables the
        batch planner's modular trigger prediction until it does).
        """
        self._check(page)
        self._values[page] = int(value)

    def reset(self, page: int) -> None:
        """Clear the counter for ``page``."""
        self._check(page)
        self._values[page] = 0

    def _check(self, page: int) -> None:
        if not 0 <= page < self.n_pages:
            raise AddressError(f"page {page} out of range [0, {self.n_pages})")

    def __len__(self) -> int:
        return self.n_pages
