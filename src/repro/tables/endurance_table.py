"""The endurance table (ET).

Stores the manufacturer-tested endurance of every *physical* page.  The
paper provisions 27 bits per entry — enough for the full 1e8-mean
endurance range (2**27 ≈ 1.34e8).  Values wider than the entry saturate,
exactly as a hardware table would.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import AddressError, TableError


class EnduranceTable:
    """Read-only per-physical-page endurance, quantized to ``bits`` wide."""

    def __init__(self, endurance: Sequence[int], bits: int = 27):
        if not 1 <= bits <= 62:
            raise TableError(f"entry width must be in [1, 62] bits, got {bits}")
        values = np.asarray(endurance, dtype=np.int64)
        if values.ndim != 1 or values.size < 1:
            raise TableError("endurance must be a non-empty 1-D sequence")
        if (values <= 0).any():
            raise TableError("endurance values must be positive")
        self.bits = bits
        cap = (1 << bits) - 1
        self.saturated_entries = int((values > cap).sum())
        # Canonical storage; kept private so every external read goes
        # through lookup() / as_array() and the table stays immutable.
        self._values = np.minimum(values, cap)
        self.n_pages = int(values.size)

    @property
    def entry_bits(self) -> int:
        """Bits per entry (27 in the paper)."""
        return self.bits

    def lookup(self, physical: int) -> int:
        """Tested endurance of ``physical``."""
        if not 0 <= physical < self.n_pages:
            raise AddressError(
                f"page {physical} out of range [0, {self.n_pages})"
            )
        return int(self._values[physical])

    def values_array(self) -> np.ndarray:
        """Live canonical storage (vectorized read path; do not write).

        Element-for-element what :meth:`lookup` returns — the batched
        TWL planner gathers whole event schedules from it.
        """
        return self._values

    def as_array(self) -> np.ndarray:
        """Copy of all entries."""
        return self._values.copy()

    def sorted_by_endurance(self) -> np.ndarray:
        """Physical pages ordered weakest-first (for strong-weak pairing)."""
        return np.argsort(self._values, kind="stable")

    def __len__(self) -> int:
        return self.n_pages
