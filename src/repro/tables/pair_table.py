"""The strong-weak pair table (SWPT).

A fixed involution over logical pages: every page has exactly one partner
and pairing is symmetric (``partner(partner(x)) == x``).  The table is
set once at format time; the three builders correspond to the paper's
pairing policies:

* :meth:`PairTable.strong_weak` — sort pages by endurance and bind the
  k-th weakest to the k-th strongest (the SWP optimization of §4.3);
* :meth:`PairTable.adjacent` — bind physically adjacent pages (the naive
  "TWL_ap" baseline of Figure 6);
* :meth:`PairTable.random` — uniformly random perfect matching.

With an odd page count, one page is left self-paired (toss-up over a
self-pair is a no-op); the paper's power-of-two geometries never hit this
but the library supports it.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..errors import AddressError, TableError


class PairTable:
    """An involution mapping each logical page to its toss-up partner."""

    def __init__(self, partners: Sequence[int]):
        values = np.asarray(partners, dtype=np.int64)
        n = int(values.size)
        if values.ndim != 1 or n < 1:
            raise TableError("pair table needs at least one page")
        out_of_range = (values < 0) | (values >= n)
        if out_of_range.any():
            la = int(np.flatnonzero(out_of_range)[0])
            raise TableError(
                f"partner {int(values[la])} of page {la} out of range"
            )
        broken = values[values] != np.arange(n, dtype=np.int64)
        if broken.any():
            la = int(np.flatnonzero(broken)[0])
            raise TableError(
                f"pairing is not an involution at page {la} -> {int(values[la])}"
            )
        #: Canonical involution storage.
        self._partners = values.copy()
        self.n_pages = n

    @property
    def entry_bits(self) -> int:
        """Bits per entry: ceil(log2(n_pages)) (23 at the paper's scale)."""
        return max(1, (self.n_pages - 1).bit_length())

    def partner(self, logical: int) -> int:
        """The toss-up partner of ``logical`` (may equal it if self-paired)."""
        if not 0 <= logical < self.n_pages:
            raise AddressError(
                f"page {logical} out of range [0, {self.n_pages})"
            )
        return int(self._partners[logical])

    def partners_array(self) -> np.ndarray:
        """The canonical partner array (for vectorized batch planning).

        Returns the live storage — treat it as read-only; it stays
        current across subsequent :meth:`exchange_roles` calls.
        """
        return self._partners

    def exchange_roles(self, la1: int, la2: int) -> None:
        """Update the involution after two logical pages exchange frames.

        When an inter-pair swap moves frame F1 from under ``la1`` to under
        ``la2`` (and F2 the other way), the physical pair sets stay intact
        only if the SWPT is conjugated by the transposition (la1 la2):
        ``new_partner(x) = t(old_partner(t(x)))``.  Same-pair exchanges
        and self-pairs fall out of the formula naturally.
        """
        for la in (la1, la2):
            if not 0 <= la < self.n_pages:
                raise AddressError(
                    f"page {la} out of range [0, {self.n_pages})"
                )
        if la1 == la2:
            return
        # Conjugation by the transposition t = (la1 la2):
        # new_partner(x) = t(old_partner(t(x))).  Only la1, la2 and
        # their old partners can change; for an old partner p outside
        # {la1, la2} the formula collapses to new[p1] = la2 and
        # new[p2] = la1 (old[p1] == la1 by the involution).
        partners = self._partners
        p1 = int(partners[la1])
        p2 = int(partners[la2])
        partners[la1] = la1 if p2 == la2 else (la2 if p2 == la1 else p2)
        partners[la2] = la2 if p1 == la1 else (la1 if p1 == la2 else p1)
        if p1 != la1 and p1 != la2:
            partners[p1] = la2
        if p2 != la1 and p2 != la2:
            partners[p2] = la1

    def snapshot(self) -> dict:
        """The partner array, copied (mid-run persistence)."""
        return {"partners": self._partners.copy()}

    def restore(self, state: dict) -> None:
        """Restore a state captured by :meth:`snapshot`.

        Writes the storage in place, skipping the constructor's
        involution check: a snapshot taken after an unrepaired poke must
        round-trip the one-sided entry exactly.
        """
        self._partners[:] = np.asarray(state["partners"], dtype=np.int64)

    def raw_partner(self, logical: int) -> int:
        """Stored entry, unvalidated (fault-injection surface)."""
        if not 0 <= logical < self.n_pages:
            raise AddressError(
                f"page {logical} out of range [0, {self.n_pages})"
            )
        return int(self._partners[logical])

    def poke_partner(self, logical: int, value: int) -> None:
        """Overwrite one entry in place — models SRAM corruption.

        Deliberately skips the involution check the constructor
        enforces: a bit flip produces exactly such a one-sided entry,
        which :meth:`involution_errors` reports and :meth:`repair_entry`
        recovers from.
        """
        if not 0 <= logical < self.n_pages:
            raise AddressError(
                f"page {logical} out of range [0, {self.n_pages})"
            )
        self._partners[logical] = int(value)

    def repair_entry(self, logical: int) -> bool:
        """Restore the involution at ``logical`` from the rest of the table.

        A single corrupted entry leaves its true partner still pointing
        back at ``logical``; scanning for that unique claimant recovers
        the original pairing exactly.  With no claimant the page was
        self-paired (or the claimant was lost too) and the entry degrades
        to a self-pair — toss-up over a self-pair is a no-op, so the
        involution is restored at the cost of leveling for this page.
        Returns False only when multiple pages claim ``logical``
        (multi-bit corruption), which no local rewrite can reconcile.
        """
        if not 0 <= logical < self.n_pages:
            raise AddressError(
                f"page {logical} out of range [0, {self.n_pages})"
            )
        claimants = np.flatnonzero(self._partners == logical)
        owners = claimants[claimants != logical]
        if owners.size > 1:
            return False
        self._partners[logical] = int(owners[0]) if owners.size else logical
        return True

    def involution_errors(self, limit: int = 5) -> List[str]:
        """Describe every involution violation (up to ``limit``).

        Vectorized for the invariant checker's per-step use; messages
        are only materialized when something is wrong.
        """
        n = self.n_pages
        partners = self._partners
        errors: List[str] = []
        out_of_range = (partners < 0) | (partners >= n)
        for la in np.flatnonzero(out_of_range).tolist()[:limit]:
            errors.append(
                f"partner {int(partners[la])} of page {la} out of range "
                f"[0, {n})"
            )
        in_range = ~out_of_range
        identity = np.arange(n, dtype=np.int64)
        broken = np.zeros(n, dtype=bool)
        broken[in_range] = partners[partners[in_range]] != identity[in_range]
        for la in np.flatnonzero(broken).tolist()[: max(0, limit - len(errors))]:
            partner = int(partners[la])
            errors.append(
                f"pairing not an involution at page {la} -> {partner} -> "
                f"{int(partners[partner])}"
            )
        return errors

    def pairs(self) -> List[tuple]:
        """All distinct pairs as (low, high) tuples; self-pairs as (x, x)."""
        seen = set()
        result = []
        # Inspection helper, never on the write path; materialize once.
        partners = self._partners.tolist()
        for la, partner in enumerate(partners):
            key = (min(la, partner), max(la, partner))
            if key not in seen:
                seen.add(key)
                result.append(key)
        return result

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    @classmethod
    def strong_weak(cls, endurance: Sequence[int]) -> "PairTable":
        """Strong-weak pairing (§4.3): k-th weakest with k-th strongest.

        ``endurance`` is indexed by page; the involution binds the pages
        at the two ends of the sorted order moving inward, maximizing the
        endurance contrast within every pair (the Case-2 regime of the
        paper's swap-frequency analysis).
        """
        values = np.asarray(endurance, dtype=np.int64)
        if values.ndim != 1 or values.size < 1:
            raise TableError("endurance must be a non-empty 1-D sequence")
        order = np.argsort(values, kind="stable")
        n = values.size
        partners = [0] * n
        for k in range(n // 2):
            weak = int(order[k])
            strong = int(order[n - 1 - k])
            partners[weak] = strong
            partners[strong] = weak
        if n % 2 == 1:
            middle = int(order[n // 2])
            partners[middle] = middle
        return cls(partners)

    @classmethod
    def adjacent(cls, n_pages: int) -> "PairTable":
        """Adjacent pairing: (0,1), (2,3), ... (the naive TWL_ap policy)."""
        if n_pages < 1:
            raise TableError("pair table needs at least one page")
        partners = [0] * n_pages
        for base in range(0, n_pages - 1, 2):
            partners[base] = base + 1
            partners[base + 1] = base
        if n_pages % 2 == 1:
            partners[n_pages - 1] = n_pages - 1
        return cls(partners)

    @classmethod
    def random(cls, n_pages: int, rng: np.random.Generator) -> "PairTable":
        """Uniformly random perfect matching."""
        if n_pages < 1:
            raise TableError("pair table needs at least one page")
        order = rng.permutation(n_pages)
        partners = [0] * n_pages
        for k in range(0, n_pages - 1, 2):
            a, b = int(order[k]), int(order[k + 1])
            partners[a] = b
            partners[b] = a
        if n_pages % 2 == 1:
            last = int(order[n_pages - 1])
            partners[last] = last
        return cls(partners)

    def __len__(self) -> int:
        return self.n_pages
