"""The logical-to-physical remapping table (RT).

A bijection between logical and physical page addresses, maintained with
its inverse so both directions are O(1).  All wear-leveling schemes that
move data (WRL, BWL, TWL, and the simulator's view of Security Refresh
swaps) mutate the mapping exclusively through the two ``swap_*`` methods,
which keep the bijection invariant by construction.

Both directions are stored as flat ``int64`` numpy arrays — the
canonical state the batched write path gathers physical addresses from
(:meth:`RemappingTable.mapping_array`) — and the scalar lookups are thin
views over the same arrays.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..errors import AddressError, TableError


class RemappingTable:
    """LA -> PA bijection with O(1) inverse lookups."""

    def __init__(self, n_pages: int):
        if n_pages < 1:
            raise TableError("remapping table needs at least one page")
        self.n_pages = n_pages
        #: Canonical forward (LA -> PA) and inverse (PA -> LA) arrays.
        self._forward = np.arange(n_pages, dtype=np.int64)
        self._inverse = np.arange(n_pages, dtype=np.int64)

    @property
    def entry_bits(self) -> int:
        """Bits per entry: ceil(log2(n_pages)) (23 at the paper's scale)."""
        return max(1, (self.n_pages - 1).bit_length())

    def lookup(self, logical: int) -> int:
        """Physical page currently backing ``logical``."""
        self._check(logical)
        return int(self._forward[logical])

    def inverse(self, physical: int) -> int:
        """Logical page currently mapped to ``physical``."""
        self._check(physical)
        return int(self._inverse[physical])

    def swap_logical(self, la1: int, la2: int) -> None:
        """Exchange the physical frames of two logical pages."""
        self._check(la1)
        self._check(la2)
        if la1 == la2:
            return
        forward = self._forward
        inverse = self._inverse
        pa1, pa2 = int(forward[la1]), int(forward[la2])
        forward[la1] = pa2
        forward[la2] = pa1
        inverse[pa1] = la2
        inverse[pa2] = la1

    def swap_physical(self, pa1: int, pa2: int) -> None:
        """Exchange the logical owners of two physical frames."""
        self._check(pa1)
        self._check(pa2)
        if pa1 == pa2:
            return
        self.swap_logical(int(self._inverse[pa1]), int(self._inverse[pa2]))

    def snapshot(self) -> dict:
        """Both direction arrays, copied (mid-run persistence)."""
        return {"forward": self._forward.copy(), "inverse": self._inverse.copy()}

    def restore(self, state: dict) -> None:
        """Restore a state captured by :meth:`snapshot`.

        Rebinds rather than writes in place so a table that went through
        :meth:`reset_identity` (which rebinds the storage) restores
        correctly, and deliberately skips the bijection check — a
        snapshot taken after an unrepaired soft error must round-trip
        the corruption exactly.
        """
        self._forward = np.asarray(state["forward"], dtype=np.int64).copy()
        self._inverse = np.asarray(state["inverse"], dtype=np.int64).copy()

    def mapping(self) -> List[int]:
        """Copy of the LA -> PA map."""
        return self._forward.tolist()

    def mapping_array(self) -> np.ndarray:
        """The canonical LA -> PA array (batch path).

        Returns the live storage — treat it as read-only; it stays
        current across subsequent swaps.
        """
        return self._forward

    def validate(self) -> None:
        """Assert the bijection invariant (used by tests)."""
        problems = self.consistency_errors(limit=1)
        if problems:
            raise TableError(f"remapping table inconsistent: {problems[0]}")

    def raw_entry(self, logical: int) -> int:
        """Stored forward entry, unvalidated (fault-injection surface).

        Unlike :meth:`lookup` callers, fault-layer code must see the
        entry *as stored*, even when a bit flip has made it nonsense.
        """
        self._check(logical)
        return int(self._forward[logical])

    def poke_entry(self, logical: int, value: int) -> None:
        """Overwrite one forward entry in place — models SRAM corruption.

        Only the forward array changes; the inverse array is
        deliberately left stale, exactly as a bit flip in a hardware RT
        would leave the separately-stored inverse untouched.  That stale
        inverse is both what breaks the bijection
        (:meth:`consistency_errors` reports it) and what makes
        :meth:`repair_entry` possible.
        """
        self._check(logical)
        self._forward[logical] = int(value)

    def repair_entry(self, logical: int) -> bool:
        """Scrub-and-repair one forward entry from the inverse array.

        Scans the inverse for the unique physical frame that claims
        ``logical`` and restores the forward pointer to it.  Returns
        False when no unique owner exists (multi-bit corruption also hit
        the redundancy), in which case the caller must fall back to its
        fail-safe.
        """
        self._check(logical)
        owners = np.flatnonzero(self._inverse == logical)
        if owners.size != 1:
            return False
        self._forward[logical] = int(owners[0])
        return True

    def reset_identity(self) -> None:
        """Fail-safe: collapse both directions to the identity mapping.

        The graceful-degradation endpoint when repair is impossible — a
        degraded controller that forwards addresses unchanged still
        serves every access correctly, it just stops leveling.
        """
        self._forward = np.arange(self.n_pages, dtype=np.int64)
        self._inverse = np.arange(self.n_pages, dtype=np.int64)

    def consistency_errors(self, limit: int = 5) -> List[str]:
        """Describe every bijection violation (up to ``limit``).

        Vectorized so the invariant checker can run it every engine
        step: the clean case is a few numpy reductions; the per-entry
        messages are only materialized once something is wrong.
        """
        n = self.n_pages
        forward = self._forward
        inverse = self._inverse
        identity = np.arange(n, dtype=np.int64)
        errors: List[str] = []
        out_of_range = (forward < 0) | (forward >= n)
        for la in np.flatnonzero(out_of_range).tolist()[:limit]:
            errors.append(
                f"LA {la} -> PA {forward[la]} out of range [0, {n})"
            )
        in_range = ~out_of_range
        broken = np.zeros(n, dtype=bool)
        broken[in_range] = inverse[forward[in_range]] != identity[in_range]
        for la in np.flatnonzero(broken).tolist()[: max(0, limit - len(errors))]:
            pa = int(forward[la])
            errors.append(
                f"LA {la} -> PA {pa} but inverse says PA {pa} -> "
                f"LA {int(inverse[pa])}"
            )
        return errors

    def _check(self, page: int) -> None:
        if not 0 <= page < self.n_pages:
            raise AddressError(f"page {page} out of range [0, {self.n_pages})")

    def __len__(self) -> int:
        return self.n_pages
