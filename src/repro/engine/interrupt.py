"""Mid-run kill arming for the fault harness.

The PR 3 fault layer (:mod:`repro.exec.faults`) injects failures at the
*cell* boundary; proving crash consistency of mid-run snapshots needs a
kill at an exact **demand-write index** inside the engine loop.  This
module is the hand-off point: the fault layer arms an index at worker
entry, the engine clamps its step quota so a step boundary lands exactly
on that index, and then delivers ``SIGKILL`` to itself — an un-catchable
death at a deterministic instant, for any batch size.

Lives in :mod:`repro.engine` (not :mod:`repro.exec`) so the engine can
consult it without importing the executor layer; the module holds a
single process-local value and nothing else.
"""

from __future__ import annotations

import os
import signal
from typing import Optional

_armed_at: Optional[int] = None


def arm_kill_at(demand_index: int) -> None:
    """Arm a SIGKILL at the given absolute demand-write index."""
    global _armed_at
    if demand_index < 0:
        raise ValueError(f"kill index must be non-negative, got {demand_index}")
    _armed_at = demand_index


def armed_kill_at() -> Optional[int]:
    """The armed demand index, or None when no kill is pending."""
    return _armed_at


def clear() -> None:
    """Disarm any pending kill (used by tests and between cells)."""
    global _armed_at
    _armed_at = None


def deliver_kill() -> None:
    """Kill the current process, un-catchably, right now."""
    os.kill(os.getpid(), signal.SIGKILL)
