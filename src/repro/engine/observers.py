"""Engine observers: the per-batch hook interface.

An observer attaches to a :class:`~repro.engine.core.SimulationEngine`
and is called back at three points:

* :meth:`EngineObserver.on_run_start` — once, before the first write;
* :meth:`EngineObserver.on_batch` — after every engine step, with a
  :class:`BatchSnapshot` carrying cumulative counters, the scheme's swap
  accounting, simulated time, and lazy access to the wear state;
* :meth:`EngineObserver.on_run_end` — once, with the final
  :class:`~repro.engine.core.EngineOutcome`.

Observers replace the ad-hoc metric plumbing that used to live in each
simulation module: overhead measurement is
:class:`SchemeOverheadsObserver`, wear-over-time capture is
:class:`WearTimelineObserver`, and future metrics (attack-detection
observability, wear histograms) attach the same way without touching
the step loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..wearlevel.base import WearLeveler
    from .core import EngineOutcome, SimulationEngine


@dataclass(frozen=True)
class BatchSnapshot:
    """Engine state handed to observers after one step.

    Counter fields are cheap copies taken at snapshot time; the wear
    state is exposed through methods that read the live array, so an
    observer that does not look at wear pays nothing for it.
    """

    #: Zero-based engine step index.
    index: int
    #: Demand writes served in this step.
    served: int
    #: Cumulative demand writes served by the engine.
    demand_writes: int
    #: Device writes on the array so far.
    device_writes: int
    #: The scheme's cumulative migration writes.
    swap_writes: int
    #: The scheme's cumulative swap events.
    swap_events: int
    #: Simulated time so far, in cycles.
    simulated_cycles: float
    #: Whether the array has recorded its first failure.
    failed: bool
    #: The live scheme (for wear access; do not mutate).
    scheme: "WearLeveler" = field(repr=False)

    def wear_counts(self) -> np.ndarray:
        """Per-page write counts at this point of the run (a copy)."""
        return self.scheme.array.write_counts()

    def wear_fraction(self) -> np.ndarray:
        """Per-page wear as a fraction of endurance (a copy)."""
        return self.scheme.array.wear_fraction()

    def scheme_stats(self) -> Dict[str, float]:
        """The scheme's aggregate counters at this point of the run."""
        return self.scheme.stats()


class EngineObserver:
    """Base class for engine observers; all hooks default to no-ops.

    Observers are instrumentation, so the engine treats a raising
    observer as a broken metric, not a broken run: the observer is
    detached with a :class:`RuntimeWarning` and the run continues.
    Observers whose exceptions *are* the result — the invariant checker
    — set ``critical = True`` to propagate instead.
    """

    #: When True, exceptions from this observer abort the run instead of
    #: detaching the observer.
    critical = False

    def on_run_start(self, engine: "SimulationEngine") -> None:
        """Called once before the run's first demand write."""

    def on_batch(self, snapshot: BatchSnapshot) -> None:
        """Called after every engine step."""

    def on_run_end(self, engine: "SimulationEngine", outcome: "EngineOutcome") -> None:
        """Called once when the run is over."""


@dataclass(frozen=True)
class SchemeOverheads:
    """Measured per-demand-write overhead ratios for one scheme/workload."""

    scheme: str
    workload: str
    demand_writes: int
    swap_write_ratio: float
    swap_event_ratio: float
    extra_stats: Dict[str, float]


class SchemeOverheadsObserver(EngineObserver):
    """Collects the scheme's swap-overhead ratios at run end.

    The Figure-9 timing model needs each scheme's *measured* swap
    behaviour on each workload (swap writes per demand write, swap
    events per demand write); this observer extracts those ratios from
    the scheme's counters when the bounded drive finishes.
    """

    def __init__(self) -> None:
        self.overheads: Optional[SchemeOverheads] = None

    def on_run_end(self, engine: "SimulationEngine", outcome: "EngineOutcome") -> None:
        stats = engine.scheme.stats()
        self.overheads = SchemeOverheads(
            scheme=engine.scheme.name,
            workload=engine.driver.workload_name,
            demand_writes=outcome.demand_writes,
            swap_write_ratio=stats["swap_write_ratio"],
            swap_event_ratio=stats["swap_events"] / max(1.0, stats["demand_writes"]),
            extra_stats=stats,
        )


class WearTimelineObserver(EngineObserver):
    """Records ``(demand_writes, wear_fraction)`` samples over a run.

    ``every`` thins the sampling to one snapshot per that many engine
    steps (wear snapshots copy one array per sample, so per-step
    sampling of a per-write run would dominate the cost).
    """

    def __init__(self, every: int = 1) -> None:
        if every < 1:
            raise ValueError(f"sampling stride must be positive, got {every}")
        self.every = every
        self.samples: List[Tuple[int, np.ndarray]] = []

    def on_batch(self, snapshot: BatchSnapshot) -> None:
        if snapshot.index % self.every == 0 or snapshot.failed:
            self.samples.append((snapshot.demand_writes, snapshot.wear_fraction()))
