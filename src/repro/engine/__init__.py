"""The composable simulation engine and its observer interface.

* :mod:`repro.engine.core` — :class:`SimulationEngine`, the one step
  loop every simulation path (exact lifetime, fast-forward, overhead
  measurement) is configured from, plus the batched write protocol;
* :mod:`repro.engine.observers` — per-batch observer hooks and the
  built-in observers (overhead collection, wear timelines).
"""

from .core import DEFAULT_CHUNK_DEMAND, EngineOutcome, SimulationEngine
from .observers import (
    BatchSnapshot,
    EngineObserver,
    SchemeOverheads,
    SchemeOverheadsObserver,
    WearTimelineObserver,
)

__all__ = [
    "DEFAULT_CHUNK_DEMAND",
    "EngineOutcome",
    "SimulationEngine",
    "BatchSnapshot",
    "EngineObserver",
    "SchemeOverheads",
    "SchemeOverheadsObserver",
    "WearTimelineObserver",
]
