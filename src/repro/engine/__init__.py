"""The composable simulation engine and its observer interface.

* :mod:`repro.engine.core` — :class:`SimulationEngine`, the one step
  loop every simulation path (exact lifetime, fast-forward, overhead
  measurement) is configured from, plus the batched write protocol;
* :mod:`repro.engine.observers` — per-batch observer hooks and the
  built-in observers (overhead collection, wear timelines);
* :mod:`repro.engine.invariants` — :class:`InvariantCheckObserver`,
  runtime verification of wear-leveler state invariants (RT
  bijectivity, write-count conservation, ET immutability, SWPT
  validity) raising :class:`repro.errors.InvariantViolation`;
* :mod:`repro.engine.snapshot` — the versioned, CRC-guarded mid-run
  snapshot container and :class:`SnapshotPlan` (sub-cell recovery,
  ``docs/robustness.md``);
* :mod:`repro.engine.interrupt` — the fault harness's kill-at-demand
  arming point, honored by the engine step loop.
"""

from .core import DEFAULT_CHUNK_DEMAND, EngineOutcome, SimulationEngine
from .invariants import InvariantCheckObserver
from .observers import (
    BatchSnapshot,
    EngineObserver,
    SchemeOverheads,
    SchemeOverheadsObserver,
    WearTimelineObserver,
)
from .snapshot import (
    SNAPSHOT_FORMAT_VERSION,
    SNAPSHOT_MAGIC,
    SnapshotPlan,
    discard_snapshot,
    read_snapshot,
    write_snapshot,
)

__all__ = [
    "DEFAULT_CHUNK_DEMAND",
    "EngineOutcome",
    "SimulationEngine",
    "InvariantCheckObserver",
    "BatchSnapshot",
    "EngineObserver",
    "SchemeOverheads",
    "SchemeOverheadsObserver",
    "WearTimelineObserver",
    "SNAPSHOT_FORMAT_VERSION",
    "SNAPSHOT_MAGIC",
    "SnapshotPlan",
    "discard_snapshot",
    "read_snapshot",
    "write_snapshot",
]
