"""Versioned, CRC-guarded mid-run snapshot format.

A snapshot captures the complete mutable state of an engine run — PCM
wear arrays, every table and RNG register of the scheme, the driver and
stream position, the soft-error schedule, and the engine's own counters
— as a *state tree*: nested dicts/lists of Python scalars and numpy
arrays.  The container on disk is::

    magic "TWLSNAP1" | version u32 | header_len u32 | payload_len u64
    | crc32 u32 | header JSON | payload

where the header holds the JSON-able skeleton of the tree (numpy arrays
replaced by indexed placeholders plus a dtype/shape table) and the
payload is the concatenated, zlib-compressed array bytes.  The CRC
covers header and payload, so truncation or corruption anywhere raises
:class:`repro.errors.SnapshotError` instead of silently resuming from
garbage.

Writes are crash-consistent: the container is written to a
``<path>.<pid>.tmp`` sibling, fsynced, then atomically renamed over the
target (the same idiom as the result cache), so a reader only ever sees
a complete snapshot or none at all — a ``SIGKILL`` mid-write leaves the
previous snapshot intact.

Derivable state (endurance tables, Feistel word tables, hash families,
FTL layout permutations) is deliberately **not** serialized: restore
rebuilds it from the run's configuration, keeping snapshots small and
the format honest about what is state and what is derivation.

Snapshot cadence is an **execution knob**: which snapshots exist can
never change a run's results, so ``snapshot_every`` is excluded from
cache fingerprints exactly like ``batch_size`` (rule TWL003).  The
wall-clock cadence uses an injected clock callable — this module never
reads the clock itself (rule TWL002).
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..errors import SnapshotError

SNAPSHOT_MAGIC = b"TWLSNAP1"
SNAPSHOT_FORMAT_VERSION = 1

#: Fixed-size fields after the magic: format version, header length,
#: compressed payload length, CRC32 of header+payload.
_FIXED = struct.Struct("<IIQI")

#: Placeholder key marking a serialized numpy array in the skeleton.
_ARRAY_KEY = "__twl_nd__"


# ---------------------------------------------------------------------
# State-tree codec
# ---------------------------------------------------------------------
def _pack(node: Any, arrays: List[np.ndarray]) -> Any:
    """Replace numpy arrays with indexed placeholders, JSON-ify the rest."""
    if isinstance(node, np.ndarray):
        arrays.append(np.ascontiguousarray(node))
        return {_ARRAY_KEY: len(arrays) - 1}
    if isinstance(node, dict):
        packed = {}
        for key, value in node.items():
            if not isinstance(key, str):
                raise SnapshotError(
                    f"state-tree keys must be strings, got {key!r}"
                )
            if key == _ARRAY_KEY:
                raise SnapshotError(f"reserved key {key!r} in state tree")
            packed[key] = _pack(value, arrays)
        return packed
    if isinstance(node, (list, tuple)):
        return [_pack(item, arrays) for item in node]
    if isinstance(node, np.integer):
        return int(node)
    if isinstance(node, np.floating):
        return float(node)
    if node is None or isinstance(node, (bool, int, float, str)):
        return node
    raise SnapshotError(
        f"cannot serialize {type(node).__name__!r} in a snapshot state tree"
    )


def _unpack(node: Any, arrays: List[np.ndarray]) -> Any:
    """Invert :func:`_pack`, resolving array placeholders."""
    if isinstance(node, dict):
        if set(node) == {_ARRAY_KEY}:
            index = node[_ARRAY_KEY]
            if not 0 <= index < len(arrays):
                raise SnapshotError(f"array placeholder {index} out of range")
            return arrays[index]
        return {key: _unpack(value, arrays) for key, value in node.items()}
    if isinstance(node, list):
        return [_unpack(item, arrays) for item in node]
    return node


# ---------------------------------------------------------------------
# Container I/O
# ---------------------------------------------------------------------
def write_snapshot(
    path: str, state: Dict[str, Any], meta: Optional[Dict[str, Any]] = None
) -> None:
    """Atomically write ``state`` (plus ``meta``) as a snapshot at ``path``.

    The write goes through a pid-suffixed temp file and ``os.replace``;
    on any failure the temp file is removed, so a crash mid-write can
    never leave a partial container under the target name.
    """
    arrays: List[np.ndarray] = []
    skeleton = _pack(state, arrays)
    header = {
        "arrays": [
            {"dtype": array.dtype.str, "shape": list(array.shape)}
            for array in arrays
        ],
        "meta": _pack(meta or {}, []),
        "state": skeleton,
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    payload = zlib.compress(
        b"".join(array.tobytes() for array in arrays), level=1
    )
    crc = zlib.crc32(header_bytes + payload) & 0xFFFFFFFF
    temp_path = f"{path}.{os.getpid()}.tmp"
    try:
        with open(temp_path, "wb") as handle:
            handle.write(SNAPSHOT_MAGIC)
            handle.write(
                _FIXED.pack(
                    SNAPSHOT_FORMAT_VERSION, len(header_bytes), len(payload), crc
                )
            )
            handle.write(header_bytes)
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


def read_snapshot(path: str) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Read and validate a snapshot; returns ``(meta, state)``.

    Raises :class:`SnapshotError` on a bad magic, unknown version,
    truncation, CRC mismatch or malformed header — never returns a
    partially decoded state.
    """
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError as error:
        raise SnapshotError(f"cannot read snapshot {path!r}: {error}") from error
    prefix = len(SNAPSHOT_MAGIC) + _FIXED.size
    if len(blob) < prefix or not blob.startswith(SNAPSHOT_MAGIC):
        raise SnapshotError(f"{path!r} is not a TWL snapshot (bad magic)")
    version, header_len, payload_len, crc = _FIXED.unpack(
        blob[len(SNAPSHOT_MAGIC) : prefix]
    )
    if version != SNAPSHOT_FORMAT_VERSION:
        raise SnapshotError(
            f"{path!r} has snapshot format version {version}; "
            f"this build reads version {SNAPSHOT_FORMAT_VERSION}"
        )
    if len(blob) != prefix + header_len + payload_len:
        raise SnapshotError(
            f"{path!r} is truncated: expected "
            f"{prefix + header_len + payload_len} bytes, got {len(blob)}"
        )
    header_bytes = blob[prefix : prefix + header_len]
    payload = blob[prefix + header_len :]
    if zlib.crc32(header_bytes + payload) & 0xFFFFFFFF != crc:
        raise SnapshotError(f"{path!r} failed its CRC check")
    try:
        header = json.loads(header_bytes.decode("utf-8"))
        specs = header["arrays"]
        raw = zlib.decompress(payload)
        arrays: List[np.ndarray] = []
        offset = 0
        for spec in specs:
            dtype = np.dtype(spec["dtype"])
            shape = tuple(spec["shape"])
            nbytes = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
            chunk = raw[offset : offset + nbytes]
            if len(chunk) != nbytes:
                raise SnapshotError(f"{path!r} array table overruns payload")
            arrays.append(
                np.frombuffer(chunk, dtype=dtype).reshape(shape).copy()
            )
            offset += nbytes
        meta = _unpack(header["meta"], [])
        state = _unpack(header["state"], arrays)
    except SnapshotError:
        raise
    except (KeyError, TypeError, ValueError, zlib.error) as error:
        raise SnapshotError(f"{path!r} is malformed: {error}") from error
    return meta, state


def discard_snapshot(path: str) -> None:
    """Remove a snapshot and any temp-file leftovers of partial writes.

    Used after a cell completes (its snapshot is spent) and by the
    executor's timeout path, so interrupted runs never leak ``.snap`` /
    ``.tmp`` files into the cache directory.  Missing files are fine.
    """
    try:
        os.unlink(path)
    except OSError:
        pass
    directory, name = os.path.split(path)
    try:
        entries = os.listdir(directory or ".")
    except OSError:
        return
    for entry in sorted(entries):
        if entry.startswith(name + ".") and entry.endswith(".tmp"):
            try:
                os.unlink(os.path.join(directory, entry))
            except OSError:
                pass


# ---------------------------------------------------------------------
# Cadence plan
# ---------------------------------------------------------------------
@dataclass(frozen=True)
class SnapshotPlan:
    """Where and how often an engine run persists its state.

    ``every`` is a demand-write cadence: the engine clamps its step
    quota so emission lands on exact multiples, making snapshot instants
    a pure function of the cadence.  ``seconds`` is a wall-clock cadence
    evaluated at step boundaries via the injected ``clock`` callable
    (the engine itself never reads the clock, rule TWL002).  Both are
    execution knobs — results are bit-identical with or without them.

    ``resume=True`` makes the run restore from an existing snapshot at
    ``path`` before serving any demand; a corrupt snapshot raises
    :class:`SnapshotError` unless ``strict=False``, in which case it is
    discarded and the run starts from scratch.
    """

    path: str
    every: Optional[int] = None
    seconds: Optional[float] = None
    clock: Optional[Callable[[], float]] = None
    resume: bool = True
    strict: bool = True
    meta: Optional[Dict[str, Any]] = field(default=None)

    def __post_init__(self) -> None:
        if not self.path:
            raise SnapshotError("snapshot plan needs a non-empty path")
        if self.every is not None and self.every < 1:
            raise SnapshotError(
                f"snapshot cadence must be >= 1 demand, got {self.every}"
            )
        if self.seconds is not None:
            if self.seconds <= 0:
                raise SnapshotError(
                    f"snapshot period must be positive, got {self.seconds}"
                )
            if self.clock is None:
                raise SnapshotError(
                    "a wall-clock cadence needs an injected clock callable"
                )


__all__ = [
    "SNAPSHOT_FORMAT_VERSION",
    "SNAPSHOT_MAGIC",
    "SnapshotPlan",
    "discard_snapshot",
    "read_snapshot",
    "write_snapshot",
]
