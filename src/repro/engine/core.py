"""The composable simulation engine.

:class:`SimulationEngine` owns the step loop every simulation path in
the package runs through: pull demand writes from a workload driver,
push them through a wear-leveling scheme, watch the PCM array for its
first failure, and notify observers after every batch.  The lifetime,
fast-forward and overhead modules in :mod:`repro.sim` are thin
configurations of this one loop — none of them implements stepping or
failure detection of its own.

Two data paths, selected by ``batch_size``:

* ``batch_size == 1`` (legacy, the default) delegates each chunk to the
  driver's per-write hot loop (:meth:`WorkloadDriver.drive`), whose
  locals-bound Python loop is the fastest way to serve writes one at a
  time;
* ``batch_size > 1`` runs the batched write protocol: the driver yields
  logical-address arrays (:meth:`WorkloadDriver.next_batch`), the scheme
  serves them in one call (:meth:`WearLeveler.write_batch`), and the
  per-request physical write counts are fed back to the driver
  (:meth:`WorkloadDriver.observe_batch`).  Batched runs are
  **bit-identical** to per-write runs — same failure page, same write
  counts, same swap counters — a contract every scheme's ``write_batch``
  must uphold and ``tests/test_engine_identity.py`` enforces.

Observers (:mod:`repro.engine.observers`) receive a
:class:`~repro.engine.observers.BatchSnapshot` after every engine step:
cumulative demand/device writes, the scheme's swap counters, simulated
time, and lazy access to the wear state.  They are the single
attachment point for metrics, timelines and detection logic.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional, Tuple

from ..config import TimingConfig
from ..devtools import sanitize
from ..errors import DeterminismViolation, SimulationError, SnapshotError
from ..pcm.faults import FirstFailure
from . import interrupt
from .observers import BatchSnapshot, EngineObserver
from .snapshot import SnapshotPlan, write_snapshot

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..pcm.softerrors import SoftErrorInjector
    from ..sim.drivers import WorkloadDriver
    from ..wearlevel.base import WearLeveler

#: Per-write-path chunking quota: drivers serve at most this many demand
#: writes per engine step, so observers fire at a bounded granularity
#: even in legacy mode.
DEFAULT_CHUNK_DEMAND = 1 << 20


@dataclass(frozen=True)
class EngineOutcome:
    """State of an engine run when control returns to the caller."""

    #: Demand writes served by this engine (all ``drive`` calls).
    demand_writes: int
    #: Device writes on the array at the end of the run (unclipped).
    device_writes: int
    #: Whether the array recorded its first failure.
    failed: bool
    #: The first wear-out event, if any.
    failure: Optional[FirstFailure]
    #: Engine steps taken (observer callbacks fired per step).
    batches: int
    #: Simulated time at the response-latency model, in cycles.
    simulated_cycles: float


class SimulationEngine:
    """Composable step loop: driver -> scheme -> array, with observers.

    Parameters
    ----------
    scheme:
        The wear-leveling scheme under test (owns the PCM array).
    driver:
        The workload driver producing demand writes.
    batch_size:
        Demand writes per engine step.  1 selects the legacy per-write
        path; larger values select the batched write protocol.
    observers:
        :class:`EngineObserver` instances notified per batch and at run
        boundaries.  A non-``critical`` observer that raises is detached
        with a warning instead of aborting the run (degraded metrics
        beat a killed campaign); observers with ``critical = True`` —
        the invariant checker — propagate.
    timing:
        Latency parameters for the simulated-time accumulator (one page
        write costs ``timing.write_cycles``).
    soft_errors:
        Optional :class:`repro.pcm.softerrors.SoftErrorInjector`.  When
        active, every step's quota is clamped so the step ends exactly
        on the next scheduled flip instant (an absolute demand-write
        index), and due flips are delivered after the step before
        observers see the snapshot — which keeps batched runs
        bit-identical to serial runs under nonzero fault rates.
    snapshots:
        Optional :class:`repro.engine.snapshot.SnapshotPlan`.  With a
        demand cadence (``every``), steps are clamped so snapshots land
        on exact absolute demand indices; with a time cadence
        (``seconds`` plus an injected clock) they land at whatever step
        boundary the interval elapses.  Emission is inert: it never
        changes what a run computes, only when its state hits disk.
    """

    def __init__(
        self,
        scheme: "WearLeveler",
        driver: "WorkloadDriver",
        batch_size: int = 1,
        observers: Iterable[EngineObserver] = (),
        timing: TimingConfig = TimingConfig(),
        chunk_demand: int = DEFAULT_CHUNK_DEMAND,
        soft_errors: Optional["SoftErrorInjector"] = None,
        snapshots: Optional[SnapshotPlan] = None,
    ) -> None:
        if batch_size < 1:
            raise SimulationError(f"batch size must be positive, got {batch_size}")
        if chunk_demand < 1:
            raise SimulationError(f"chunk size must be positive, got {chunk_demand}")
        self.scheme = scheme
        self.driver = driver
        self.batch_size = batch_size
        self.timing = timing
        self._chunk_demand = chunk_demand
        self._observers: Tuple[EngineObserver, ...] = tuple(observers)
        self._soft_errors = (
            soft_errors
            if soft_errors is not None and soft_errors.active
            else None
        )
        #: Cumulative demand writes served by this engine instance.
        self.demand_served = 0
        #: Engine steps taken so far.
        self.batches = 0
        #: Simulated time spent serving those writes, in cycles.
        self.simulated_cycles = 0.0
        self._snapshots = snapshots
        #: Snapshot files emitted by this engine instance.
        self.snapshots_written = 0
        self._last_snapshot_clock: Optional[float] = (
            snapshots.clock()
            if snapshots is not None and snapshots.clock is not None
            else None
        )

    # ------------------------------------------------------------------
    # Observer management
    # ------------------------------------------------------------------
    def add_observer(self, observer: EngineObserver) -> None:
        """Attach ``observer`` to subsequent steps of this engine."""
        self._observers = self._observers + (observer,)  # twl: allow(TWL008) reason=observers are per-process instrumentation; the harness re-attaches them on resume

    def _notify(self, hook: str, *args: object) -> None:
        """Dispatch one observer callback with detach-on-failure.

        Observers are instrumentation: a metric bug must degrade the
        metric, not kill a multi-hour campaign.  A non-``critical``
        observer that raises is dropped from this engine with a
        one-line warning; later observers still fire.  Observers that
        *enforce* correctness (``critical = True``) propagate — the
        invariant checker failing IS the result.
        """
        for observer in self._observers:
            try:
                getattr(observer, hook)(*args)
            except Exception as error:
                if getattr(observer, "critical", False):
                    raise
                if isinstance(error, DeterminismViolation):
                    # A sanitizer finding is never an observer bug to
                    # shrug off — the run's purity is already broken.
                    raise
                self._observers = tuple(
                    existing
                    for existing in self._observers
                    if existing is not observer
                )
                warnings.warn(
                    f"engine observer {type(observer).__name__} raised "
                    f"{type(error).__name__} in {hook} and was detached: "
                    f"{error}",
                    RuntimeWarning,
                    stacklevel=3,
                )

    # ------------------------------------------------------------------
    # The step loop
    # ------------------------------------------------------------------
    def drive(self, max_demand: int) -> int:
        """Serve up to ``max_demand`` demand writes; stop at failure.

        This is the one step loop of the package.  Returns the number of
        demand writes actually served (less than ``max_demand`` when the
        array fails or the driver stalls).
        """
        if max_demand < 0:
            raise ValueError("max_demand must be non-negative")
        # Engine stepping is a sanitizer-protected region: when armed
        # (REPRO_SANITIZE=1), any global-RNG call from a driver, scheme
        # or observer raises DeterminismViolation.
        sanitize.enter_protected("SimulationEngine stepping")
        try:
            return self._drive_loop(max_demand)
        finally:
            sanitize.exit_protected()

    def _drive_loop(self, max_demand: int) -> int:
        scheme = self.scheme
        driver = self.driver
        array = scheme.array
        injector = self._soft_errors
        batched = self.batch_size > 1
        write_cycles = float(self.timing.write_cycles)
        served_total = 0
        plan = self._snapshots
        cadence = plan.every if plan is not None else None
        kill_at = interrupt.armed_kill_at()
        while served_total < max_demand and not array.failed:
            quota = max_demand - served_total
            if injector is not None:
                # Clamp the step so it ends exactly on the next scheduled
                # flip instant (an absolute demand-write index) — the
                # delivery point is then the same for every batch size,
                # extending the batch-identity contract to faulted runs.
                quota = min(quota, injector.demand_until_next(self.demand_served))
            if cadence is not None:
                # Same clamp for the snapshot cadence: snapshots land on
                # exact absolute demand indices (multiples of ``every``),
                # so a resumed run re-enters the identical step sequence.
                boundary = (self.demand_served // cadence + 1) * cadence
                quota = min(quota, boundary - self.demand_served)
            if kill_at is not None and kill_at > self.demand_served:
                # Fault-harness kill point: die exactly at the armed
                # demand index, never mid-batch.
                quota = min(quota, kill_at - self.demand_served)
            device_before = array.total_writes
            if batched:
                addresses = driver.next_batch(min(self.batch_size, quota))
                if len(addresses) == 0:
                    break
                counts = scheme.write_batch(addresses)
                driver.observe_batch(counts)
                served = int(len(counts))
            else:
                served = driver.drive(scheme, min(self._chunk_demand, quota))
            if served == 0:
                break
            served_total += served
            self.demand_served += served
            self.batches += 1
            self.simulated_cycles += write_cycles * (
                array.total_writes - device_before
            )
            if injector is not None:
                # Deliver before observers so the invariant checker sees
                # the corrupted (or repaired) state at the exact step the
                # flip landed.
                injector.deliver(self.demand_served)
            if self._observers:
                snapshot = BatchSnapshot(
                    index=self.batches - 1,
                    served=served,
                    demand_writes=self.demand_served,
                    device_writes=array.total_writes,
                    swap_writes=scheme.swap_writes,
                    swap_events=scheme.swap_events,
                    simulated_cycles=self.simulated_cycles,
                    failed=array.failed,
                    scheme=scheme,
                )
                self._notify("on_batch", snapshot)
            if plan is not None:
                due = (
                    cadence is not None and self.demand_served % cadence == 0
                )
                if not due and plan.seconds is not None:
                    now = plan.clock()
                    if now - self._last_snapshot_clock >= plan.seconds:
                        self._last_snapshot_clock = now  # twl: allow(TWL008) reason=wall-clock cadence register; restarts from the resume-time clock by design
                        due = True
                if due:
                    self.emit_snapshot()
            if kill_at is not None and self.demand_served >= kill_at:
                # The snapshot (if due at this boundary) is already on
                # disk: a crash-consistent process death.
                interrupt.deliver_kill()
        return served_total

    # ------------------------------------------------------------------
    # Mid-run persistence
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Complete engine state as a plain state tree.

        Everything a resume needs: the engine counters, the array's wear
        state, the scheme's tables/RNG registers, the driver's stream
        position, and (when soft errors are active) the injector's
        schedule position.  Restoring this tree into a freshly
        constructed engine of the same configuration reproduces the
        run's future bit-exactly.
        """
        state: dict = {
            "array": self.scheme.array.snapshot(),
            "batches": self.batches,
            "demand_served": self.demand_served,
            "driver": self.driver.snapshot(),
            "scheme": self.scheme.snapshot(),
            "simulated_cycles": self.simulated_cycles,
        }
        if self._soft_errors is not None:
            state["soft_errors"] = self._soft_errors.snapshot()
        return state

    def restore_state(self, state: dict) -> None:
        """Restore a state captured by :meth:`snapshot_state`.

        Must run on a freshly constructed engine: the injector's
        reload-style repair hooks capture architectural register values
        at construction, so the scheme is restored only *after* every
        construction-time capture has happened.
        """
        has_injector = self._soft_errors is not None
        if has_injector != ("soft_errors" in state):
            raise SnapshotError(
                "snapshot/engine soft-error configuration mismatch: "
                f"snapshot {'has' if 'soft_errors' in state else 'lacks'} "
                "injector state"
            )
        self.scheme.array.restore(state["array"])  # type: ignore[arg-type]
        self.scheme.restore(state["scheme"])  # type: ignore[arg-type]
        self.driver.restore(state["driver"])  # type: ignore[arg-type]
        if self._soft_errors is not None:
            self._soft_errors.restore(state["soft_errors"])  # type: ignore[arg-type]
        self.batches = int(state["batches"])  # type: ignore[arg-type]
        self.demand_served = int(state["demand_served"])  # type: ignore[arg-type]
        self.simulated_cycles = float(state["simulated_cycles"])  # type: ignore[arg-type]

    def emit_snapshot(self) -> str:
        """Atomically write the current state to the plan's path."""
        plan = self._snapshots
        if plan is None:
            raise SimulationError("engine has no snapshot plan")
        write_snapshot(plan.path, self.snapshot_state(), meta=plan.meta)
        self.snapshots_written += 1  # twl: allow(TWL008) reason=per-process emission counter, not resumable simulation state
        return plan.path

    # ------------------------------------------------------------------
    # Run orchestration
    # ------------------------------------------------------------------
    def begin_run(self) -> None:
        """Notify observers that a run is starting (multi-phase runs
        like fast-forward call this once up front)."""
        self._notify("on_run_start", self)

    def end_run(self) -> EngineOutcome:
        """Build the outcome and notify observers the run is over."""
        outcome = self.outcome()
        self._notify("on_run_end", self, outcome)
        return outcome

    def outcome(self) -> EngineOutcome:
        """Snapshot of the run state, without ending the run."""
        array = self.scheme.array
        return EngineOutcome(
            demand_writes=self.demand_served,
            device_writes=array.total_writes,
            failed=array.failed,
            failure=array.first_failure,
            batches=self.batches,
            simulated_cycles=self.simulated_cycles,
        )

    def run(self, max_demand: int, require_failure: bool = False) -> EngineOutcome:
        """One complete run: serve up to ``max_demand`` demand writes.

        Raises :class:`SimulationError` if the array has already failed,
        or — with ``require_failure`` — if the quota is exhausted without
        a failure (a sign the scale was chosen too large for exact
        simulation; use fast-forward instead).
        """
        if self.scheme.array.failed and self.demand_served == 0:
            raise SimulationError("array already failed before simulation start")
        self.begin_run()
        self.drive(max_demand)
        if require_failure and not self.scheme.array.failed:
            raise SimulationError(
                f"no failure within {max_demand} demand writes; "
                "reduce the array scale or use fast_forward_to_failure"
            )
        return self.end_run()

    def simulated_seconds(self) -> float:
        """Simulated time at the configured clock, in seconds."""
        return self.timing.cycles_to_seconds(self.simulated_cycles)

    def __repr__(self) -> str:
        return (
            f"SimulationEngine(scheme={self.scheme.name!r}, "
            f"workload={self.driver.workload_name!r}, "
            f"batch_size={self.batch_size}, demand_served={self.demand_served})"
        )
