"""Runtime invariant checking for engine runs.

:class:`InvariantCheckObserver` rides the observer interface to verify,
after every engine step, the contracts every wear-leveling scheme must
maintain no matter what the workload (or an injected soft error) does:

* **RT bijectivity** — the remapping table's forward and inverse arrays
  agree and every entry is in range
  (:meth:`repro.tables.remap.RemappingTable.consistency_errors`);
* **write-count conservation** — device writes on the array equal the
  writes the scheme issued (demand plus swap), i.e. no write is lost or
  double-counted anywhere in the stack;
* **ET immutability** — the endurance table never changes after format
  time (the paper stores tested endurance once; a changed entry means
  corrupted state, not a legal update);
* **SWPT pairing validity** — the pair table remains an involution
  (:meth:`repro.tables.pair_table.PairTable.involution_errors`).

A failed check raises :class:`repro.errors.InvariantViolation` naming
the scheme, the engine step and the offending table.  The observer is
``critical``: unlike metric observers, its exception aborts the run —
detecting corruption *is* its job.  Structures a scheme does not have
are skipped, so the checker attaches to any scheme; with no injected
faults it doubles as a (cheap, vectorized) self-test of the whole
simulation stack and provably never perturbs results (it only reads).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

import numpy as np

from ..errors import InvariantViolation
from .observers import BatchSnapshot, EngineObserver

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..wearlevel.base import WearLeveler
    from .core import EngineOutcome, SimulationEngine


class InvariantCheckObserver(EngineObserver):
    """Verify wear-leveler state invariants after every engine step."""

    critical = True

    def __init__(self, every: int = 1) -> None:
        if every < 1:
            raise ValueError(f"checking stride must be positive, got {every}")
        self.every = every
        #: Number of check passes performed (for tests / reporting).
        self.checks = 0
        self._scheme: Optional["WearLeveler"] = None
        self._et_snapshot: Optional[np.ndarray] = None
        self._write_base = 0

    def on_run_start(self, engine: "SimulationEngine") -> None:
        scheme = engine.scheme
        self._prime(scheme)

    def on_batch(self, snapshot: BatchSnapshot) -> None:
        if snapshot.index % self.every == 0 or snapshot.failed:
            self._check(snapshot.scheme, snapshot.index)

    def on_run_end(self, engine: "SimulationEngine", outcome: "EngineOutcome") -> None:
        self._check(engine.scheme, outcome.batches)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _prime(self, scheme: "WearLeveler") -> None:
        """Capture the reference state the invariants are checked against.

        The write-count baseline is a *delta* base (array writes minus
        scheme-issued writes at run start) so the checker also works on
        runs that begin on pre-worn arrays (fast-forward phases).
        """
        self._scheme = scheme
        endurance_table = getattr(scheme, "endurance_table", None)
        self._et_snapshot = (
            None if endurance_table is None else endurance_table.as_array()
        )
        self._write_base = (
            scheme.array.total_writes - scheme.total_physical_writes
        )

    def _check(self, scheme: "WearLeveler", step: int) -> None:
        if scheme is not self._scheme:
            # drive() without begin_run(), or a different scheme than the
            # one primed: (re-)baseline against this scheme now.
            self._prime(scheme)
        self.checks += 1
        name = scheme.name

        drift = (
            scheme.array.total_writes
            - scheme.total_physical_writes
            - self._write_base
        )
        if drift != 0:
            raise InvariantViolation(
                name,
                step,
                "accounting",
                [
                    f"device writes drifted from issued writes by {drift} "
                    f"(array {scheme.array.total_writes}, scheme demand "
                    f"{scheme.demand_writes} + swap {scheme.swap_writes})"
                ],
            )

        remap = getattr(scheme, "remap", None)
        if remap is not None:
            problems: List[str] = remap.consistency_errors()
            if problems:
                raise InvariantViolation(name, step, "rt", problems)

        if self._et_snapshot is not None:
            endurance_table = getattr(scheme, "endurance_table")
            if not np.array_equal(
                endurance_table.as_array(), self._et_snapshot
            ):
                changed = np.flatnonzero(
                    endurance_table.as_array() != self._et_snapshot
                ).tolist()[:5]
                raise InvariantViolation(
                    name,
                    step,
                    "et",
                    [
                        "endurance table mutated after format time at "
                        f"page(s) {changed}"
                    ],
                )

        pair_table = getattr(scheme, "pair_table", None)
        if pair_table is not None:
            problems = pair_table.involution_errors()
            if problems:
                raise InvariantViolation(name, step, "swpt", problems)


__all__ = ["InvariantCheckObserver"]
