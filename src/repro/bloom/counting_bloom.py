"""Counting Bloom filter.

A standard counting Bloom filter with saturating small counters, matching
what BWL's hardware would provision.  ``estimate`` returns the count-min
style minimum over probe positions, which BWL compares against its dynamic
hot threshold.
"""

from __future__ import annotations

from ..errors import ConfigError
from .hashes import HashFamily


class CountingBloomFilter:
    """Counting Bloom filter over non-negative integer keys."""

    def __init__(self, bits: int, hashes: int, counter_bits: int = 8, seed: int = 0):
        if counter_bits < 1 or counter_bits > 30:
            raise ConfigError(
                f"counter width must be in [1, 30] bits, got {counter_bits}"
            )
        self._family = HashFamily(hashes, bits, seed=seed)
        self.bits = bits
        self.hashes = hashes
        self.counter_bits = counter_bits
        self._max = (1 << counter_bits) - 1
        self._counters = [0] * bits
        self.inserted = 0

    @property
    def storage_bits(self) -> int:
        """Total storage the filter occupies."""
        return self.bits * self.counter_bits

    def insert(self, key: int) -> None:
        """Count one occurrence of ``key`` (counters saturate)."""
        for index in self._family.indices(key):
            if self._counters[index] < self._max:
                self._counters[index] += 1
        self.inserted += 1

    def estimate(self, key: int) -> int:
        """Upper-bound estimate of ``key``'s count (min over probes)."""
        # Explicit loop instead of min(generator): this sits in every
        # BWL demand write and the generator costs ~2x in CPython.
        counters = self._counters
        best = -1
        for index in self._family.indices(key):
            value = counters[index]
            if best < 0 or value < best:
                best = value
        return best

    def contains(self, key: int, threshold: int = 1) -> bool:
        """Whether ``key``'s estimated count reaches ``threshold``."""
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        return self.estimate(key) >= threshold

    def snapshot(self) -> dict:
        """Counters plus the insert total (the hash family is derivable)."""
        return {"counters": list(self._counters), "inserted": self.inserted}

    def restore(self, state: dict) -> None:
        """Restore a state captured by :meth:`snapshot`."""
        counters = [int(value) for value in state["counters"]]
        if len(counters) != self.bits:
            raise ConfigError(
                f"snapshot holds {len(counters)} counters, filter has {self.bits}"
            )
        self._counters = counters
        self.inserted = int(state["inserted"])

    def clear(self) -> None:
        """Reset all counters (done at each phase boundary in BWL)."""
        self._counters = [0] * self.bits
        self.inserted = 0

    def load_factor(self) -> float:
        """Fraction of counters that are non-zero."""
        occupied = sum(1 for c in self._counters if c)
        return occupied / self.bits
