"""Counting Bloom filter substrate for the BWL baseline [Yun et al., DATE'12].

BWL identifies hot logical addresses and worn physical pages with counting
Bloom filters instead of full per-page counters; this subpackage provides
the filter and the hardware-style hash family it probes with.
"""

from .hashes import HashFamily
from .counting_bloom import CountingBloomFilter

__all__ = ["HashFamily", "CountingBloomFilter"]
