"""Hash family for Bloom filters.

Hardware Bloom filters use a small set of cheap independent hash
functions.  We model them with multiply-shift hashing (Dietzfelbinger et
al.): ``h_i(x) = (a_i * x + b_i) >> (64 - log2(m))``, which is 2-universal
and maps onto a multiplier plus a barrel shifter in hardware.
"""

from __future__ import annotations

from typing import List

from ..errors import ConfigError
from ..rng.streams import derive_seed

_MASK64 = 0xFFFFFFFFFFFFFFFF


class HashFamily:  # twl: allow(TWL008) reason=_cache memoizes a pure hash; rebuilding it after a restore is behaviour-neutral
    """``k`` independent multiply-shift hashes onto ``[0, m)``.

    ``m`` must be a power of two (the shift amount is 64 - log2(m)).
    """

    def __init__(self, k: int, m: int, seed: int = 0):
        if k < 1:
            raise ConfigError(f"need at least one hash, got {k}")
        if m < 2 or (m & (m - 1)) != 0:
            raise ConfigError(f"range m must be a power of two >= 2, got {m}")
        self.k = k
        self.m = m
        self._shift = 64 - (m.bit_length() - 1)
        self._params = []
        for i in range(k):
            a = derive_seed(seed, "bloom-a", i) | 1  # multiplier must be odd
            b = derive_seed(seed, "bloom-b", i)
            self._params.append((a & _MASK64, b & _MASK64))
        # Keys are page addresses and recur constantly in simulation hot
        # loops; memoizing the probe positions is behaviour-neutral (the
        # function is pure) and removes three wide multiplies per probe.
        self._cache = {}

    def indices(self, key: int) -> List[int]:
        """The ``k`` probe positions for ``key``."""
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if key < 0:
            raise ValueError(f"key must be non-negative, got {key}")
        out = []
        for a, b in self._params:
            out.append(((a * key + b) & _MASK64) >> self._shift)
        self._cache[key] = out
        return out
