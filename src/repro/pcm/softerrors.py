"""Deterministic soft-error injection into controller SRAM state.

The executor's fault layer (``repro.exec.faults``, PR 3) attacks the
*campaign* — worker crashes, hangs, cache corruption.  This module
attacks the *simulated hardware*: single-bit upsets in the SRAM
structures every wear-leveling controller depends on — remapping-table
entries, write counters, SWPT/WNT state, RNG registers — which is the
co-design hazard WoLFRaM and SoftWear raise for real PCM controllers.

Three pieces make injection a first-class, reproducible experiment
variable instead of a chaos monkey:

* :class:`BitTarget` — one injectable structure, described by an
  (entries × entry-bits) geometry plus read/write accessors and
  optional ``repair`` / ``fail_safe`` recovery hooks.  Schemes expose
  their structures through ``WearLeveler.fault_surface()``.
* :class:`SoftErrorInjector` — schedules flips on the **absolute
  demand-write index** with geometric inter-arrival gaps drawn from a
  dedicated ``repro.rng`` stream, and picks the victim bit uniformly
  over the surface's total bit count.  The simulation engine clamps
  each step so it ends exactly on the next scheduled flip, which is
  what keeps batched runs bit-identical to serial runs under nonzero
  fault rates (the batch-identity contract of PR 2 extends to faults).
* Protection semantics — the injector models the per-entry SRAM
  protection selected by :class:`repro.config.SoftErrorConfig`:
  ``"none"`` lets the flip persist silently (the invariant checker's
  job to notice), ``"parity"`` detects it on delivery and drives
  scrub-and-repair / fail-safe degradation, ``"secded"`` corrects it
  transparently.  The storage cost of each level is accounted in
  :mod:`repro.hwcost`.

At rate 0 no injector is ever constructed, so every pre-existing
result stays bit-identical — enforced by ``tests/test_engine_identity``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..config import PROTECTION_PARITY, PROTECTION_SECDED, SoftErrorConfig
from ..errors import ConfigError
from ..rng.streams import derive_seed
from ..rng.xorshift import XorShift32

#: What happened to an injected flip (``SoftErrorEvent.action``).
ACTION_SILENT = "silent"  # no protection: flip landed and persists
ACTION_CORRECTED = "corrected"  # SECDED: flip reverted before any damage
ACTION_REPAIRED = "repaired"  # parity: detected, scrub-and-repair succeeded
ACTION_FAIL_SAFE = "fail_safe"  # parity: repair impossible, scheme degraded
ACTION_DETECTED = "detected"  # parity: detected but no recovery hook exists


@dataclass
class BitTarget:
    """One injectable controller structure: geometry plus accessors.

    ``read``/``write`` move raw entry values; they must accept any
    value that fits ``entry_bits`` (corruption is the point) and must
    not trigger behavioural side effects (a bit flip is not a write).
    ``repair`` restores one entry from structural redundancy, returning
    False when the redundancy cannot resolve it; ``fail_safe`` is the
    scheme's graceful-degradation endpoint for that case.
    """

    name: str
    n_entries: int
    entry_bits: int
    read: Callable[[int], int]
    write: Callable[[int, int], None]
    repair: Optional[Callable[[int], bool]] = None
    fail_safe: Optional[Callable[[], None]] = None

    def __post_init__(self) -> None:
        if self.n_entries < 1:
            raise ConfigError(
                f"fault target {self.name!r} needs at least one entry"
            )
        if self.entry_bits < 1:
            raise ConfigError(
                f"fault target {self.name!r} needs a positive entry width"
            )

    @property
    def total_bits(self) -> int:
        """Total injectable bits in this structure."""
        return self.n_entries * self.entry_bits


@dataclass(frozen=True)
class SoftErrorEvent:
    """One delivered bit flip: where it landed and what became of it."""

    demand_index: int
    target: str
    entry: int
    bit: int
    action: str


class SoftErrorInjector:
    """Seed-scheduled bit-flip injection over a scheme's fault surface.

    Construction reads ``scheme.fault_surface()`` once (so reload-style
    repairs capture the architectural register values of that instant)
    and pre-draws the first flip instant.  The engine then asks
    :meth:`demand_until_next` to clamp its step length and calls
    :meth:`deliver` after each step; both operate on the absolute
    cumulative demand-write count, never on step or batch indices, so
    the flip schedule is a pure function of ``(scheme surface, config)``.
    """

    def __init__(self, scheme: object, config: SoftErrorConfig) -> None:
        surface: Dict[str, BitTarget] = getattr(scheme, "fault_surface")()
        if config.targets:
            unknown = sorted(set(config.targets) - set(surface))
            if unknown:
                raise ConfigError(
                    f"unknown fault target(s) {unknown} for scheme "
                    f"{type(scheme).__name__}; surface exposes "
                    f"{sorted(surface) or 'nothing'}"
                )
            surface = {name: surface[name] for name in config.targets}
        self.config = config
        self.targets: List[BitTarget] = [
            surface[name] for name in sorted(surface)
        ]
        self._total_bits = sum(target.total_bits for target in self.targets)
        self._rng = XorShift32(
            (derive_seed(config.seed, "soft-errors") % 0xFFFF_FFFE) + 1
        )
        self.events: List[SoftErrorEvent] = []
        self._next_at: Optional[int] = None
        if self.active:
            self._next_at = self._draw_gap(0)

    @property
    def active(self) -> bool:
        """True when flips can actually occur (rate > 0, surface nonempty)."""
        return self.config.rate > 0.0 and self._total_bits > 0

    def demand_until_next(self, demand_served: int) -> int:
        """Demand writes the engine may serve before the next flip is due.

        Always at least 1 so the engine keeps making progress; the
        engine clamps its step quota to this, guaranteeing every step
        boundary lands exactly on each scheduled flip instant for any
        batch size.
        """
        if self._next_at is None:
            raise ConfigError("injector is inactive; no flip is scheduled")
        return max(1, self._next_at - demand_served)

    def deliver(self, demand_served: int) -> List[SoftErrorEvent]:
        """Apply every flip scheduled at or before ``demand_served``."""
        fired: List[SoftErrorEvent] = []
        while self._next_at is not None and self._next_at <= demand_served:
            fired.append(self._inject(self._next_at))
            self._next_at = self._draw_gap(self._next_at)
        return fired

    def snapshot(self) -> Dict[str, object]:
        """Schedule position, RNG register and delivered-event log.

        The fault surface itself belongs to the scheme (its tables and
        registers are snapshotted there); what the injector owns is
        *when* the next flip fires and what already happened.
        """
        return {
            "events": [
                [event.demand_index, event.target, event.entry, event.bit, event.action]
                for event in self.events
            ],
            "next_at": self._next_at,
            "rng": self._rng.snapshot(),
        }

    def restore(self, state: Dict[str, object]) -> None:
        """Restore a state captured by :meth:`snapshot`.

        Must run on an injector built against a *fresh* scheme: the
        reload-style repair hooks capture architectural register values
        at construction, exactly as in the uninterrupted run.
        """
        self._rng.restore(state["rng"])  # type: ignore[arg-type]
        next_at = state["next_at"]
        self._next_at = None if next_at is None else int(next_at)
        self.events = [
            SoftErrorEvent(
                demand_index=int(record[0]),
                target=str(record[1]),
                entry=int(record[2]),
                bit=int(record[3]),
                action=str(record[4]),
            )
            for record in state["events"]  # type: ignore[union-attr]
        ]

    def summary(self) -> Dict[str, int]:
        """Outcome counters in fixed key order (cache-serialization safe)."""
        counts = {
            ACTION_CORRECTED: 0,
            ACTION_DETECTED: 0,
            ACTION_FAIL_SAFE: 0,
            "injected": 0,
            ACTION_REPAIRED: 0,
            ACTION_SILENT: 0,
        }
        for event in self.events:
            counts["injected"] += 1
            counts[event.action] += 1
        return counts

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _draw_gap(self, origin: int) -> int:
        """Next flip instant after ``origin`` (geometric inter-arrival)."""
        rate = self.config.rate
        if rate >= 1.0:
            return origin + 1
        unit = self._rng.next_unit()
        gap = 1 + int(math.floor(math.log1p(-unit) / math.log1p(-rate)))
        return origin + max(1, gap)

    def _inject(self, demand_index: int) -> SoftErrorEvent:
        """Flip one uniformly-chosen bit and apply the protection model."""
        offset = self._rng.next_below(self._total_bits)
        target = self.targets[-1]
        for candidate in self.targets:
            if offset < candidate.total_bits:
                target = candidate
                break
            offset -= candidate.total_bits
        entry = offset // target.entry_bits
        bit = offset % target.entry_bits
        flipped = target.read(entry) ^ (1 << bit)
        protection = self.config.protection
        if protection == PROTECTION_SECDED:
            # Single-error correction catches the flip on the next access;
            # modeled as an immediate transparent revert, so the run stays
            # bit-identical to the unfaulted one.
            action = ACTION_CORRECTED
        else:
            target.write(entry, flipped)
            if protection == PROTECTION_PARITY:
                if target.repair is not None and target.repair(entry):
                    action = ACTION_REPAIRED
                elif target.fail_safe is not None:
                    target.fail_safe()
                    action = ACTION_FAIL_SAFE
                else:
                    action = ACTION_DETECTED
            else:
                action = ACTION_SILENT
        event = SoftErrorEvent(
            demand_index=demand_index,
            target=target.name,
            entry=entry,
            bit=bit,
            action=action,
        )
        self.events.append(event)
        return event


__all__ = [
    "ACTION_CORRECTED",
    "ACTION_DETECTED",
    "ACTION_FAIL_SAFE",
    "ACTION_REPAIRED",
    "ACTION_SILENT",
    "BitTarget",
    "SoftErrorEvent",
    "SoftErrorInjector",
]
