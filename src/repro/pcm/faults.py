"""Failure records for the PCM array.

The paper's lifetime criterion is first page failure (no spare rows or
intra-device ECC are modelled in the evaluation), so the central record
here is :class:`FirstFailure`: which physical page died and how many
device-level writes had been served when it did.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FirstFailure:
    """The first page wear-out event of a simulation run.

    Attributes
    ----------
    physical_page:
        Index of the page whose write count reached its endurance.
    device_writes:
        Total page writes the device had served (including wear-leveling
        swap writes) when the failure occurred.
    page_endurance:
        The failed page's endurance.
    """

    physical_page: int
    device_writes: int
    page_endurance: int

    def __post_init__(self) -> None:
        if self.physical_page < 0:
            raise ValueError("physical page must be non-negative")
        if self.device_writes < 0:
            raise ValueError("device writes must be non-negative")
        if self.page_endurance <= 0:
            raise ValueError("page endurance must be positive")
