"""Data-comparison-write (DCW) model.

The paper assumes "data comparison write is employed [16]" (Zhou et al.,
ISCA'09): before programming, the old and new data are compared and only
the differing bits are written.  At the page/wear granularity of this
reproduction a page write still costs one endurance unit (the paper counts
page writes), but DCW changes the *energy* and *latency* of a write, which
feeds the timing model of Figure 9.

The model here is analytic: for data with per-bit flip probability ``f``,
the expected fraction of written bits is ``f`` and the expected per-write
energy/latency scale accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DataComparisonWriteModel:
    """Expected write-cost reduction under data-comparison write.

    Parameters
    ----------
    flip_probability:
        Probability an individual bit differs between old and new data.
        0.5 models uncorrelated random data; real workloads are lower
        (~0.1-0.25 in the DCW paper's measurements).
    set_fraction:
        Of the flipped bits, the fraction that are SET transitions (SET is
        the slow/expensive operation in PCM).
    """

    flip_probability: float = 0.25
    set_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.flip_probability <= 1.0:
            raise ValueError("flip probability must be in [0, 1]")
        if not 0.0 <= self.set_fraction <= 1.0:
            raise ValueError("set fraction must be in [0, 1]")

    def expected_bits_written(self, page_bits: int) -> float:
        """Expected number of programmed bits per page write."""
        if page_bits < 0:
            raise ValueError("page_bits must be non-negative")
        return page_bits * self.flip_probability

    def energy_scale(self) -> float:
        """Write energy relative to programming every bit."""
        return self.flip_probability

    def latency_scale(self) -> float:
        """Write latency relative to a full-page SET-dominated write.

        The write completes when its slowest bit finishes: if any SET
        occurs the SET latency dominates; a write with only RESETs (or no
        flips) completes at RESET latency.  For page-sized writes the
        probability of zero SET transitions is negligible unless the flip
        probability is ~0, so the scale transitions smoothly.
        """
        probability_any_set = 1.0 - (
            1.0 - self.flip_probability * self.set_fraction
        ) ** 64  # per-64-bit-word granularity of the comparator
        return probability_any_set + (1.0 - probability_any_set) * 0.125

    def sample_bits_written(
        self, page_bits: int, rng: np.random.Generator, size: int = 1
    ) -> np.ndarray:
        """Sample written-bit counts for ``size`` page writes."""
        if page_bits < 0:
            raise ValueError("page_bits must be non-negative")
        return rng.binomial(page_bits, self.flip_probability, size=size)
