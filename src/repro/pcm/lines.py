"""Sub-page (line-granularity) wear extension.

The paper's Table 1 memory has 128-byte lines inside 4 KB pages but
evaluates wear at page granularity ("the granularity of writes is a
memory page").  Real PCM fails at the cell/line level: a page is dead
as soon as its first line exhausts its endurance.  This module provides
the finer substrate so users can quantify what page-granularity
modeling hides:

* per-line endurance is drawn around the page's tested endurance with
  an *intra-page* variation sigma (process variation has both
  page-to-page and within-page components);
* a page write wears the subset of lines the write actually dirties
  (under data-comparison write, clean lines are skipped);
* the page's effective endurance is the number of page writes until its
  weakest frequently-dirtied line dies — always at or below the tested
  page endurance, which is what :func:`effective_page_endurance`
  quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError


@dataclass(frozen=True)
class LineWearConfig:
    """Parameters of the line-granularity wear model."""

    lines_per_page: int = 32
    intra_page_sigma_fraction: float = 0.05
    #: Probability a given line is dirtied by a page write (DCW skips
    #: clean lines; 1.0 recovers the paper's page-granularity model).
    line_dirty_probability: float = 1.0

    def __post_init__(self) -> None:
        if self.lines_per_page < 1:
            raise ConfigError("need at least one line per page")
        if not 0.0 <= self.intra_page_sigma_fraction < 1.0:
            raise ConfigError("intra-page sigma must be in [0, 1)")
        if not 0.0 < self.line_dirty_probability <= 1.0:
            raise ConfigError("line dirty probability must be in (0, 1]")


class LineWearModel:  # twl: allow(TWL008) reason=transient local of effective_page_endurance; never outlives one call, nothing to resume
    """Line-granularity wear for a single page."""

    def __init__(
        self,
        page_endurance: int,
        config: LineWearConfig,
        rng: np.random.Generator,
    ):
        if page_endurance < 1:
            raise ConfigError("page endurance must be positive")
        self.config = config
        sigma = page_endurance * config.intra_page_sigma_fraction
        endurance = rng.normal(page_endurance, sigma, size=config.lines_per_page)
        self.line_endurance = np.maximum(endurance, 1.0).astype(np.int64)
        self.line_writes = np.zeros(config.lines_per_page, dtype=np.int64)
        self.page_writes = 0
        self._rng = rng

    def write_page(self) -> bool:
        """Apply one page write; True when the page just failed.

        Each line is dirtied independently with the configured
        probability (the DCW comparator skips clean lines).
        """
        self.page_writes += 1
        if self.config.line_dirty_probability >= 1.0:
            self.line_writes += 1
        else:
            dirty = (
                self._rng.random(self.config.lines_per_page)
                < self.config.line_dirty_probability
            )
            self.line_writes[dirty] += 1
        return bool((self.line_writes >= self.line_endurance).any())

    @property
    def failed(self) -> bool:
        """Whether any line has worn out."""
        return bool((self.line_writes >= self.line_endurance).any())

    def weakest_line_margin(self) -> float:
        """Remaining fraction of the most-worn line's endurance."""
        fractions = self.line_writes / self.line_endurance
        return float(1.0 - fractions.max())


def effective_page_endurance(
    page_endurance: int,
    config: LineWearConfig,
    rng: np.random.Generator,
) -> int:
    """Page writes survived before the first line failure.

    With full-page dirtying this is exactly the weakest line's
    endurance; with partial dirtying clean lines stretch it (run by
    simulation for the stochastic case).
    """
    if config.line_dirty_probability >= 1.0:
        sigma = page_endurance * config.intra_page_sigma_fraction
        endurance = rng.normal(page_endurance, sigma, size=config.lines_per_page)
        return int(max(1, np.maximum(endurance, 1.0).min()))
    model = LineWearModel(page_endurance, config, rng)
    while not model.write_page():
        pass
    return model.page_writes


def derating_factor(
    page_endurance: int,
    config: LineWearConfig,
    rng: np.random.Generator,
    samples: int = 32,
) -> float:
    """Mean ratio of effective to tested page endurance.

    Quantifies how much the paper's page-granularity model overstates
    endurance when within-page variation is present (~1 - 2 sigma for
    32 lines).
    """
    if samples < 1:
        raise ConfigError("need at least one sample")
    values = [
        effective_page_endurance(page_endurance, config, rng) / page_endurance
        for _ in range(samples)
    ]
    return float(np.mean(values))
