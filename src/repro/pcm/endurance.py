"""Per-page endurance sampling under process variation.

The paper assumes page endurance ~ Gauss(1e8, 0.11 * 1e8) (Section 5.1).
Device lifetime at first page failure is governed by the *extreme order
statistics* of that distribution over all 8.4M pages.  Because the
reproduction runs on arrays thousands of times smaller, plainly sampling a
small array would make the weakest page far stronger (relative to the
mean) than at full scale, which would inflate every scheme's normalized
lifetime.

``sample_tail_faithful`` fixes this: the ``tail_count`` weakest (and, for
symmetry, strongest) pages of the scaled array are placed at the expected
extreme order statistics of the full reference population (Blom's
approximation), and the body of the array is a stratified sample of the
distribution.  First-failure behaviour then matches the paper's scale;
see ``tests/test_endurance.py`` for the validation.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..errors import ConfigError

#: Endurance is clipped below at this fraction of the mean so no page has
#: zero or negative endurance (the Gaussian has unbounded support).
ENDURANCE_FLOOR_FRACTION = 0.01


def norm_ppf(p: float) -> float:
    """Inverse CDF of the standard normal distribution.

    Acklam's rational approximation (relative error < 1.15e-9 over the
    full open interval), implemented locally so the core library depends
    only on numpy.  Validated against ``scipy.stats.norm.ppf`` in tests.
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1), got {p}")

    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)

    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    if p > 1 - p_low:
        q = math.sqrt(-2 * math.log(1 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)

    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / \
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1)


def _blom_quantile(rank: int, population: int) -> float:
    """Blom's plotting position for the ``rank``-th smallest of ``population``."""
    return (rank - 0.375) / (population + 0.25)


def expected_extreme_minimum(population: int, mean: float, sigma: float) -> float:
    """Expected minimum endurance over ``population`` Gaussian draws.

    For the paper's 8.4M pages this is ~0.44 of the mean — which is exactly
    the normalized lifetime the paper reports for Security Refresh (whose
    uniform randomization wears all pages evenly until the weakest dies).
    """
    if population < 1:
        raise ValueError("population must be >= 1")
    return mean + sigma * norm_ppf(_blom_quantile(1, population))


def _clip_floor(values: np.ndarray, mean: float) -> np.ndarray:
    floor = max(1.0, ENDURANCE_FLOOR_FRACTION * mean)
    return np.maximum(values, floor)


def sample_gaussian_endurance(
    n_pages: int,
    mean: float,
    sigma_fraction: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Plain i.i.d. Gaussian endurance sample, floored away from zero.

    Returns an ``int64`` array of length ``n_pages``.
    """
    if n_pages < 1:
        raise ConfigError("need at least one page")
    sigma = mean * sigma_fraction
    values = rng.normal(mean, sigma, size=n_pages)
    return _clip_floor(values, mean).astype(np.int64)


def sample_tail_faithful(
    n_pages: int,
    reference_population: int,
    mean: float,
    sigma_fraction: float,
    rng: np.random.Generator,
    tail_count: Optional[int] = None,
) -> np.ndarray:
    """Endurance sample whose extremes match a much larger population.

    Parameters
    ----------
    n_pages:
        Size of the scaled array being simulated.
    reference_population:
        Size of the full-scale memory whose extreme statistics should be
        preserved (the paper's 8.4M pages).
    mean, sigma_fraction:
        Gaussian endurance parameters.
    rng:
        Source of randomness for page placement (the values themselves are
        deterministic quantiles; only their positions are shuffled).
    tail_count:
        How many expected extreme order statistics to pin at each end.
        Defaults to ``max(4, n_pages // 64)``.

    Returns an ``int64`` array of length ``n_pages`` in random page order.
    """
    if n_pages < 8:
        raise ConfigError(f"tail-faithful sampling needs >= 8 pages, got {n_pages}")
    if reference_population < n_pages:
        raise ConfigError(
            "reference population must be at least as large as the array "
            f"({reference_population} < {n_pages})"
        )
    if tail_count is None:
        tail_count = max(4, n_pages // 64)
    if 2 * tail_count >= n_pages:
        raise ConfigError(
            f"tail_count {tail_count} too large for {n_pages} pages"
        )

    sigma = mean * sigma_fraction

    weak_tail = np.array(
        [
            mean + sigma * norm_ppf(_blom_quantile(k, reference_population))
            for k in range(1, tail_count + 1)
        ]
    )
    strong_tail = np.array(
        [
            mean - sigma * norm_ppf(_blom_quantile(k, reference_population))
            for k in range(1, tail_count + 1)
        ]
    )

    body_count = n_pages - 2 * tail_count
    # Stratified body: midpoints of equal-probability strata spanning the
    # region between the pinned tails.
    lo = _blom_quantile(tail_count + 1, reference_population)
    probabilities = lo + (np.arange(body_count) + 0.5) / body_count * (1 - 2 * lo)
    body = np.array([mean + sigma * norm_ppf(float(p)) for p in probabilities])

    values = np.concatenate([weak_tail, body, strong_tail])
    values = _clip_floor(values, mean)
    rng.shuffle(values)
    return values.astype(np.int64)
