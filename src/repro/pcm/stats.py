"""Wear-distribution statistics for a PCM array.

These metrics quantify *how well* a scheme leveled wear, beyond the single
lifetime number: the Gini coefficient of wear fractions (0 = perfectly
even wear relative to endurance), utilization at failure, and summary
percentiles.  They back the ablation benchmarks and several tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from .array import PCMArray


def gini_coefficient(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative sample (0 = equal, ->1 = skewed).

    >>> round(gini_coefficient(np.array([1.0, 1.0, 1.0])), 6)
    0.0
    """
    data = np.asarray(values, dtype=np.float64)
    if data.ndim != 1 or data.size == 0:
        raise ValueError("need a non-empty 1-D sample")
    if (data < 0).any():
        raise ValueError("values must be non-negative")
    total = data.sum()
    if total == 0:
        return 0.0
    sorted_data = np.sort(data)
    n = data.size
    index = np.arange(1, n + 1)
    return float((2 * (index * sorted_data).sum()) / (n * total) - (n + 1) / n)


@dataclass(frozen=True)
class WearStatistics:
    """Snapshot of an array's wear distribution."""

    total_writes: int
    utilization: float
    wear_gini: float
    max_wear_fraction: float
    mean_wear_fraction: float
    p99_wear_fraction: float

    @classmethod
    def from_array(cls, array: PCMArray) -> "WearStatistics":
        """Compute statistics for the current state of ``array``."""
        wear = array.wear_fraction()
        return cls(
            total_writes=array.total_writes,
            utilization=array.utilization(),
            wear_gini=gini_coefficient(wear),
            max_wear_fraction=float(wear.max()),
            mean_wear_fraction=float(wear.mean()),
            p99_wear_fraction=float(np.percentile(wear, 99)),
        )

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for result tables."""
        return {
            "total_writes": float(self.total_writes),
            "utilization": self.utilization,
            "wear_gini": self.wear_gini,
            "max_wear_fraction": self.max_wear_fraction,
            "mean_wear_fraction": self.mean_wear_fraction,
            "p99_wear_fraction": self.p99_wear_fraction,
        }
