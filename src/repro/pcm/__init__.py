"""Phase-change-memory device model.

The paper's memory is a 32 GB PCM with per-page endurance drawn from a
Gaussian (mean 1e8, sigma 11% of the mean) to model process variation.
This subpackage provides:

* :mod:`repro.pcm.endurance` — endurance sampling, including the
  *tail-faithful* scaled sampling used to run experiments on small arrays
  while preserving full-scale first-failure statistics;
* :mod:`repro.pcm.array` — the wear-tracking page array itself;
* :mod:`repro.pcm.dcw` — the data-comparison-write model;
* :mod:`repro.pcm.faults` — failure records and fault accounting;
* :mod:`repro.pcm.stats` — wear-distribution statistics;
* :mod:`repro.pcm.softerrors` — deterministic soft-error injection into
  controller SRAM structures (fault surfaces, protection modeling).
"""

from .endurance import (
    norm_ppf,
    sample_gaussian_endurance,
    sample_tail_faithful,
    expected_extreme_minimum,
)
from .array import PCMArray
from .dcw import DataComparisonWriteModel
from .faults import FirstFailure
from .stats import WearStatistics, gini_coefficient
from .lines import (
    LineWearConfig,
    LineWearModel,
    effective_page_endurance,
    derating_factor,
)
from .softerrors import BitTarget, SoftErrorEvent, SoftErrorInjector

__all__ = [
    "norm_ppf",
    "sample_gaussian_endurance",
    "sample_tail_faithful",
    "expected_extreme_minimum",
    "PCMArray",
    "DataComparisonWriteModel",
    "FirstFailure",
    "WearStatistics",
    "gini_coefficient",
    "LineWearConfig",
    "LineWearModel",
    "effective_page_endurance",
    "derating_factor",
    "BitTarget",
    "SoftErrorEvent",
    "SoftErrorInjector",
]
