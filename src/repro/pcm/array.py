"""The wear-tracking PCM page array.

:class:`PCMArray` is the substrate every wear-leveling scheme writes to.
It tracks per-page write counts against per-page endurance and records
the first wear-out event.  Data contents are not stored — wear-leveling
behaviour depends only on *where* writes land — but swap operations still
cost the correct number of physical page writes.

The canonical state is structure-of-arrays numpy: ``writes`` and
``endurance`` are flat ``int64`` arrays and every write path mutates (or
reads) them directly.  ``endurance`` is frozen read-only after
construction — endurance is tested once at format time, so an accidental
in-place mutation raises immediately instead of silently corrupting the
run.  The scalar accessors (:meth:`page_writes`, :meth:`page_endurance`)
are thin views over the same arrays.

Three write paths are provided:

* :meth:`write` — single page, exact failure detection (used inside
  scheme hot loops);
* :meth:`apply_batch` — an *ordered* batch of single-page writes with
  exact first-failure attribution, bit-identical to issuing the same
  sequence through :meth:`write` (the batched-protocol substrate).  The
  common no-failure case is a single vectorized accumulate; the ordered
  scalar scan only runs when some page can actually cross its endurance
  within the batch;
* :meth:`apply_write_counts` — unordered vectorized bulk application for
  fast-forward simulation, attributing the first failure by the fluid
  approximation.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..config import PCMConfig
from ..errors import AddressError, ConfigError, PageWornOutError
from .endurance import sample_gaussian_endurance, sample_tail_faithful
from .faults import FirstFailure


class PCMArray:
    """A page-granular PCM array with per-page endurance.

    Parameters
    ----------
    endurance:
        Per-page endurance values (positive integers).
    fail_fast:
        If true (default), the first write that exhausts a page raises
        :class:`PageWornOutError`; simulations normally check
        :attr:`first_failure` instead and stop cleanly.
    """

    def __init__(self, endurance: Sequence[int], fail_fast: bool = False):
        endurance_array = np.asarray(endurance, dtype=np.int64)
        if endurance_array.ndim != 1 or endurance_array.size < 1:
            raise ConfigError("endurance must be a non-empty 1-D sequence")
        if (endurance_array <= 0).any():
            raise ConfigError("all endurance values must be positive")
        #: Canonical per-page endurance.  Frozen read-only: endurance is
        #: immutable after format time, so an in-place mutation raises
        #: ``ValueError`` at the offending statement.
        self.endurance = endurance_array.copy()
        self.endurance.setflags(write=False)
        self.n_pages = int(endurance_array.size)
        #: Canonical per-page write counts.  Owned by the write paths
        #: below; treat as read-only from outside.
        self.writes = np.zeros(self.n_pages, dtype=np.int64)
        self.fail_fast = fail_fast
        self.total_writes = 0
        #: Fast-path failure flag (plain attribute so hot loops avoid a
        #: property call per write).
        self.failed = False
        self._first_failure: Optional[FirstFailure] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_config(
        cls,
        config: PCMConfig,
        rng: np.random.Generator,
        tail_faithful_reference: Optional[int] = None,
        fail_fast: bool = False,
    ) -> "PCMArray":
        """Build an array for ``config`` with sampled endurance.

        If ``tail_faithful_reference`` is given, endurance extremes are
        pinned to that population size (see ``repro.pcm.endurance``).
        """
        if tail_faithful_reference is not None:
            endurance = sample_tail_faithful(
                config.n_pages,
                tail_faithful_reference,
                config.endurance_mean,
                config.endurance_sigma_fraction,
                rng,
            )
        else:
            endurance = sample_gaussian_endurance(
                config.n_pages,
                config.endurance_mean,
                config.endurance_sigma_fraction,
                rng,
            )
        return cls(endurance, fail_fast=fail_fast)

    @classmethod
    def uniform(cls, n_pages: int, endurance: int, fail_fast: bool = False) -> "PCMArray":
        """Array with identical endurance on every page (no PV)."""
        return cls(np.full(n_pages, endurance, dtype=np.int64), fail_fast=fail_fast)

    # ------------------------------------------------------------------
    # Write paths
    # ------------------------------------------------------------------
    def write(self, physical_page: int) -> None:
        """Apply one page write.

        Records the first failure the moment a page's write count reaches
        its endurance.  Writes to already-failed pages keep counting (the
        simulator stops at first failure; direct users get the exception
        when ``fail_fast`` is set).
        """
        writes = self.writes
        if not 0 <= physical_page < self.n_pages:
            raise AddressError(
                f"physical page {physical_page} out of range [0, {self.n_pages})"
            )
        count = int(writes[physical_page]) + 1
        writes[physical_page] = count
        self.total_writes += 1
        if count >= self.endurance[physical_page] and self._first_failure is None:
            self.failed = True
            self._first_failure = FirstFailure(
                physical_page=physical_page,
                device_writes=self.total_writes,
                page_endurance=int(self.endurance[physical_page]),
            )
            if self.fail_fast:
                raise PageWornOutError(
                    physical_page, count, int(self.endurance[physical_page])
                )

    def write_many(self, physical_page: int, count: int) -> None:
        """Apply ``count`` consecutive writes to one page."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if not 0 <= physical_page < self.n_pages:
            raise AddressError(
                f"physical page {physical_page} out of range [0, {self.n_pages})"
            )
        if count == 0:
            return
        writes = self.writes
        before = int(writes[physical_page])
        after = before + count
        writes[physical_page] = after
        self.total_writes += count
        endurance = int(self.endurance[physical_page])
        if after >= endurance and self._first_failure is None:
            # The failing write is the one that brought the count to the
            # endurance value, so attribute the exact device write index.
            writes_into_burst = endurance - before
            device_writes = self.total_writes - count + writes_into_burst
            self.failed = True
            self._first_failure = FirstFailure(
                physical_page=physical_page,
                device_writes=int(device_writes),
                page_endurance=endurance,
            )
            if self.fail_fast:
                raise PageWornOutError(physical_page, after, endurance)

    def apply_batch(self, physical_sequence: Sequence[int]) -> int:
        """Apply an *ordered* batch of single-page writes.

        ``physical_sequence`` lists one physical page per write, in
        request order.  The batch is bit-identical to issuing the same
        sequence through :meth:`write`: if some write in the sequence
        wears out a page, the failure is attributed to that exact write
        (page and device-write index), application stops there, and the
        number of writes actually applied is returned — the contract the
        batched write protocol and the ``repro.exec`` cache rely on.

        When no page can cross its endurance within the batch (the
        steady-state case), the whole batch is one vectorized
        accumulate; the per-occurrence attribution scan runs only when a
        crossing is actually possible.
        """
        seq = np.asarray(physical_sequence, dtype=np.int64)
        if seq.ndim != 1:
            raise ConfigError("physical_sequence must be 1-D")
        if seq.size == 0:
            return 0
        if (seq < 0).any() or (seq >= self.n_pages).any():
            bad = int(seq[(seq < 0) | (seq >= self.n_pages)][0])
            raise AddressError(
                f"physical page {bad} out of range [0, {self.n_pages})"
            )
        if self._first_failure is None and seq.size * 8 < self.n_pages:
            # Small chunks (the TWL planner's quiet runs are a few dozen
            # writes against thousands of pages): touch only the
            # affected entries instead of materializing full-array
            # counts.  Falls through to the general machinery on
            # duplicates or whenever a crossing is possible, so
            # attribution stays exact.  (A sorted adjacent-compare beats
            # np.unique's fixed overhead at these sizes.)
            s = np.sort(seq)
            if seq.size < 2 or not (s[1:] == s[:-1]).any():
                before = self.writes[seq]
                if (before + 1 < self.endurance[seq]).all():
                    self.writes[seq] = before + 1
                    self.total_writes += int(seq.size)
                    return int(seq.size)
        counts = np.bincount(seq, minlength=self.n_pages)
        if self._first_failure is not None:
            # Past first failure every write just keeps counting.
            self.writes += counts
            self.total_writes += int(seq.size)
            return int(seq.size)
        remaining = self.endurance - self.writes
        # No failure recorded => every page is strictly below its
        # endurance, so remaining >= 1 everywhere.
        crossing = np.flatnonzero(counts >= remaining)
        if not crossing.size:
            self.writes += counts
            self.total_writes += int(seq.size)
            return int(seq.size)
        # Some page reaches its endurance inside this batch: find the
        # earliest exhausting write in request order.
        fail_pos = seq.size
        winner = -1
        for page in crossing.tolist():  # twl: allow(TWL006) reason=exact failure attribution tail
            # The remaining[page]-th occurrence of `page` in the
            # sequence is the write that exhausts it.
            position = int(
                np.flatnonzero(seq == page)[int(remaining[page]) - 1]
            )
            if position < fail_pos:
                fail_pos, winner = position, page
        applied = seq[: fail_pos + 1]
        self.writes += np.bincount(applied, minlength=self.n_pages)
        self.total_writes += int(applied.size)
        self.failed = True
        self._first_failure = FirstFailure(
            physical_page=winner,
            device_writes=self.total_writes - int(applied.size) + fail_pos + 1,
            page_endurance=int(self.endurance[winner]),
        )
        if self.fail_fast:
            raise PageWornOutError(
                winner, int(self.writes[winner]), int(self.endurance[winner])
            )
        return int(applied.size)

    def apply_write_counts(self, per_page_writes: np.ndarray) -> None:
        """Vectorized bulk write application (fast-forward path).

        ``per_page_writes`` must have one entry per page.  If the bulk
        application wears out pages, the first failure is attributed to
        the page that would fail earliest assuming each page's writes are
        spread evenly across the bulk interval — the standard fluid
        approximation used by fast-forward simulation.  (Use
        :meth:`apply_batch` when the write *order* is known and exact
        attribution is required.)
        """
        counts = np.asarray(per_page_writes, dtype=np.int64)
        if counts.shape != (self.n_pages,):
            raise ConfigError(
                f"expected shape ({self.n_pages},), got {counts.shape}"
            )
        if (counts < 0).any():
            raise ConfigError("write counts must be non-negative")
        chunk_total = int(counts.sum())
        if chunk_total == 0:
            return
        self.writes += counts
        self.total_writes += chunk_total
        if self._first_failure is None:
            crossed = np.nonzero(self.writes >= self.endurance)[0]
            if crossed.size:
                # Fluid approximation: page p fails after fraction
                # (endurance - before) / counts of the chunk.
                before_crossed = self.writes[crossed] - counts[crossed]
                fractions = (
                    self.endurance[crossed] - before_crossed
                ) / counts[crossed].astype(np.float64)
                winner = int(crossed[np.argmin(fractions)])
                fraction = float(np.min(fractions))
                device_writes = (
                    self.total_writes - chunk_total + int(round(fraction * chunk_total))
                )
                self.failed = True
                self._first_failure = FirstFailure(
                    physical_page=winner,
                    device_writes=max(1, device_writes),
                    page_endurance=int(self.endurance[winner]),
                )

    # ------------------------------------------------------------------
    # Mid-run persistence
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """The mutable wear state; endurance is format-time and derivable."""
        failure = self._first_failure
        return {
            "failed": self.failed,
            "first_failure": None
            if failure is None
            else {
                "device_writes": failure.device_writes,
                "page_endurance": failure.page_endurance,
                "physical_page": failure.physical_page,
            },
            "total_writes": self.total_writes,
            "writes": self.writes.copy(),
        }

    def restore(self, state: dict) -> None:
        """Restore a state captured by :meth:`snapshot`."""
        writes = np.asarray(state["writes"], dtype=np.int64)
        if writes.shape != self.writes.shape:
            raise ConfigError(
                f"snapshot holds {writes.size} pages, array has {self.n_pages}"
            )
        self.writes[:] = writes
        self.total_writes = int(state["total_writes"])
        self.failed = bool(state["failed"])
        failure = state["first_failure"]
        self._first_failure = (
            None
            if failure is None
            else FirstFailure(
                physical_page=int(failure["physical_page"]),
                device_writes=int(failure["device_writes"]),
                page_endurance=int(failure["page_endurance"]),
            )
        )

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def first_failure(self) -> Optional[FirstFailure]:
        """The first wear-out event, or None while all pages are alive."""
        return self._first_failure

    @property
    def has_failure(self) -> bool:
        """Whether any page has worn out."""
        return self.failed

    def page_writes(self, physical_page: int) -> int:
        """Writes served by one page so far (O(1), hot-loop safe)."""
        if not 0 <= physical_page < self.n_pages:
            raise AddressError(
                f"physical page {physical_page} out of range [0, {self.n_pages})"
            )
        return int(self.writes[physical_page])

    def page_endurance(self, physical_page: int) -> int:
        """Endurance of one page (O(1), hot-loop safe)."""
        if not 0 <= physical_page < self.n_pages:
            raise AddressError(
                f"physical page {physical_page} out of range [0, {self.n_pages})"
            )
        return int(self.endurance[physical_page])

    def write_counts(self) -> np.ndarray:
        """Copy of the per-page write counts."""
        return self.writes.copy()

    def remaining(self) -> np.ndarray:
        """Per-page remaining endurance (clipped at zero)."""
        return np.maximum(self.endurance - self.writes, 0)

    def wear_fraction(self) -> np.ndarray:
        """Per-page wear as a fraction of endurance."""
        return self.writes / self.endurance.astype(np.float64)

    def utilization(self) -> float:
        """Fraction of total endurance capacity consumed so far.

        A perfect PV-aware wear leveler reaches ~1.0 at first failure; the
        paper's normalized lifetime is precisely this quantity at the
        failure point (modulo swap-write overhead).
        """
        return float(self.writes.sum() / self.endurance.sum())

    def weakest_pages(self, k: int) -> np.ndarray:
        """Indices of the ``k`` lowest-endurance pages, weakest first."""
        if not 1 <= k <= self.n_pages:
            raise ValueError(f"k must be in [1, {self.n_pages}], got {k}")
        order = np.argsort(self.endurance, kind="stable")
        return order[:k]

    def endurance_capacity(self) -> int:
        """Sum of all page endurances (total writes an ideal leveler serves)."""
        return int(self.endurance.sum())

    def __repr__(self) -> str:
        return (
            f"PCMArray(n_pages={self.n_pages}, total_writes={self.total_writes}, "
            f"failed={self.has_failure})"
        )
