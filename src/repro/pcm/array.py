"""The wear-tracking PCM page array.

:class:`PCMArray` is the substrate every wear-leveling scheme writes to.
It tracks per-page write counts against per-page endurance and records
the first wear-out event.  Data contents are not stored — wear-leveling
behaviour depends only on *where* writes land — but swap operations still
cost the correct number of physical page writes.

Two write paths are provided:

* :meth:`write` — single page, exact failure detection (used inside
  scheme hot loops);
* :meth:`apply_write_counts` — vectorized bulk application for fast-
  forward simulation, with exact attribution of the first failure.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..config import PCMConfig
from ..errors import AddressError, ConfigError, PageWornOutError
from .endurance import sample_gaussian_endurance, sample_tail_faithful
from .faults import FirstFailure


class PCMArray:
    """A page-granular PCM array with per-page endurance.

    Parameters
    ----------
    endurance:
        Per-page endurance values (positive integers).
    fail_fast:
        If true (default), the first write that exhausts a page raises
        :class:`PageWornOutError`; simulations normally check
        :attr:`first_failure` instead and stop cleanly.
    """

    def __init__(self, endurance: Sequence[int], fail_fast: bool = False):
        endurance_array = np.asarray(endurance, dtype=np.int64)
        if endurance_array.ndim != 1 or endurance_array.size < 1:
            raise ConfigError("endurance must be a non-empty 1-D sequence")
        if (endurance_array <= 0).any():
            raise ConfigError("all endurance values must be positive")
        self.endurance = endurance_array.copy()
        self.n_pages = int(endurance_array.size)
        self.writes = np.zeros(self.n_pages, dtype=np.int64)
        self.fail_fast = fail_fast
        self.total_writes = 0
        #: Fast-path failure flag (plain attribute so hot loops avoid a
        #: property call per write).
        self.failed = False
        self._first_failure: Optional[FirstFailure] = None
        # Plain Python lists mirror the numpy arrays for O(1) scalar access
        # in per-write hot loops (numpy scalar indexing is ~5x slower).
        self._endurance_list = self.endurance.tolist()
        self._writes_list = self.writes.tolist()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_config(
        cls,
        config: PCMConfig,
        rng: np.random.Generator,
        tail_faithful_reference: Optional[int] = None,
        fail_fast: bool = False,
    ) -> "PCMArray":
        """Build an array for ``config`` with sampled endurance.

        If ``tail_faithful_reference`` is given, endurance extremes are
        pinned to that population size (see ``repro.pcm.endurance``).
        """
        if tail_faithful_reference is not None:
            endurance = sample_tail_faithful(
                config.n_pages,
                tail_faithful_reference,
                config.endurance_mean,
                config.endurance_sigma_fraction,
                rng,
            )
        else:
            endurance = sample_gaussian_endurance(
                config.n_pages,
                config.endurance_mean,
                config.endurance_sigma_fraction,
                rng,
            )
        return cls(endurance, fail_fast=fail_fast)

    @classmethod
    def uniform(cls, n_pages: int, endurance: int, fail_fast: bool = False) -> "PCMArray":
        """Array with identical endurance on every page (no PV)."""
        return cls(np.full(n_pages, endurance, dtype=np.int64), fail_fast=fail_fast)

    # ------------------------------------------------------------------
    # Write paths
    # ------------------------------------------------------------------
    def write(self, physical_page: int) -> None:
        """Apply one page write.

        Records the first failure the moment a page's write count reaches
        its endurance.  Writes to already-failed pages keep counting (the
        simulator stops at first failure; direct users get the exception
        when ``fail_fast`` is set).
        """
        writes = self._writes_list
        if not 0 <= physical_page < self.n_pages:
            raise AddressError(
                f"physical page {physical_page} out of range [0, {self.n_pages})"
            )
        count = writes[physical_page] + 1
        writes[physical_page] = count
        self.total_writes += 1
        if count >= self._endurance_list[physical_page] and self._first_failure is None:
            self.failed = True
            self._first_failure = FirstFailure(
                physical_page=physical_page,
                device_writes=self.total_writes,
                page_endurance=int(self._endurance_list[physical_page]),
            )
            if self.fail_fast:
                raise PageWornOutError(
                    physical_page, count, int(self._endurance_list[physical_page])
                )

    def write_many(self, physical_page: int, count: int) -> None:
        """Apply ``count`` consecutive writes to one page."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if not 0 <= physical_page < self.n_pages:
            raise AddressError(
                f"physical page {physical_page} out of range [0, {self.n_pages})"
            )
        if count == 0:
            return
        writes = self._writes_list
        before = writes[physical_page]
        after = before + count
        writes[physical_page] = after
        self.total_writes += count
        endurance = self._endurance_list[physical_page]
        if after >= endurance and self._first_failure is None:
            # The failing write is the one that brought the count to the
            # endurance value, so attribute the exact device write index.
            writes_into_burst = endurance - before
            device_writes = self.total_writes - count + writes_into_burst
            self.failed = True
            self._first_failure = FirstFailure(
                physical_page=physical_page,
                device_writes=int(device_writes),
                page_endurance=int(endurance),
            )
            if self.fail_fast:
                raise PageWornOutError(physical_page, after, int(endurance))

    def apply_write_counts(self, per_page_writes: np.ndarray) -> None:
        """Vectorized bulk write application (fast-forward path).

        ``per_page_writes`` must have one entry per page.  If the bulk
        application wears out pages, the first failure is attributed to
        the page that would fail earliest assuming each page's writes are
        spread evenly across the bulk interval — the standard fluid
        approximation used by fast-forward simulation.
        """
        counts = np.asarray(per_page_writes, dtype=np.int64)
        if counts.shape != (self.n_pages,):
            raise ConfigError(
                f"expected shape ({self.n_pages},), got {counts.shape}"
            )
        if (counts < 0).any():
            raise ConfigError("write counts must be non-negative")
        self._sync_lists_to_numpy()
        chunk_total = int(counts.sum())
        if chunk_total == 0:
            return
        before = self.writes.copy()
        self.writes += counts
        self.total_writes += chunk_total
        if self._first_failure is None:
            crossed = np.nonzero(self.writes >= self.endurance)[0]
            if crossed.size:
                # Fluid approximation: page p fails after fraction
                # (endurance - before) / counts of the chunk.
                fractions = (
                    self.endurance[crossed] - before[crossed]
                ) / counts[crossed].astype(np.float64)
                winner = int(crossed[np.argmin(fractions)])
                fraction = float(np.min(fractions))
                device_writes = (
                    self.total_writes - chunk_total + int(round(fraction * chunk_total))
                )
                self.failed = True
                self._first_failure = FirstFailure(
                    physical_page=winner,
                    device_writes=max(1, device_writes),
                    page_endurance=int(self.endurance[winner]),
                )
        self._writes_list = self.writes.tolist()

    def _sync_lists_to_numpy(self) -> None:
        """Fold scalar-path updates back into the numpy arrays."""
        self.writes = np.asarray(self._writes_list, dtype=np.int64)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def first_failure(self) -> Optional[FirstFailure]:
        """The first wear-out event, or None while all pages are alive."""
        return self._first_failure

    @property
    def has_failure(self) -> bool:
        """Whether any page has worn out."""
        return self.failed

    def page_writes(self, physical_page: int) -> int:
        """Writes served by one page so far (O(1), hot-loop safe)."""
        if not 0 <= physical_page < self.n_pages:
            raise AddressError(
                f"physical page {physical_page} out of range [0, {self.n_pages})"
            )
        return self._writes_list[physical_page]

    def page_endurance(self, physical_page: int) -> int:
        """Endurance of one page (O(1), hot-loop safe)."""
        if not 0 <= physical_page < self.n_pages:
            raise AddressError(
                f"physical page {physical_page} out of range [0, {self.n_pages})"
            )
        return self._endurance_list[physical_page]

    def write_counts(self) -> np.ndarray:
        """Copy of the per-page write counts."""
        self._sync_lists_to_numpy()
        return self.writes.copy()

    def remaining(self) -> np.ndarray:
        """Per-page remaining endurance (clipped at zero)."""
        self._sync_lists_to_numpy()
        return np.maximum(self.endurance - self.writes, 0)

    def wear_fraction(self) -> np.ndarray:
        """Per-page wear as a fraction of endurance."""
        self._sync_lists_to_numpy()
        return self.writes / self.endurance.astype(np.float64)

    def utilization(self) -> float:
        """Fraction of total endurance capacity consumed so far.

        A perfect PV-aware wear leveler reaches ~1.0 at first failure; the
        paper's normalized lifetime is precisely this quantity at the
        failure point (modulo swap-write overhead).
        """
        self._sync_lists_to_numpy()
        return float(self.writes.sum() / self.endurance.sum())

    def weakest_pages(self, k: int) -> np.ndarray:
        """Indices of the ``k`` lowest-endurance pages, weakest first."""
        if not 1 <= k <= self.n_pages:
            raise ValueError(f"k must be in [1, {self.n_pages}], got {k}")
        order = np.argsort(self.endurance, kind="stable")
        return order[:k]

    def endurance_capacity(self) -> int:
        """Sum of all page endurances (total writes an ideal leveler serves)."""
        return int(self.endurance.sum())

    def __repr__(self) -> str:
        return (
            f"PCMArray(n_pages={self.n_pages}, total_writes={self.total_writes}, "
            f"failed={self.has_failure})"
        )
