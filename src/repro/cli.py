"""Command-line entry point.

``twl-repro <experiment>`` regenerates any table or figure of the paper::

    twl-repro table2
    twl-repro fig6 --quick
    twl-repro fig6 --quick --jobs 4
    twl-repro all --jobs 8

``--quick`` runs at the reduced CI scale (same mechanisms, smaller
array, subsampled benchmark list).  ``--jobs N`` fans independent
experiment cells across N worker processes; results are bit-identical
to the serial run.  ``--batch-size N`` serves demand writes through the
engine's batched write protocol (also bit-identical; see
``docs/performance.md``).  Completed cells are cached on disk (default
``~/.cache/twl-repro/``), so re-running a figure is near-instant —
``--no-cache`` disables that, ``--cache-dir`` relocates it.

Long campaigns can be hardened (``docs/robustness.md``): ``--retries``
re-runs failed cells, ``--cell-timeout`` bounds each cell's wall
clock, ``--keep-going`` finishes the campaign past failures (a single
summary error is raised at the end), and ``--resume PATH`` checkpoints
progress to an append-only journal so a killed campaign restarted with
the same flag skips every finished cell — all execution knobs, so the
results stay bit-identical to a clean serial run.  ``--snapshot-every
N`` goes sub-cell: the engine periodically writes a crash-consistent
snapshot of its full state into the cache directory, and a killed cell
restarted under the same identity resumes from the last snapshot
instead of from zero — still bit-identical.

Streaming workloads (``docs/workloads.md``): ``twl-repro stream`` runs
every Figure-8 scheme under a streamed workload at constant memory —
the built-in FTL dynamic generator by default, or any on-disk trace via
``--trace PATH`` (monolithic ``.npz``, chunked ``.twt``, text, or
block-trace CSV, auto-detected).  ``--chunk-size N`` sets the stream
chunk granularity; like ``--batch-size`` it cannot change results.

Determinism tooling (``docs/invariants.md``): ``twl-repro lint`` runs
the static determinism/purity pass (rules TWL001–TWL007) over the
package tree and exits non-zero on any violation; ``--sanitize`` (or
``REPRO_SANITIZE=1``) arms the runtime sanitizer, making any
global-RNG call inside engine/sim execution raise
:class:`~repro.errors.DeterminismViolation` instead of silently
breaking cache and resume bit-identity.
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import replace
from typing import Callable, Dict, List, Optional

from .devtools import sanitize
from .errors import ReproError
from .exec.cache import default_cache_dir
from .exec.policy import ON_ERROR_FAIL_FAST, ON_ERROR_KEEP_GOING, FailurePolicy
from .experiments import (
    ablations,
    energy,
    fig6,
    fig7,
    fig8,
    fig9,
    overhead,
    resilience,
    streaming,
    table1,
    table2,
)
from .experiments.setups import ExperimentSetup, default_setup, quick_setup


def _print(title: str, body: str) -> None:
    print("=" * 72)
    print(title)
    print("=" * 72)
    print(body)
    print()


def _run_table1(setup: ExperimentSetup) -> None:
    _print("Table 1 — simulation setup", table1.run(setup).render())


def _run_table2(setup: ExperimentSetup) -> None:
    _print("Table 2 — benchmarks", table2.run(setup).render(precision=1))


def _run_fig6(setup: ExperimentSetup) -> None:
    _print("Figure 6 — lifetime under attacks (years)", fig6.run(setup).render(precision=2))
    _print(
        'Figure 6 — "worn out quickly" full-scale extrapolation',
        fig6.quick_death_report(setup).render(precision=4),
    )


def _run_fig7(setup: ExperimentSetup) -> None:
    _print("Figure 7 — toss-up interval sweep", fig7.run(setup).render(precision=4))


def _run_fig8(setup: ExperimentSetup) -> None:
    _print("Figure 8 — normalized lifetime", fig8.run(setup).render(precision=3))


def _run_fig9(setup: ExperimentSetup) -> None:
    _print("Figure 9 — normalized execution time", fig9.run(setup).render(precision=4))


def _run_overhead(setup: ExperimentSetup) -> None:
    _print("Section 5.4 — design overhead", overhead.run(setup).render())


def _run_energy(setup: ExperimentSetup) -> None:
    _print("E1 — write-energy overhead", energy.run(setup).render(precision=4))


def _run_resilience(setup: ExperimentSetup) -> None:
    _print(
        "R1 — controller soft-error resilience (years)",
        resilience.run(setup).render(precision=2),
    )


def _run_streaming(setup: ExperimentSetup) -> None:
    source = setup.stream_trace or "ftl (dynamic generator)"
    _print(
        f"Streamed workload — {source}",
        streaming.run(setup).render(precision=4),
    )


def _run_ablations(setup: ExperimentSetup) -> None:
    _print("A1 — pairing policy", ablations.pairing_ablation(setup).render(precision=2))
    _print(
        "A2 — inter-pair interval",
        ablations.inter_pair_interval_ablation(setup).render(precision=4),
    )
    _print("A3 — endurance sigma", ablations.sigma_ablation(setup).render(precision=2))
    _print(
        "A5 — workload footprint",
        ablations.footprint_ablation(setup).render(precision=3),
    )
    _print(
        "A4 — toss-up endurance mode",
        ablations.remaining_endurance_ablation(setup).render(precision=2),
    )
    _print("A6 — SR structure", ablations.sr_level_ablation(setup).render(precision=2))
    _print(
        "A9 — page retirement vs TWL",
        ablations.retirement_ablation(setup).render(precision=2),
    )


_EXPERIMENTS: Dict[str, Callable[[ExperimentSetup], None]] = {
    "table1": _run_table1,
    "table2": _run_table2,
    "fig6": _run_fig6,
    "fig7": _run_fig7,
    "fig8": _run_fig8,
    "fig9": _run_fig9,
    "overhead": _run_overhead,
    "ablations": _run_ablations,
    "energy": _run_energy,
    "resilience": _run_resilience,
    "stream": _run_streaming,
}


def _positive_int(text: str) -> int:
    """Argparse type for strictly positive integer options."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return value


def _non_negative_int(text: str) -> int:
    """Argparse type for integer options allowing zero."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _positive_float(text: str) -> float:
    """Argparse type for strictly positive float options."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="twl-repro",
        description=(
            "Reproduce the tables and figures of 'Toss-up Wear Leveling' "
            "(DAC 2017)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_EXPERIMENTS) + ["all", "report", "lint", "serve", "loadgen"],
        help=(
            "which table/figure to regenerate ('report' builds Markdown; "
            "'lint' runs the static determinism checks; 'serve' runs the "
            "campaign server and 'loadgen' its chaos client — see "
            "docs/serving.md)"
        ),
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help=(
            "arm the runtime determinism sanitizer: any global-RNG call "
            "inside engine/sim execution raises DeterminismViolation "
            "(equivalent to REPRO_SANITIZE=1; see docs/invariants.md)"
        ),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run at the reduced CI scale",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for experiment cells (default: 1, serial)",
    )
    parser.add_argument(
        "--batch-size",
        type=_positive_int,
        default=1,
        metavar="N",
        help=(
            "demand writes per engine step (default: 1, the legacy "
            "per-write path); results are bit-identical at any value"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="result cache location (default: ~/.cache/twl-repro)",
    )
    parser.add_argument(
        "--retries",
        type=_non_negative_int,
        default=0,
        metavar="N",
        help=(
            "extra attempts for a failed cell (default: 0); retried "
            "cells are pure re-runs, so results stay bit-identical"
        ),
    )
    parser.add_argument(
        "--cell-timeout",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="per-cell wall-clock budget; a cell running past it fails",
    )
    parser.add_argument(
        "--keep-going",
        action="store_true",
        help=(
            "finish every runnable cell despite failures and raise one "
            "summary error at the end (default: stop at the first)"
        ),
    )
    parser.add_argument(
        "--resume",
        default=None,
        metavar="MANIFEST",
        help=(
            "checkpoint journal (JSONL) to append campaign progress to; "
            "cells already recorded there are skipped, so re-running a "
            "killed campaign with the same flag resumes it — works even "
            "with --no-cache"
        ),
    )
    parser.add_argument(
        "--snapshot-every",
        type=_positive_int,
        default=None,
        metavar="N",
        help=(
            "emit a crash-consistent engine snapshot every N demand "
            "writes so a killed cell resumes mid-run instead of from "
            "zero (snapshots live in the cache directory; an execution "
            "knob — resumed results are bit-identical)"
        ),
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help=(
            "for 'stream': stream this on-disk trace (.npz/.twt/text/CSV, "
            "auto-detected) instead of the FTL dynamic generator"
        ),
    )
    parser.add_argument(
        "--chunk-size",
        type=_positive_int,
        default=None,
        metavar="N",
        help=(
            "requests per stream chunk (default: 65536); an execution "
            "knob — results are bit-identical at any value"
        ),
    )
    parser.add_argument(
        "--output",
        default=None,
        help="for 'report': write the Markdown report to this file",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    raw = list(sys.argv[1:]) if argv is None else list(argv)
    if raw[:1] == ["lint"]:
        # The lint verb owns its own argument surface (paths, --format,
        # --no-classify); hand everything after the verb straight through
        # instead of teaching the experiment parser lint's flags.
        from .devtools.lint import main as lint_main

        return lint_main(raw[1:])
    if raw[:1] == ["serve"]:
        # Same verb-forwarding pattern: the server owns its own flags.
        from .serve.cli import serve_main

        return serve_main(raw[1:])
    if raw[:1] == ["loadgen"]:
        from .serve.cli import loadgen_main

        return loadgen_main(raw[1:])
    args = build_parser().parse_args(raw)
    if args.sanitize:
        # Set the env var too so pool workers under spawn arm themselves.
        os.environ[sanitize.SANITIZE_ENV] = "1"
        sanitize.install()
    else:
        sanitize.maybe_install_from_env()
    setup = quick_setup() if args.quick else default_setup()
    cache_dir = None if args.no_cache else (args.cache_dir or default_cache_dir())
    failure = FailurePolicy(
        max_retries=args.retries,
        timeout=args.cell_timeout,
        on_error=ON_ERROR_KEEP_GOING if args.keep_going else ON_ERROR_FAIL_FAST,
    )
    setup = replace(
        setup,
        jobs=max(1, args.jobs),
        cache_dir=cache_dir,
        batch_size=args.batch_size,
        failure=failure,
        resume=args.resume,
    )
    if args.trace is not None:
        setup = replace(setup, stream_trace=args.trace)
    if args.chunk_size is not None:
        setup = replace(setup, chunk_size=args.chunk_size)
    if args.snapshot_every is not None:
        setup = replace(setup, snapshot_every=args.snapshot_every)
    try:
        if args.experiment == "report":
            from .analysis.report import build_report

            text = build_report(setup)
            if args.output:
                with open(args.output, "w") as handle:
                    handle.write(text)
                print(f"report written to {args.output}")
            else:
                print(text)
            return 0
        if args.experiment == "all":
            for name in (
                "table1", "table2", "fig6", "fig7", "fig8", "fig9",
                "overhead", "energy", "ablations", "resilience", "stream",
            ):
                _EXPERIMENTS[name](setup)
        else:
            _EXPERIMENTS[args.experiment](setup)
    except ReproError as error:
        print(f"twl-repro: error: {error}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
