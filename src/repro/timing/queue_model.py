"""Discrete-event write-queue timing model.

The analytic Figure-9 model (`repro.timing.perf_model`) charges each
scheme's overhead through fixed exposure factors.  This module replaces
the factors with an actual single-server queue simulation of the PCM
write path (Lindley recursion):

* demand writes arrive as a Poisson stream whose utilization reflects
  the benchmark's memory-boundedness;
* each write's service time is the PCM page-write latency plus the
  scheme's serialized control path;
* with the scheme's *measured* per-write swap-event probability, a
  request additionally occupies the device for its migration writes —
  which is exactly how blocking swaps stretch the latency the attacker
  (and the application) observes.

Normalized execution time is the ratio of mean request sojourn times
against the no-wear-leveling queue at the same arrival rate — queueing
naturally amplifies overheads at high utilization, which the fixed
exposure factors could only approximate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config import TimingConfig, TWLConfig
from ..errors import ConfigError
from ..rng.streams import derive_seed
from ..rng.xorshift import XorShift32
from ..sim.metrics import SchemeOverheads
from ..traces.parsec import BenchmarkProfile
from .latency import control_path_cycles


@dataclass(frozen=True)
class QueueModelConfig:
    """Queue simulation parameters."""

    #: Utilization of the write path for a fully memory-bound benchmark.
    peak_utilization: float = 0.75
    #: Utilization floor for the least memory-bound benchmark.
    base_utilization: float = 0.30
    n_requests: int = 50_000
    seed: int = 2017

    def __post_init__(self) -> None:
        if not 0.0 < self.base_utilization <= self.peak_utilization < 1.0:
            raise ConfigError(
                "need 0 < base_utilization <= peak_utilization < 1"
            )
        if self.n_requests < 100:
            raise ConfigError("need at least 100 simulated requests")


@dataclass(frozen=True)
class QueueResult:
    """Outcome of one queue simulation."""

    mean_sojourn_cycles: float
    mean_wait_cycles: float
    mean_service_cycles: float
    utilization: float


def _utilization_for(profile: BenchmarkProfile, config: QueueModelConfig) -> float:
    boundedness = profile.memory_boundedness()  # in [0.5, 1.0]
    span = config.peak_utilization - config.base_utilization
    return config.base_utilization + span * (boundedness - 0.5) / 0.5


def simulate_write_queue(
    scheme_name: str,
    swap_event_probability: float,
    mean_swap_writes: float,
    utilization: float,
    timing: TimingConfig = TimingConfig(),
    twl_config: TWLConfig = TWLConfig(),
    config: QueueModelConfig = QueueModelConfig(),
) -> QueueResult:
    """Lindley-recursion simulation of the scheme's write queue."""
    if not 0.0 <= swap_event_probability <= 1.0:
        raise ConfigError("swap event probability must be in [0, 1]")
    if mean_swap_writes < 0:
        raise ConfigError("mean swap writes must be non-negative")
    if not 0.0 < utilization < 1.0:
        raise ConfigError("utilization must be in (0, 1)")

    control = control_path_cycles(scheme_name, timing, twl_config)
    base_service = timing.write_cycles + control
    mean_service = base_service + (
        swap_event_probability * mean_swap_writes * timing.write_cycles
    )
    # The workload's arrival rate is scheme-independent: ``utilization``
    # describes the *plain* write path (no wear-leveling overhead), and
    # a scheme's extra service raises its effective utilization — which
    # is exactly how queueing amplifies overheads.
    mean_interarrival = timing.write_cycles / utilization
    if mean_service >= mean_interarrival:
        raise ConfigError(
            "scheme overhead saturates the write path at this utilization "
            f"(mean service {mean_service:.0f} >= interarrival "
            f"{mean_interarrival:.0f} cycles)"
        )

    rng = XorShift32((derive_seed(config.seed, "queue", scheme_name) % 0xFFFF_FFFE) + 1)
    wait = 0.0
    total_wait = 0.0
    total_service = 0.0
    swap_extra = mean_swap_writes * timing.write_cycles
    for _ in range(config.n_requests):
        service = base_service
        if rng.next_unit() < swap_event_probability:
            service += swap_extra
        total_wait += wait
        total_service += service
        # Exponential interarrival (Poisson arrivals), then the Lindley
        # step: W_{n+1} = max(0, W_n + S_n - A_{n+1}).
        u = max(rng.next_unit(), 1e-12)
        interarrival = -mean_interarrival * math.log(u)
        wait = max(0.0, wait + service - interarrival)
    n = config.n_requests
    return QueueResult(
        mean_sojourn_cycles=(total_wait + total_service) / n,
        mean_wait_cycles=total_wait / n,
        mean_service_cycles=total_service / n,
        utilization=utilization,
    )


def queue_normalized_execution_time(
    scheme_name: str,
    overheads: SchemeOverheads,
    profile: BenchmarkProfile,
    timing: TimingConfig = TimingConfig(),
    twl_config: TWLConfig = TWLConfig(),
    config: QueueModelConfig = QueueModelConfig(),
) -> float:
    """Figure-9 metric from the queue model (vs a NOWL queue)."""
    utilization = _utilization_for(profile, config)
    if overheads.swap_event_ratio > 0:
        mean_swap_writes = overheads.swap_write_ratio / overheads.swap_event_ratio
    else:
        mean_swap_writes = 0.0
    with_scheme = simulate_write_queue(
        scheme_name,
        min(1.0, overheads.swap_event_ratio),
        mean_swap_writes,
        utilization,
        timing,
        twl_config,
        config,
    )
    baseline = simulate_write_queue(
        "nowl", 0.0, 0.0, utilization, timing, twl_config, config
    )
    return with_scheme.mean_sojourn_cycles / baseline.mean_sojourn_cycles
