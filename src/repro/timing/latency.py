"""Per-request latency accounting.

Each scheme adds a serialized control path in front of the PCM access:

* NOWL — none;
* Start-Gap — start/gap registers (pure arithmetic, one cycle);
* SR — region key/pointer registers plus the XOR stage;
* WRL — a remapping-table lookup (the WNT update is off the critical
  path: it happens while the write is in flight);
* BWL — two Bloom-filter probes plus the cold/hot list plus the
  remapping table, all serialized before the write can issue ("two bloom
  filters and a cold-hot list are accessed during every write");
* TWL — the remapping table on every access, plus the engine (SWPT + ET
  lookups, RNG, control logic) only when the write counter fires, i.e.
  amortized over the toss-up interval ("TWL engine functions only when
  write counter equals the toss-up interval").
"""

from __future__ import annotations

from ..config import TimingConfig, TWLConfig
from ..errors import ConfigError


def control_path_cycles(
    scheme_name: str,
    timing: TimingConfig = TimingConfig(),
    twl_config: TWLConfig = TWLConfig(),
) -> float:
    """Average serialized control cycles per demand write for a scheme."""
    name = scheme_name.lower()
    if name == "nowl":
        return 0.0
    if name == "startgap":
        return 1.0
    if name == "sr":
        return float(timing.table_cycles)
    if name == "wrl":
        return float(timing.table_cycles)
    if name == "bwl":
        return float(
            2 * timing.bloom_probe_cycles
            + timing.coldhot_list_cycles
            + timing.table_cycles
        )
    if name in ("twl", "twl_swp", "twl_ap", "twl_random"):
        engine = (
            timing.table_cycles  # SWPT + ET read, overlapped pairwise
            + timing.rng_cycles
            + timing.twl_logic_cycles
        )
        return float(timing.table_cycles) + engine / twl_config.toss_up_interval
    raise ConfigError(f"no control-path model for scheme {scheme_name!r}")


def request_latency_cycles(
    is_write: bool,
    extra_physical_writes: int,
    scheme_name: str,
    timing: TimingConfig = TimingConfig(),
    twl_config: TWLConfig = TWLConfig(),
) -> float:
    """Latency of one request, including blocking migration writes.

    ``extra_physical_writes`` counts migration writes serialized with the
    request (0 for a plain access).
    """
    if extra_physical_writes < 0:
        raise ValueError("extra writes must be non-negative")
    control = control_path_cycles(scheme_name, timing, twl_config)
    base = timing.write_cycles if is_write else timing.read_cycles
    return control + base + extra_physical_writes * timing.write_cycles
