"""Write-energy model (extension beyond the paper).

The paper evaluates lifetime, performance and area; energy is the
fourth axis a memory-controller designer asks about, and every input it
needs is already in the reproduction:

* data-comparison write (DCW, [16] in the paper) scales the energy of a
  page write by the fraction of bits that actually flip;
* each wear-leveling scheme multiplies the number of physical page
  writes by ``1 + swap_write_ratio`` — migration writes copy whole
  pages, so they pay *full-page* energy (no DCW savings: the data is
  new to the target frame);
* per-write control logic (tables, Bloom probes, RNG) adds a small
  SRAM/logic energy term.

Energies are reported in nanojoules per demand write and as overhead
relative to no wear leveling, using representative PCM per-bit write
energy from the literature the paper builds on.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import PCMConfig, TimingConfig, TWLConfig, PAPER_PCM
from ..errors import ConfigError
from ..pcm.dcw import DataComparisonWriteModel
from ..sim.metrics import SchemeOverheads
from .latency import control_path_cycles

#: Representative PCM programming energy per written bit (joules).  SET
#: pulses dominate; 2 pJ/bit is the order used by the PCM main-memory
#: literature the paper cites.
PCM_WRITE_ENERGY_PER_BIT = 2e-12

#: SRAM/logic energy per control-path cycle (joules) — table lookups,
#: Bloom probes, comparators.  Orders of magnitude below cell writes.
CONTROL_ENERGY_PER_CYCLE = 5e-13


@dataclass(frozen=True)
class EnergyModelConfig:
    """Energy model parameters."""

    write_energy_per_bit: float = PCM_WRITE_ENERGY_PER_BIT
    control_energy_per_cycle: float = CONTROL_ENERGY_PER_CYCLE

    def __post_init__(self) -> None:
        if self.write_energy_per_bit <= 0:
            raise ConfigError("write energy must be positive")
        if self.control_energy_per_cycle < 0:
            raise ConfigError("control energy must be non-negative")


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-demand-write energy of one scheme on one workload (joules)."""

    scheme: str
    demand_write_energy: float
    migration_energy: float
    control_energy: float

    @property
    def total(self) -> float:
        """Total energy per demand write."""
        return self.demand_write_energy + self.migration_energy + self.control_energy

    def overhead_versus(self, baseline: "EnergyBreakdown") -> float:
        """Fractional energy overhead relative to ``baseline``."""
        if baseline.total <= 0:
            raise ConfigError("baseline energy must be positive")
        return self.total / baseline.total - 1.0


def energy_per_demand_write(
    scheme_name: str,
    overheads: SchemeOverheads,
    pcm: PCMConfig = PAPER_PCM,
    dcw: DataComparisonWriteModel = DataComparisonWriteModel(),
    timing: TimingConfig = TimingConfig(),
    twl_config: TWLConfig = TWLConfig(),
    config: EnergyModelConfig = EnergyModelConfig(),
) -> EnergyBreakdown:
    """Energy breakdown for one scheme given its measured swap ratios."""
    page_bits = pcm.page_bytes * 8
    # Demand writes benefit from data-comparison write.
    demand = page_bits * dcw.flip_probability * config.write_energy_per_bit
    # Migration writes copy whole pages into frames holding unrelated
    # data, so effectively every bit is (re)programmed.
    migration = (
        overheads.swap_write_ratio * page_bits * config.write_energy_per_bit
    )
    control = (
        control_path_cycles(scheme_name, timing, twl_config)
        * config.control_energy_per_cycle
    )
    return EnergyBreakdown(
        scheme=scheme_name,
        demand_write_energy=demand,
        migration_energy=migration,
        control_energy=control,
    )


def nowl_baseline(
    pcm: PCMConfig = PAPER_PCM,
    dcw: DataComparisonWriteModel = DataComparisonWriteModel(),
    config: EnergyModelConfig = EnergyModelConfig(),
) -> EnergyBreakdown:
    """The no-wear-leveling energy reference."""
    page_bits = pcm.page_bytes * 8
    return EnergyBreakdown(
        scheme="nowl",
        demand_write_energy=page_bits * dcw.flip_probability * config.write_energy_per_bit,
        migration_energy=0.0,
        control_energy=0.0,
    )
