"""Timing and performance models.

* :mod:`repro.timing.latency` — per-request latency accounting from the
  Table-1 cycle parameters, including each scheme's control-path cost;
* :mod:`repro.timing.perf_model` — the analytic normalized-execution-time
  model behind the Figure-9 reproduction.
"""

from .latency import control_path_cycles, request_latency_cycles
from .perf_model import PerfModelConfig, normalized_execution_time
from .energy import (
    EnergyBreakdown,
    EnergyModelConfig,
    energy_per_demand_write,
    nowl_baseline,
)
from .queue_model import (
    QueueModelConfig,
    QueueResult,
    simulate_write_queue,
    queue_normalized_execution_time,
)

__all__ = [
    "control_path_cycles",
    "request_latency_cycles",
    "PerfModelConfig",
    "normalized_execution_time",
    "EnergyBreakdown",
    "EnergyModelConfig",
    "energy_per_demand_write",
    "nowl_baseline",
    "QueueModelConfig",
    "QueueResult",
    "simulate_write_queue",
    "queue_normalized_execution_time",
]
