"""Normalized-execution-time model (Figure 9).

The paper measures execution time in gem5 full-system mode; the
differences between schemes come entirely from (a) the serialized control
path added to every write and (b) the extra migration writes each scheme
issues.  We model normalized execution time analytically:

    T_norm = 1 + m_b * (control + exposed_swap_cycles) / write_cycles

where

* ``m_b`` is the benchmark's memory-boundedness (how much of execution
  time is exposed to PCM write latency; synthetic, scaled from the
  benchmark's write bandwidth — see ``BenchmarkProfile``);
* ``control`` is the scheme's per-write control path
  (:func:`repro.timing.latency.control_path_cycles`);
* ``exposed_swap_cycles`` charges the scheme's *measured* swap writes
  per demand write at the PCM write latency, scaled by how much of a
  swap blocks the request stream: SR/WRL/BWL migrations block the
  memory ("memory swaps will block all memory requests"), while TWL's
  swap-then-write touches only the written pair, so its second write
  can retire from the write queue in the background.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import TimingConfig, TWLConfig
from ..errors import ConfigError
from ..sim.metrics import SchemeOverheads
from ..traces.parsec import BenchmarkProfile
from .latency import control_path_cycles

#: Schemes whose migrations block the whole request stream.
_BLOCKING_SCHEMES = {"sr", "wrl", "bwl", "startgap"}
_TWL_SCHEMES = {"twl", "twl_swp", "twl_ap", "twl_random"}


@dataclass(frozen=True)
class PerfModelConfig:
    """Exposure parameters of the analytic timing model."""

    blocking_swap_exposure: float = 1.0
    twl_swap_exposure: float = 0.5

    def __post_init__(self) -> None:
        for name in ("blocking_swap_exposure", "twl_swap_exposure"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {value}")


def swap_exposure(scheme_name: str, config: PerfModelConfig) -> float:
    """Fraction of a scheme's swap-write latency exposed to execution."""
    name = scheme_name.lower()
    if name == "nowl":
        return 0.0
    if name in _BLOCKING_SCHEMES:
        return config.blocking_swap_exposure
    if name in _TWL_SCHEMES:
        return config.twl_swap_exposure
    raise ConfigError(f"no exposure model for scheme {scheme_name!r}")


def normalized_execution_time(
    scheme_name: str,
    overheads: SchemeOverheads,
    profile: BenchmarkProfile,
    timing: TimingConfig = TimingConfig(),
    twl_config: TWLConfig = TWLConfig(),
    config: PerfModelConfig = PerfModelConfig(),
) -> float:
    """Execution time normalized to NOWL for one benchmark and scheme."""
    control = control_path_cycles(scheme_name, timing, twl_config)
    exposure = swap_exposure(scheme_name, config)
    swap_cycles = overheads.swap_write_ratio * timing.write_cycles * exposure
    overhead_fraction = (control + swap_cycles) / timing.write_cycles
    return 1.0 + profile.memory_boundedness() * overhead_fraction
