"""Shared experiment configuration.

The full setup runs every cell of every figure at the default scaled
array (1024 pages, endurance-to-footprint ratio matching the paper's
full-scale memory).  The quick setup shrinks the array and subsamples
the benchmark list for CI/tests; set the environment variable
``REPRO_QUICK=1`` to make every benchmark target use it.

Execution knobs ride along on the setup: ``jobs`` fans the experiment
grids out across worker processes (``repro.exec``), ``cache_dir``
enables the on-disk result cache, ``failure`` carries the
:class:`~repro.exec.FailurePolicy` (retries, per-cell timeout,
fail-fast vs keep-going) and ``resume`` points at a checkpoint
journal.  ``active_setup`` reads them from ``REPRO_JOBS`` /
``REPRO_CACHE_DIR`` / ``REPRO_BATCH_SIZE`` / ``REPRO_RETRIES`` /
``REPRO_CELL_TIMEOUT`` / ``REPRO_KEEP_GOING`` / ``REPRO_RESUME`` /
``REPRO_TRACE`` / ``REPRO_CHUNK_SIZE`` / ``REPRO_SNAPSHOT_EVERY`` so
the benchmark harness can be hardened without touching code; the CLI
sets them from ``--jobs`` / ``--cache-dir`` / ``--no-cache`` /
``--batch-size`` / ``--retries`` / ``--cell-timeout`` /
``--keep-going`` / ``--resume`` / ``--trace`` / ``--chunk-size`` /
``--snapshot-every``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from ..config import ScaledArrayConfig, TWLConfig
from ..exec.policy import ON_ERROR_KEEP_GOING, FailurePolicy

#: Figure-6/8 scheme sets, in the paper's plotting order.
FIG6_SCHEMES: Tuple[str, ...] = ("bwl", "sr", "twl_ap", "twl_swp", "nowl")
FIG8_SCHEMES: Tuple[str, ...] = ("bwl", "sr", "twl", "nowl")
FIG9_SCHEMES: Tuple[str, ...] = ("bwl", "sr", "twl")
ATTACKS: Tuple[str, ...] = ("repeat", "random", "scan", "inconsistent")

#: Paper Table 2 benchmark order.
BENCHMARKS: Tuple[str, ...] = (
    "blackscholes",
    "bodytrack",
    "canneal",
    "dedup",
    "facesim",
    "ferret",
    "fluidanimate",
    "freqmine",
    "rtview",
    "streamcluster",
    "swaptions",
    "vips",
    "x264",
)

_QUICK_BENCHMARKS: Tuple[str, ...] = ("canneal", "streamcluster", "vips", "x264")

#: ``ExperimentSetup`` fields that shape experiment outcomes — they
#: flow into cell specs and therefore into cache fingerprints.
SETUP_IDENTITY_FIELDS = frozenset(
    {
        "scaled",
        "benchmarks",
        "trace_writes",
        "overhead_writes",
        "seed",
        "twl_config",
        "stream_trace",
    }
)

#: ``ExperimentSetup`` fields that only steer *how* cells execute
#: (parallelism, caching, resilience) — by the executor's identity
#: contracts none of them can change a result.  Lint rule TWL003
#: requires every field to appear in exactly one of these two sets, so
#: a new field cannot silently join (or silently skip) cache identity.
SETUP_EXECUTION_FIELDS = frozenset(
    {
        "jobs",
        "cache_dir",
        "batch_size",
        "chunk_size",
        "failure",
        "resume",
        "snapshot_every",
    }
)


@dataclass(frozen=True)
class ExperimentSetup:
    """Scale and workload knobs shared by all experiments."""

    scaled: ScaledArrayConfig
    benchmarks: Tuple[str, ...]
    trace_writes: int
    overhead_writes: int
    seed: int = 2017
    twl_config: TWLConfig = field(default_factory=TWLConfig)
    #: Worker processes for experiment grids (1 = serial).
    jobs: int = 1
    #: On-disk result cache directory (None = caching off).
    cache_dir: Optional[str] = None
    #: Demand writes per engine step (1 = legacy per-write path).
    #: Bit-identical results at any value, so — like ``jobs`` — this is
    #: an execution knob, not part of a cell's cache identity.
    batch_size: int = 1
    #: Failure policy for campaign execution (retries, per-cell
    #: timeout, fail-fast vs keep-going).  Execution knobs only — a
    #: retried campaign is bit-identical to a clean one.
    failure: FailurePolicy = field(default_factory=FailurePolicy)
    #: Checkpoint journal path; when set, completed cells recorded
    #: there are skipped and new completions are appended (crash-safe
    #: resume, independent of the cache).
    resume: Optional[str] = None
    #: On-disk trace for the streaming experiment (None = the built-in
    #: FTL dynamic workload generator).  Identity-bearing: the trace
    #: *is* the workload.
    stream_trace: Optional[str] = None
    #: Requests per stream chunk.  Execution knob by the chunk-identity
    #: contract — segmentation never changes the request sequence.
    chunk_size: int = 65536
    #: Mid-run snapshot cadence in demand writes (0 = off).  When set
    #: (and ``cache_dir`` is available to hold the snapshot files),
    #: long cells periodically checkpoint engine state so a killed run
    #: resumes sub-cell instead of from zero.  Execution knob by the
    #: sub-cell recovery contract: emission is inert and a resumed run
    #: is bit-identical to an uninterrupted one.
    snapshot_every: int = 0

    @property
    def n_pages(self) -> int:
        """Pages in the scaled array."""
        return self.scaled.n_pages


def default_setup() -> ExperimentSetup:
    """The full-fidelity setup used for the recorded results."""
    return ExperimentSetup(
        scaled=ScaledArrayConfig(n_pages=1024, endurance_mean=12288.0),
        benchmarks=BENCHMARKS,
        trace_writes=300_000,
        overhead_writes=150_000,
    )


def quick_setup() -> ExperimentSetup:
    """Reduced setup for CI and tests (same ratio, smaller array)."""
    return ExperimentSetup(
        scaled=ScaledArrayConfig(n_pages=256, endurance_mean=3072.0),
        benchmarks=_QUICK_BENCHMARKS,
        trace_writes=60_000,
        overhead_writes=40_000,
    )


def active_setup() -> ExperimentSetup:
    """Setup selected by the ``REPRO_*`` environment variables.

    ``REPRO_QUICK=1`` picks the reduced scale; ``REPRO_JOBS=N`` fans
    experiment grids across N worker processes; ``REPRO_CACHE_DIR=path``
    enables the on-disk result cache there; ``REPRO_BATCH_SIZE=N``
    selects the engine's batched write protocol.  Resilience knobs:
    ``REPRO_RETRIES=N`` retries failed cells, ``REPRO_CELL_TIMEOUT=S``
    bounds each cell's wall clock, ``REPRO_KEEP_GOING=1`` finishes the
    campaign past failures, and ``REPRO_RESUME=path`` checkpoints to
    (and resumes from) a journal there.  Streaming knobs:
    ``REPRO_TRACE=path`` streams an on-disk trace instead of the FTL
    generator, ``REPRO_CHUNK_SIZE=N`` sets the stream chunk size, and
    ``REPRO_SNAPSHOT_EVERY=N`` emits a mid-run engine snapshot every N
    demand writes so killed cells resume sub-cell.
    """
    if os.environ.get("REPRO_QUICK", "").strip() in ("1", "true", "yes"):
        setup = quick_setup()
    else:
        setup = default_setup()
    jobs = os.environ.get("REPRO_JOBS", "").strip()
    if jobs:
        setup = replace(setup, jobs=max(1, int(jobs)))
    cache_dir = os.environ.get("REPRO_CACHE_DIR", "").strip()
    if cache_dir:
        setup = replace(setup, cache_dir=cache_dir)
    batch_size = os.environ.get("REPRO_BATCH_SIZE", "").strip()
    if batch_size:
        setup = replace(setup, batch_size=max(1, int(batch_size)))
    failure = setup.failure
    retries = os.environ.get("REPRO_RETRIES", "").strip()
    if retries:
        failure = replace(failure, max_retries=max(0, int(retries)))
    cell_timeout = os.environ.get("REPRO_CELL_TIMEOUT", "").strip()
    if cell_timeout:
        failure = replace(failure, timeout=float(cell_timeout))
    if os.environ.get("REPRO_KEEP_GOING", "").strip() in ("1", "true", "yes"):
        failure = replace(failure, on_error=ON_ERROR_KEEP_GOING)
    if failure is not setup.failure:
        setup = replace(setup, failure=failure)
    resume = os.environ.get("REPRO_RESUME", "").strip()
    if resume:
        setup = replace(setup, resume=resume)
    stream_trace = os.environ.get("REPRO_TRACE", "").strip()
    if stream_trace:
        setup = replace(setup, stream_trace=stream_trace)
    chunk_size = os.environ.get("REPRO_CHUNK_SIZE", "").strip()
    if chunk_size:
        setup = replace(setup, chunk_size=max(1, int(chunk_size)))
    snapshot_every = os.environ.get("REPRO_SNAPSHOT_EVERY", "").strip()
    if snapshot_every:
        setup = replace(setup, snapshot_every=max(0, int(snapshot_every)))
    return setup
