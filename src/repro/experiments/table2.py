"""Table 2 — benchmark characterization.

For every PARSEC benchmark: the paper's write bandwidth (an input), the
ideal lifetime our calibration computes from it, and the lifetime
without wear leveling measured by simulating the synthetic trace on the
scaled array under NOWL — both compared against the paper's printed
values.
"""

from __future__ import annotations

from typing import Optional

from ..analysis.calibration import ideal_lifetime_years
from ..analysis.tables import ResultTable
from ..sim.runner import measure_trace_lifetime
from ..traces.parsec import get_profile, make_benchmark_trace
from .setups import ExperimentSetup, default_setup


def run(setup: Optional[ExperimentSetup] = None) -> ResultTable:
    """Reproduce Table 2 (ideal and no-WL lifetimes)."""
    setup = setup or default_setup()
    table = ResultTable(
        [
            "benchmark",
            "bandwidth_mbps",
            "ideal_years",
            "ideal_paper",
            "nowl_years",
            "nowl_paper",
        ]
    )
    for name in setup.benchmarks:
        profile = get_profile(name)
        trace = make_benchmark_trace(
            profile, setup.n_pages, setup.trace_writes, seed=setup.seed
        )
        result = measure_trace_lifetime(
            "nowl", trace, scaled=setup.scaled, seed=setup.seed
        )
        ideal = ideal_lifetime_years(profile.write_bandwidth_mbps)
        table.add_row(
            benchmark=name,
            bandwidth_mbps=profile.write_bandwidth_mbps,
            ideal_years=round(ideal, 1),
            ideal_paper=profile.ideal_lifetime_years,
            nowl_years=round(result.lifetime_fraction * ideal, 1),
            nowl_paper=profile.lifetime_no_wl_years,
        )
    return table


def main() -> None:
    """Print the table."""
    print(run().render(precision=1, title="Table 2 — benchmarks (reproduced vs paper)"))


if __name__ == "__main__":
    main()
