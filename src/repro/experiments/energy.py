"""E1 — write-energy overhead (extension beyond the paper).

Combines each scheme's measured migration-write ratio (the Figure-9
measurement) with the data-comparison-write energy model to estimate
write-energy overhead versus no wear leveling, per benchmark.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..analysis.tables import ResultTable
from ..timing.energy import energy_per_demand_write, nowl_baseline
from .fig9 import measure_overheads
from .setups import FIG9_SCHEMES, ExperimentSetup, default_setup


def run(setup: Optional[ExperimentSetup] = None) -> ResultTable:
    """Energy overhead (fraction vs NOWL) per benchmark and scheme."""
    setup = setup or default_setup()
    baseline = nowl_baseline()
    columns = ["benchmark"] + list(FIG9_SCHEMES)
    table = ResultTable(columns)
    totals: Dict[str, list] = {scheme: [] for scheme in FIG9_SCHEMES}
    for benchmark in setup.benchmarks:
        row = {"benchmark": benchmark}
        for scheme in FIG9_SCHEMES:
            overheads = measure_overheads(scheme, benchmark, setup)
            breakdown = energy_per_demand_write(
                scheme, overheads, twl_config=setup.twl_config
            )
            overhead = breakdown.overhead_versus(baseline)
            row[scheme] = round(overhead, 4)
            totals[scheme].append(overhead)
        table.add_row(**row)
    average = {"benchmark": "average"}
    for scheme in FIG9_SCHEMES:
        average[scheme] = round(float(np.mean(totals[scheme])), 4)
    table.add_row(**average)
    return table


def main() -> None:
    """Print the energy table."""
    print(
        run().render(
            precision=4,
            title="E1 — write-energy overhead vs NOWL (extension)",
        )
    )


if __name__ == "__main__":
    main()
