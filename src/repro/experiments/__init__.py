"""One module per paper table/figure.

Each module exposes ``run(setup) -> ResultTable`` (plus helpers) and is
shared by the benchmark harness under ``benchmarks/``, the runnable
examples under ``examples/`` and the ``twl-repro`` CLI, so every surface
reproduces a figure through identical code.
"""

from .setups import ExperimentSetup, default_setup, quick_setup
from . import (
    table1,
    table2,
    fig6,
    fig7,
    fig8,
    fig9,
    overhead,
    ablations,
    energy,
    resilience,
    streaming,
)

__all__ = [
    "ExperimentSetup",
    "default_setup",
    "quick_setup",
    "table1",
    "table2",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "overhead",
    "ablations",
    "energy",
    "resilience",
    "streaming",
]
