"""Ablation studies beyond the paper (DESIGN.md A1-A6).

* A1 — pairing policy (SWP / AP / random) across all four attacks;
* A2 — inter-pair swap interval sweep (the paper fixes 128);
* A3 — endurance variation (sigma/mean) sweep;
* A4 — initial- vs remaining-endurance toss-up probability;
* A6 — behavioral SR vs faithful single-level SR under concentrated
  attacks (why Security Refresh needs its second level).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from ..analysis.calibration import attack_ideal_lifetime_years
from ..analysis.stats import geometric_mean
from ..analysis.tables import ResultTable
from ..config import ScaledArrayConfig
from ..exec import attack_cell, run_setup_cells, trace_cell
from .setups import ATTACKS, ExperimentSetup, default_setup

INTER_PAIR_INTERVALS: Sequence[int] = (16, 32, 64, 128, 256, 512)
SIGMA_FRACTIONS: Sequence[float] = (0.0, 0.05, 0.11, 0.2, 0.3)
FOOTPRINT_FRACTIONS: Sequence[float] = (0.125, 0.25, 0.5, 1.0)


def pairing_ablation(setup: Optional[ExperimentSetup] = None) -> ResultTable:
    """A1: lifetime (years) per pairing policy per attack."""
    setup = setup or default_setup()
    ideal = attack_ideal_lifetime_years()
    policies = (
        ("twl_swp", "strong-weak"),
        ("twl_ap", "adjacent"),
        ("twl_random", "random"),
    )
    cells = [
        attack_cell(scheme, attack, scaled=setup.scaled, seed=setup.seed)
        for scheme, _ in policies
        for attack in ATTACKS
    ]
    results = iter(run_setup_cells(cells, setup))
    table = ResultTable(["pairing"] + list(ATTACKS) + ["gmean"])
    for scheme, label in policies:
        years = {attack: next(results).lifetime_fraction * ideal for attack in ATTACKS}
        row = {attack: round(years[attack], 2) for attack in ATTACKS}
        row["pairing"] = label
        row["gmean"] = round(geometric_mean(list(years.values())), 2)
        table.add_row(**row)
    return table


def inter_pair_interval_ablation(
    setup: Optional[ExperimentSetup] = None,
) -> ResultTable:
    """A2: repeat-attack lifetime and wear overhead vs inter-pair interval."""
    setup = setup or default_setup()
    ideal = attack_ideal_lifetime_years()
    cells = [
        attack_cell(
            "twl_swp",
            "repeat",
            scaled=setup.scaled,
            seed=setup.seed,
            scheme_kwargs={
                "config": replace(setup.twl_config, inter_pair_swap_interval=interval)
            },
            label=f"inter_pair={interval}",
        )
        for interval in INTER_PAIR_INTERVALS
    ]
    results = run_setup_cells(cells, setup)
    table = ResultTable(["inter_pair_interval", "repeat_years", "overhead_ratio"])
    for interval, result in zip(INTER_PAIR_INTERVALS, results):
        table.add_row(
            inter_pair_interval=interval,
            repeat_years=round(result.lifetime_fraction * ideal, 2),
            overhead_ratio=round(result.overhead_ratio, 4),
        )
    return table


def sigma_ablation(setup: Optional[ExperimentSetup] = None) -> ResultTable:
    """A3: how process-variation magnitude moves TWL vs SR (random attack)."""
    setup = setup or default_setup()
    ideal = attack_ideal_lifetime_years()
    cells = []
    for sigma in SIGMA_FRACTIONS:
        scaled = ScaledArrayConfig(
            n_pages=setup.scaled.n_pages,
            endurance_mean=setup.scaled.endurance_mean,
            endurance_sigma_fraction=sigma,
            tail_faithful=sigma > 0,
            seed=setup.scaled.seed,
        )
        for scheme in ("twl_swp", "sr"):
            cells.append(
                attack_cell(
                    scheme,
                    "random",
                    scaled=scaled,
                    seed=setup.seed,
                    label=f"sigma={sigma}",
                )
            )
    results = iter(run_setup_cells(cells, setup))
    table = ResultTable(["sigma_fraction", "twl_years", "sr_years"])
    for sigma in SIGMA_FRACTIONS:
        twl, sr = next(results), next(results)
        table.add_row(
            sigma_fraction=sigma,
            twl_years=round(twl.lifetime_fraction * ideal, 2),
            sr_years=round(sr.lifetime_fraction * ideal, 2),
        )
    return table


def remaining_endurance_ablation(
    setup: Optional[ExperimentSetup] = None,
) -> ResultTable:
    """A4: toss-up on initial vs remaining endurance, per attack."""
    setup = setup or default_setup()
    ideal = attack_ideal_lifetime_years()
    cells = [
        attack_cell(
            "twl_swp",
            attack,
            scaled=setup.scaled,
            seed=setup.seed,
            scheme_kwargs={
                "config": replace(setup.twl_config, use_remaining_endurance=remaining)
            },
            label=f"remaining={remaining}",
        )
        for remaining in (False, True)
        for attack in ATTACKS
    ]
    results = iter(run_setup_cells(cells, setup))
    table = ResultTable(["mode"] + list(ATTACKS) + ["gmean"])
    for remaining in (False, True):
        years = {attack: next(results).lifetime_fraction * ideal for attack in ATTACKS}
        row = {attack: round(years[attack], 2) for attack in ATTACKS}
        row["mode"] = "remaining" if remaining else "initial"
        row["gmean"] = round(geometric_mean(list(years.values())), 2)
        table.add_row(**row)
    return table


def footprint_ablation(
    setup: Optional[ExperimentSetup] = None,
    benchmark: str = "canneal",
) -> ResultTable:
    """A5: how workload footprint moves the Figure-8 comparison.

    Sparse footprints are the substitution DESIGN.md documents for the
    gem5-collected PARSEC traces; this ablation quantifies its effect:
    PV-aware placement gains exactly where idle pages exist to park on
    weak frames, while SR (footprint-blind randomization) barely moves.
    """
    setup = setup or default_setup()
    schemes = ("twl", "bwl", "sr", "nowl")
    cells = [
        trace_cell(
            scheme,
            benchmark,
            trace_writes=setup.trace_writes,
            scaled=setup.scaled,
            seed=setup.seed,
            footprint_override=footprint,
            label=f"footprint={footprint}",
        )
        for footprint in FOOTPRINT_FRACTIONS
        for scheme in schemes
    ]
    results = iter(run_setup_cells(cells, setup))
    table = ResultTable(["footprint_fraction", "twl", "bwl", "sr", "nowl"])
    for footprint in FOOTPRINT_FRACTIONS:
        row = {"footprint_fraction": footprint}
        for scheme in schemes:
            row[scheme] = round(next(results).lifetime_fraction, 3)
        table.add_row(**row)
    return table


def sr_level_ablation(setup: Optional[ExperimentSetup] = None) -> ResultTable:
    """A6: behavioral (two-level-equivalent) SR vs single-level sweep SR."""
    setup = setup or default_setup()
    ideal = attack_ideal_lifetime_years()
    schemes = ("sr", "sr_single")
    cells = [
        attack_cell(scheme, attack, scaled=setup.scaled, seed=setup.seed)
        for scheme in schemes
        for attack in ATTACKS
    ]
    results = iter(run_setup_cells(cells, setup))
    table = ResultTable(["scheme"] + list(ATTACKS))
    for scheme in schemes:
        row = {"scheme": scheme}
        for attack in ATTACKS:
            row[attack] = round(next(results).lifetime_fraction * ideal, 2)
        table.add_row(**row)
    return table


RETIREMENT_MARGINS: Sequence[float] = (0.02, 0.05, 0.10, 0.20)


def retirement_ablation(setup: Optional[ExperimentSetup] = None) -> ResultTable:
    """A9: page retirement (OD3P-style) vs TWL — orthogonal defenses.

    Retirement converts endurance headroom into lifetime under *spread*
    workloads (it beats the uniform-wear bound) but cannot absorb
    concentrated streams (a hammered page just burns through the spare
    pool), while TWL does the reverse.  The margin sweep shows the
    estimate-noise trade-off: thin margins die on mis-estimated frames,
    fat margins give capacity away.
    """
    from ..wearlevel.retirement import RetirementConfig

    setup = setup or default_setup()
    ideal = attack_ideal_lifetime_years()
    attacks = ("random", "repeat", "inconsistent")
    cells = []
    for margin in RETIREMENT_MARGINS:
        config = RetirementConfig(
            margin_fraction=margin, estimate_sigma_fraction=0.03
        )
        for attack in attacks:
            cells.append(
                attack_cell(
                    "retire",
                    attack,
                    scaled=setup.scaled,
                    seed=setup.seed,
                    scheme_kwargs={"config": config},
                    label=f"margin={margin:.2f}",
                )
            )
    for attack in attacks:
        cells.append(
            attack_cell("twl_swp", attack, scaled=setup.scaled, seed=setup.seed)
        )
    results = iter(run_setup_cells(cells, setup))
    table = ResultTable(["scheme", "random_years", "repeat_years", "inconsistent_years"])
    for margin in RETIREMENT_MARGINS:
        row = {"scheme": f"retire(m={margin:.2f})"}
        for attack in attacks:
            row[f"{attack}_years"] = round(next(results).lifetime_fraction * ideal, 2)
        table.add_row(**row)
    twl_row = {"scheme": "twl_swp"}
    for attack in attacks:
        twl_row[f"{attack}_years"] = round(next(results).lifetime_fraction * ideal, 2)
    table.add_row(**twl_row)
    return table


def main() -> None:
    """Print every ablation."""
    print(pairing_ablation().render(title="A1 — pairing policy (years)"))
    print()
    print(inter_pair_interval_ablation().render(title="A2 — inter-pair interval"))
    print()
    print(sigma_ablation().render(title="A3 — endurance sigma sweep (years)"))
    print()
    print(remaining_endurance_ablation().render(title="A4 — toss-up endurance mode"))
    print()
    print(footprint_ablation().render(title="A5 — workload footprint (fractions)"))
    print()
    print(sr_level_ablation().render(title="A6 — SR refresh structure (years)"))
    print()
    print(retirement_ablation().render(title="A9 — page retirement vs TWL (years)"))


if __name__ == "__main__":
    main()
