"""Section 5.4 — design overhead.

Assembles TWL's storage and logic cost report from the structural
hardware models and compares against the paper's printed numbers:
80 bits per 4 KB page (2.5e-3 storage overhead), <128 gates for the
Feistel RNG, 718 gates for the rest of the datapath, ~840 gates total.
"""

from __future__ import annotations

from typing import Optional

from ..analysis.tables import ResultTable
from ..config import PAPER_PCM
from ..hwcost.synthesis import twl_design_overhead
from .setups import ExperimentSetup, default_setup

#: The paper's printed Section-5.4 values, for side-by-side comparison.
PAPER_STORAGE_BITS_PER_PAGE = 80
PAPER_STORAGE_OVERHEAD = 2.5e-3
PAPER_RNG_GATES = 128  # "less than 128 gates"
PAPER_DATAPATH_GATES = 718
PAPER_TOTAL_GATES = 840


def run(setup: Optional[ExperimentSetup] = None) -> ResultTable:
    """Compute the Section-5.4 report against the paper's numbers."""
    setup = setup or default_setup()
    report = twl_design_overhead(pcm=PAPER_PCM, twl=setup.twl_config)
    table = ResultTable(["quantity", "reproduced", "paper"])
    table.add_row(
        quantity="storage bits per page",
        reproduced=report.storage_bits_per_page,
        paper=PAPER_STORAGE_BITS_PER_PAGE,
    )
    table.add_row(
        quantity="storage overhead",
        reproduced=f"{report.storage_overhead:.2e}",
        paper=f"{PAPER_STORAGE_OVERHEAD:.2e}",
    )
    table.add_row(
        quantity="RNG gates",
        reproduced=report.rng_gates,
        paper=f"<{PAPER_RNG_GATES}",
    )
    table.add_row(
        quantity="datapath gates",
        reproduced=report.datapath_gates,
        paper=PAPER_DATAPATH_GATES,
    )
    table.add_row(
        quantity="total gates",
        reproduced=report.total_gates,
        paper=f"~{PAPER_TOTAL_GATES}",
    )
    return table


def main() -> None:
    """Print the report."""
    print(run().render(title="Section 5.4 — design overhead (reproduced vs paper)"))


if __name__ == "__main__":
    main()
