"""Streamed-workload lifetime comparison (FTL dynamic workload tier).

Runs every Figure-8 scheme under a *streamed* workload — by default the
built-in FTL dynamic workload generator (allocation/invalidation/GC
traffic with hot/cold separation, ``repro.traces.ftl``), or any on-disk
trace via ``setup.stream_trace`` (``--trace`` on the CLI) — and reports
lifetime fraction and wear amplification per scheme.

Unlike the Figure-8 benchmark traces, the workload here is never
materialized: cells go through :class:`~repro.sim.drivers.StreamDriver`
and run at constant memory regardless of how many requests the stream
serves before a page wears out (see ``docs/workloads.md``).  Chunk size
and batch size are execution knobs — streamed results are bit-identical
to materialized runs of the same request sequence
(``tests/test_engine_identity.py``).
"""

from __future__ import annotations

from typing import Optional

from ..analysis.tables import ResultTable
from ..exec import ExperimentCell, run_setup_cells, stream_cell
from ..sim.lifetime import LifetimeResult
from .setups import FIG8_SCHEMES, ExperimentSetup, default_setup

#: Scheme set for the streamed comparison (the Figure-8 population).
STREAM_SCHEMES = FIG8_SCHEMES


def _cell(scheme: str, setup: ExperimentSetup) -> ExperimentCell:
    kwargs = {"config": setup.twl_config} if scheme.startswith("twl") else {}
    if setup.stream_trace is not None:
        return stream_cell(
            scheme,
            trace_path=setup.stream_trace,
            scaled=setup.scaled,
            seed=setup.seed,
            scheme_kwargs=kwargs,
            chunk_size=setup.chunk_size,
        )
    return stream_cell(
        scheme,
        stream="ftl",
        scaled=setup.scaled,
        seed=setup.seed,
        scheme_kwargs=kwargs,
        chunk_size=setup.chunk_size,
    )


def run_cell(
    scheme: str,
    setup: Optional[ExperimentSetup] = None,
) -> LifetimeResult:
    """Run one scheme's streamed-workload cell."""
    setup = setup or default_setup()
    return run_setup_cells([_cell(scheme, setup)], setup)[0]


def run(setup: Optional[ExperimentSetup] = None) -> ResultTable:
    """Streamed-workload lifetime, one row per scheme."""
    setup = setup or default_setup()
    cells = [_cell(scheme, setup) for scheme in STREAM_SCHEMES]
    results = run_setup_cells(cells, setup)
    table = ResultTable(
        ["scheme", "workload", "demand_writes", "lifetime_fraction", "overhead_ratio"]
    )
    for scheme, result in zip(STREAM_SCHEMES, results):
        table.add_row(
            scheme=scheme,
            workload=result.workload,
            demand_writes=result.demand_writes,
            lifetime_fraction=round(result.lifetime_fraction, 4),
            overhead_ratio=round(result.overhead_ratio, 4),
        )
    return table


def main() -> None:
    """Print the streamed-workload comparison table."""
    setup = default_setup()
    source = setup.stream_trace or "ftl (dynamic generator)"
    print(run(setup).render(precision=4, title=f"Streamed workload — {source}"))


if __name__ == "__main__":
    main()
