"""Controller soft-error resilience sweep (beyond the paper).

The paper assumes the wear-leveling controller's SRAM tables are
perfect; this experiment drops that assumption.  It sweeps a
soft-error rate (bit flips per demand write, delivered into the
scheme's live hardware state by :mod:`repro.pcm.softerrors`) against
the protection levels costed in :mod:`repro.hwcost.storage`:

* ``none`` — flips land and persist; lifetime silently degrades;
* ``parity`` — per-entry parity detects the flip, the controller
  scrubs the entry from redundant state or falls back to an identity
  mapping (graceful degradation);
* ``secded`` — per-entry SEC-DED corrects the flip in place; the run
  is bit-identical to the clean one, bought with the widest check-bit
  overhead.

Protected runs execute under the runtime invariant checker
(:class:`~repro.engine.InvariantCheckObserver`), so a repair that
left the tables inconsistent would fail the cell rather than skew the
numbers.  Unprotected runs deliberately run unchecked — persistent
corruption is the condition being measured.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..analysis.calibration import attack_ideal_lifetime_years
from ..analysis.tables import ResultTable
from ..config import (
    PROTECTION_NONE,
    PROTECTION_PARITY,
    PROTECTION_SECDED,
    SoftErrorConfig,
)
from ..exec import attack_cell, run_setup_cells
from ..hwcost.storage import protection_storage_overhead
from .setups import ExperimentSetup, default_setup

#: Schemes swept: the paper's contender, a remapping baseline and a
#: register-only scheme (whose whole fault surface is two registers).
RESILIENCE_SCHEMES: Tuple[str, ...] = ("twl_swp", "bwl", "startgap")

#: Soft-error rates in flips per demand write.  At the default scale a
#: run is ~1e7 demand writes, so these give ~1e3 and ~1e4 flips.
RESILIENCE_RATES: Tuple[float, ...] = (1e-4, 1e-3)

#: Protection levels, in increasing check-bit cost.
RESILIENCE_PROTECTIONS: Tuple[str, ...] = (
    PROTECTION_NONE,
    PROTECTION_PARITY,
    PROTECTION_SECDED,
)

#: The attack driving every cell (workload-independent table wear).
RESILIENCE_ATTACK = "random"


def resilience_sweep(
    setup: Optional[ExperimentSetup] = None,
    schemes: Sequence[str] = RESILIENCE_SCHEMES,
    rates: Sequence[float] = RESILIENCE_RATES,
    protections: Sequence[str] = RESILIENCE_PROTECTIONS,
) -> ResultTable:
    """Lifetime under soft errors, per scheme × protection × rate.

    Each scheme gets a clean baseline row (rate 0) plus one row per
    rate × protection; ``delta_years`` is the lifetime shift against
    that scheme's own baseline, and ``prot_overhead`` is the
    protection's check-bit cost as a fraction of PCM capacity.
    """
    setup = setup or default_setup()
    ideal = attack_ideal_lifetime_years()
    cells = []
    for scheme in schemes:
        cells.append(
            attack_cell(
                scheme,
                RESILIENCE_ATTACK,
                scaled=setup.scaled,
                seed=setup.seed,
                label="baseline",
            )
        )
        for rate in rates:
            for protection in protections:
                cells.append(
                    attack_cell(
                        scheme,
                        RESILIENCE_ATTACK,
                        scaled=setup.scaled,
                        seed=setup.seed,
                        soft_errors=SoftErrorConfig(
                            rate=rate, seed=setup.seed, protection=protection
                        ),
                        # Protected runs must stay consistent after every
                        # repair; unprotected runs are *expected* to hold
                        # corrupt tables, so they run unchecked.
                        check_invariants=protection != PROTECTION_NONE,
                        label=f"rate={rate:g} prot={protection}",
                    )
                )
    results = iter(run_setup_cells(cells, setup))
    table = ResultTable(
        [
            "scheme",
            "protection",
            "rate",
            "years",
            "delta_years",
            "injected",
            "corrected",
            "repaired",
            "fail_safe",
            "silent",
            "prot_overhead",
        ]
    )
    for scheme in schemes:
        baseline = next(results)
        baseline_years = baseline.lifetime_fraction * ideal
        table.add_row(
            scheme=scheme,
            protection="-",
            rate=0.0,
            years=round(baseline_years, 2),
            delta_years=0.0,
            injected=0,
            corrected=0,
            repaired=0,
            fail_safe=0,
            silent=0,
            prot_overhead=0.0,
        )
        for rate in rates:
            for protection in protections:
                result = next(results)
                counters = result.soft_errors or {}
                years = result.lifetime_fraction * ideal
                table.add_row(
                    scheme=scheme,
                    protection=protection,
                    rate=rate,
                    years=round(years, 2),
                    delta_years=round(years - baseline_years, 2),
                    injected=counters.get("injected", 0),
                    corrected=counters.get("corrected", 0),
                    repaired=counters.get("repaired", 0),
                    fail_safe=counters.get("fail_safe", 0),
                    silent=counters.get("silent", 0),
                    prot_overhead=protection_storage_overhead(
                        scheme, protection
                    ),
                )
    return table


def run(setup: Optional[ExperimentSetup] = None) -> ResultTable:
    """Standard experiment entry point."""
    return resilience_sweep(setup)


def main() -> None:
    """Print the resilience sweep."""
    print(
        resilience_sweep().render(
            title="Soft-error resilience — lifetime (years) vs protection"
        )
    )


if __name__ == "__main__":
    main()
