"""Figure 8 — normalized lifetime on the PARSEC benchmarks.

Loops each benchmark's synthetic trace until first page failure under
BWL, SR, TWL and NOWL, and reports lifetime normalized to ideal (the
paper's metric: SR ≈ 44%, BWL ≈ 75.6%, TWL ≈ 79.6% on average).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..analysis.stats import geometric_mean
from ..analysis.tables import ResultTable
from ..exec import ExperimentCell, run_setup_cells, trace_cell
from ..sim.lifetime import LifetimeResult
from .setups import FIG8_SCHEMES, ExperimentSetup, default_setup


def _cell(scheme: str, benchmark: str, setup: ExperimentSetup) -> ExperimentCell:
    kwargs = {"config": setup.twl_config} if scheme.startswith("twl") else {}
    return trace_cell(
        scheme,
        benchmark,
        trace_writes=setup.trace_writes,
        scaled=setup.scaled,
        seed=setup.seed,
        scheme_kwargs=kwargs,
    )


def run_cell(
    scheme: str,
    benchmark: str,
    setup: Optional[ExperimentSetup] = None,
) -> LifetimeResult:
    """Run one scheme/benchmark cell of Figure 8."""
    setup = setup or default_setup()
    return run_setup_cells([_cell(scheme, benchmark, setup)], setup)[0]


def run(setup: Optional[ExperimentSetup] = None) -> ResultTable:
    """Reproduce Figure 8 (rows = benchmarks, columns = schemes)."""
    setup = setup or default_setup()
    cells = [
        _cell(scheme, benchmark, setup)
        for benchmark in setup.benchmarks
        for scheme in FIG8_SCHEMES
    ]
    results = iter(run_setup_cells(cells, setup))
    columns = ["benchmark"] + list(FIG8_SCHEMES)
    table = ResultTable(columns)
    sums: Dict[str, list] = {scheme: [] for scheme in FIG8_SCHEMES}
    for benchmark in setup.benchmarks:
        row = {"benchmark": benchmark}
        for scheme in FIG8_SCHEMES:
            fraction = next(results).lifetime_fraction
            row[scheme] = round(fraction, 3)
            sums[scheme].append(max(fraction, 1e-9))
        table.add_row(**row)
    gmean_row = {"benchmark": "gmean"}
    for scheme in FIG8_SCHEMES:
        gmean_row[scheme] = round(geometric_mean(sums[scheme]), 3)
    table.add_row(**gmean_row)
    return table


def main() -> None:
    """Print the figure as a table."""
    print(
        run().render(
            precision=3,
            title="Figure 8 — lifetime normalized to ideal (reproduced)",
        )
    )


if __name__ == "__main__":
    main()
