"""Table 1 — the simulation setup.

Renders (and asserts) the paper's configuration constants as carried by
the library's config dataclasses, plus the scaled-array parameters the
reproduction actually simulates at.
"""

from __future__ import annotations

from ..analysis.tables import ResultTable
from ..config import PCMConfig, TimingConfig, TWLConfig, PAPER_PCM
from ..units import format_size
from .setups import ExperimentSetup, default_setup


def run(setup: ExperimentSetup = None) -> ResultTable:
    """Build the Table-1 parameter listing."""
    setup = setup or default_setup()
    pcm: PCMConfig = PAPER_PCM
    timing = TimingConfig()
    twl: TWLConfig = setup.twl_config

    table = ResultTable(["parameter", "value"])
    table.add_row(parameter="PCM capacity", value=format_size(pcm.capacity_bytes))
    table.add_row(parameter="page size", value=format_size(pcm.page_bytes))
    table.add_row(parameter="line size", value=f"{pcm.line_bytes} B")
    table.add_row(parameter="ranks / banks", value=f"{pcm.ranks} / {pcm.banks}")
    table.add_row(parameter="endurance mean", value=f"{pcm.endurance_mean:.0e}")
    table.add_row(
        parameter="endurance sigma", value=f"{pcm.endurance_sigma_fraction:.0%} of mean"
    )
    table.add_row(
        parameter="read/set/reset latency",
        value=(
            f"{timing.read_cycles}/{timing.set_cycles}/"
            f"{timing.reset_cycles} cycles"
        ),
    )
    table.add_row(parameter="clock", value=f"{timing.clock_hz / 1e9:.0f} GHz")
    table.add_row(parameter="toss-up interval", value=str(twl.toss_up_interval))
    table.add_row(
        parameter="inter-pair swap interval", value=str(twl.inter_pair_swap_interval)
    )
    table.add_row(parameter="RNG latency", value=f"{timing.rng_cycles} cycles")
    table.add_row(
        parameter="TWL logic / table latency",
        value=f"{timing.twl_logic_cycles}/{timing.table_cycles} cycles",
    )
    table.add_row(
        parameter="scaled array (simulation)",
        value=(
            f"{setup.scaled.n_pages} pages, endurance mean "
            f"{setup.scaled.endurance_mean:.0f} (ratio preserved)"
        ),
    )
    return table


def main() -> None:
    """Print the table."""
    print(run().render(title="Table 1 — simulation setup"))


if __name__ == "__main__":
    main()
