"""Figure 6 — lifetime under attacks.

Runs every scheme of the paper's Figure 6 (BWL, SR, TWL_ap, TWL_swp,
NOWL) against the four attack modes (repeat, random, scan,
inconsistent) at the scaled array, reports full-scale years
(lifetime fraction times the ~6.6-year ideal at the 8 GB/s attack
bandwidth), and the geometric mean across attacks.

For the cells where the paper says "worn out quickly" (targeted
attacks defeating a scheme), the scale-invariant quantity is the
victim's traffic share rather than the lifetime fraction;
``full_scale_seconds`` reports the corresponding absolute
time-to-failure of the full 32 GB memory (the paper's "98 seconds"
figure for BWL under the inconsistent attack).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..analysis.calibration import (
    PAPER_ATTACK_BANDWIDTH_BYTES,
    attack_ideal_lifetime_years,
)
from ..analysis.extrapolate import targeted_attack_full_scale_seconds
from ..analysis.stats import geometric_mean
from ..analysis.tables import ResultTable
from ..config import TWLConfig
from ..exec import ExperimentCell, attack_cell, run_setup_cells
from ..sim.lifetime import LifetimeResult
from ..units import format_duration
from .setups import ATTACKS, FIG6_SCHEMES, ExperimentSetup, default_setup

#: Below this fraction of ideal lifetime a cell is a "worn out quickly"
#: entry in the paper's Figure 6.
QUICK_DEATH_FRACTION = 0.1


def _scheme_kwargs(scheme: str, twl_config: TWLConfig) -> dict:
    if scheme == "twl_swp":
        return {"config": twl_config.with_pairing("swp")}
    if scheme == "twl_ap":
        return {"config": twl_config.with_pairing("ap")}
    return {}


def _cell(scheme: str, attack: str, setup: ExperimentSetup) -> ExperimentCell:
    return attack_cell(
        scheme,
        attack,
        scaled=setup.scaled,
        seed=setup.seed,
        scheme_kwargs=_scheme_kwargs(scheme, setup.twl_config),
    )


def run_cell(
    scheme: str,
    attack: str,
    setup: Optional[ExperimentSetup] = None,
) -> LifetimeResult:
    """Run one scheme/attack cell of Figure 6."""
    setup = setup or default_setup()
    return run_setup_cells([_cell(scheme, attack, setup)], setup)[0]


def run(setup: Optional[ExperimentSetup] = None) -> ResultTable:
    """Reproduce Figure 6 (rows = schemes, columns = attacks + gmean)."""
    setup = setup or default_setup()
    ideal_years = attack_ideal_lifetime_years()
    cells = [
        _cell(scheme, attack, setup)
        for scheme in FIG6_SCHEMES
        for attack in ATTACKS
    ]
    results = iter(run_setup_cells(cells, setup))
    columns = ["scheme"] + [f"{attack}_years" for attack in ATTACKS] + ["gmean_years"]
    table = ResultTable(columns)
    for scheme in FIG6_SCHEMES:
        years: Dict[str, float] = {}
        for attack in ATTACKS:
            years[attack] = next(results).lifetime_fraction * ideal_years
        row = {f"{attack}_years": round(years[attack], 2) for attack in ATTACKS}
        row["scheme"] = scheme
        row["gmean_years"] = round(geometric_mean(list(years.values())), 2)
        table.add_row(**row)
    return table


def quick_death_report(
    setup: Optional[ExperimentSetup] = None,
) -> ResultTable:
    """Full-scale time-to-failure for the "worn out quickly" cells."""
    setup = setup or default_setup()
    ideal_years = attack_ideal_lifetime_years()
    table = ResultTable(["scheme", "attack", "fraction", "full_scale_time"])
    pairs = _quick_death_cells(setup)
    cells = [_cell(scheme, attack, setup) for scheme, attack in pairs]
    results = run_setup_cells(cells, setup)
    for (scheme, attack), result in zip(pairs, results):
        fraction = result.lifetime_fraction
        if fraction * ideal_years >= QUICK_DEATH_FRACTION * ideal_years:
            continue
        seconds = targeted_attack_full_scale_seconds(
            fraction, setup.n_pages, PAPER_ATTACK_BANDWIDTH_BYTES
        )
        table.add_row(
            scheme=scheme,
            attack=attack,
            fraction=round(fraction, 4),
            full_scale_time=format_duration(seconds),
        )
    return table


def _quick_death_cells(setup: ExperimentSetup) -> Tuple[Tuple[str, str], ...]:
    """Cells the paper marks as broken-down."""
    return (
        ("nowl", "repeat"),
        ("nowl", "inconsistent"),
        ("bwl", "inconsistent"),
    )


def main() -> None:
    """Print the figure as a table plus the quick-death report."""
    ideal = attack_ideal_lifetime_years()
    print(
        run().render(
            precision=2,
            title=(
                "Figure 6 — lifetime under attacks (years; "
                f"ideal = {ideal:.2f} y at 8 GB/s)"
            ),
        )
    )
    print()
    print(
        quick_death_report().render(
            precision=4,
            title='Full-scale extrapolation of the "worn out quickly" cells',
        )
    )


if __name__ == "__main__":
    main()
