"""Figure 7 — choosing the toss-up interval.

(a) Swap/write ratio (toss-up swaps per demand write) as a function of
the toss-up interval, geometric-mean across the PARSEC benchmarks
("the ratio drops in proportion as the toss-up interval increases").

(b) Lifetime under the scan attack as a function of the toss-up
interval, against the 3-year server-replacement floor the paper uses to
justify interval 32.

Note on (b): the paper reports scan lifetime *decreasing* with the
interval.  In the mechanistic implementation, a scan stream writes both
members of every pair equally, so the toss-up cannot bias wear inside a
pair regardless of how often it runs (the paper's own Case-4 analysis);
more frequent toss-ups only add swap-write wear.  The measured trend is
therefore overhead-dominated — see EXPERIMENTS.md for the discussion.

Both panels run through ``repro.exec``: each (interval, benchmark)
swap-ratio measurement and each interval's scan run is one independent
cell, so the whole sweep parallelizes under ``setup.jobs``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..analysis.calibration import attack_ideal_lifetime_years
from ..analysis.stats import geometric_mean
from ..analysis.tables import ResultTable
from ..exec import ExperimentCell, attack_cell, overheads_cell, run_setup_cells
from .setups import ExperimentSetup, default_setup

#: The interval sweep of Figure 7.  The paper's axis tops out at 128,
#: which a 7-bit write counter cannot actually reach; 127 is the widest
#: interval the Table-1 counter supports and stands in for it.
INTERVALS: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 127)

#: Paper's server-replacement floor (years).
MINIMUM_REQUIREMENT_YEARS = 3.0


def _ratio_cells(interval: int, setup: ExperimentSetup) -> List[ExperimentCell]:
    config = setup.twl_config.with_interval(interval)
    return [
        overheads_cell(
            "twl",
            name,
            trace_writes=setup.trace_writes,
            drive_writes=setup.overhead_writes,
            scaled=setup.scaled,
            seed=setup.seed,
            scheme_kwargs={"config": config},
            label=f"interval={interval}",
        )
        for name in setup.benchmarks
    ]


def _scan_cell(interval: int, setup: ExperimentSetup) -> ExperimentCell:
    config = setup.twl_config.with_interval(interval)
    return attack_cell(
        "twl_swp",
        "scan",
        scaled=setup.scaled,
        seed=setup.seed,
        scheme_kwargs={"config": config},
        label=f"interval={interval}",
    )


def _gmean_swap_ratio(overheads) -> float:
    # Guard the gmean against an exactly-zero ratio at long intervals.
    return geometric_mean(
        [max(o.extra_stats["toss_up_swap_ratio"], 1e-9) for o in overheads]
    )


def swap_ratio_for_interval(
    interval: int,
    setup: Optional[ExperimentSetup] = None,
) -> float:
    """Figure 7(a): PARSEC-gmean toss-up swap/write ratio at an interval."""
    setup = setup or default_setup()
    return _gmean_swap_ratio(run_setup_cells(_ratio_cells(interval, setup), setup))


def scan_lifetime_for_interval(
    interval: int,
    setup: Optional[ExperimentSetup] = None,
) -> float:
    """Figure 7(b): scan-attack lifetime (years) at an interval."""
    setup = setup or default_setup()
    result = run_setup_cells([_scan_cell(interval, setup)], setup)[0]
    return result.lifetime_fraction * attack_ideal_lifetime_years()


def run(setup: Optional[ExperimentSetup] = None) -> ResultTable:
    """Reproduce both panels over the interval sweep."""
    setup = setup or default_setup()
    ideal = attack_ideal_lifetime_years()
    per_interval = len(setup.benchmarks)
    cells: List[ExperimentCell] = []
    for interval in INTERVALS:
        cells.extend(_ratio_cells(interval, setup))
        cells.append(_scan_cell(interval, setup))
    results = run_setup_cells(cells, setup)
    table = ResultTable(["toss_up_interval", "swap_write_ratio", "scan_lifetime_years"])
    for position, interval in enumerate(INTERVALS):
        offset = position * (per_interval + 1)
        overheads = results[offset : offset + per_interval]
        scan = results[offset + per_interval]
        table.add_row(
            toss_up_interval=interval,
            swap_write_ratio=round(_gmean_swap_ratio(overheads), 4),
            scan_lifetime_years=round(scan.lifetime_fraction * ideal, 2),
        )
    return table


def main() -> None:
    """Print the sweep."""
    print(
        run().render(
            precision=4,
            title=(
                "Figure 7 — toss-up interval: swap/write ratio (a) and scan "
                f"lifetime (b); floor = {MINIMUM_REQUIREMENT_YEARS} years"
            ),
        )
    )


if __name__ == "__main__":
    main()
