"""Figure 7 — choosing the toss-up interval.

(a) Swap/write ratio (toss-up swaps per demand write) as a function of
the toss-up interval, geometric-mean across the PARSEC benchmarks
("the ratio drops in proportion as the toss-up interval increases").

(b) Lifetime under the scan attack as a function of the toss-up
interval, against the 3-year server-replacement floor the paper uses to
justify interval 32.

Note on (b): the paper reports scan lifetime *decreasing* with the
interval.  In the mechanistic implementation, a scan stream writes both
members of every pair equally, so the toss-up cannot bias wear inside a
pair regardless of how often it runs (the paper's own Case-4 analysis);
more frequent toss-ups only add swap-write wear.  The measured trend is
therefore overhead-dominated — see EXPERIMENTS.md for the discussion.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..analysis.calibration import attack_ideal_lifetime_years
from ..analysis.stats import geometric_mean
from ..analysis.tables import ResultTable
from ..sim.drivers import TraceDriver
from ..sim.runner import build_array, measure_attack_lifetime
from ..traces.parsec import get_profile, make_benchmark_trace
from ..wearlevel.registry import make_scheme
from .setups import ExperimentSetup, default_setup

#: The interval sweep of Figure 7.  The paper's axis tops out at 128,
#: which a 7-bit write counter cannot actually reach; 127 is the widest
#: interval the Table-1 counter supports and stands in for it.
INTERVALS: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 127)

#: Paper's server-replacement floor (years).
MINIMUM_REQUIREMENT_YEARS = 3.0


def swap_ratio_for_interval(
    interval: int,
    setup: Optional[ExperimentSetup] = None,
) -> float:
    """Figure 7(a): PARSEC-gmean toss-up swap/write ratio at an interval."""
    setup = setup or default_setup()
    ratios = []
    config = setup.twl_config.with_interval(interval)
    for name in setup.benchmarks:
        trace = make_benchmark_trace(
            get_profile(name), setup.n_pages, setup.trace_writes, seed=setup.seed
        )
        array = build_array(setup.scaled)
        scheme = make_scheme("twl", array, seed=setup.seed, config=config)
        TraceDriver(trace, scheme.logical_pages).drive(scheme, setup.overhead_writes)
        # Guard the gmean against an exactly-zero ratio at long intervals.
        ratios.append(max(scheme.toss_up_swap_ratio(), 1e-9))
    return geometric_mean(ratios)


def scan_lifetime_for_interval(
    interval: int,
    setup: Optional[ExperimentSetup] = None,
) -> float:
    """Figure 7(b): scan-attack lifetime (years) at an interval."""
    setup = setup or default_setup()
    config = setup.twl_config.with_interval(interval)
    result = measure_attack_lifetime(
        "twl_swp",
        "scan",
        scaled=setup.scaled,
        seed=setup.seed,
        scheme_kwargs={"config": config},
    )
    return result.lifetime_fraction * attack_ideal_lifetime_years()


def run(setup: Optional[ExperimentSetup] = None) -> ResultTable:
    """Reproduce both panels over the interval sweep."""
    setup = setup or default_setup()
    table = ResultTable(["toss_up_interval", "swap_write_ratio", "scan_lifetime_years"])
    for interval in INTERVALS:
        table.add_row(
            toss_up_interval=interval,
            swap_write_ratio=round(swap_ratio_for_interval(interval, setup), 4),
            scan_lifetime_years=round(scan_lifetime_for_interval(interval, setup), 2),
        )
    return table


def main() -> None:
    """Print the sweep."""
    print(
        run().render(
            precision=4,
            title=(
                "Figure 7 — toss-up interval: swap/write ratio (a) and scan "
                f"lifetime (b); floor = {MINIMUM_REQUIREMENT_YEARS} years"
            ),
        )
    )


if __name__ == "__main__":
    main()
