"""Figure 9 — normalized execution time.

For each benchmark and scheme, drives a bounded write stream to measure
the scheme's swap behaviour, then evaluates the analytic timing model
(``repro.timing.perf_model``): per-write control-path cycles plus the
exposed latency of the measured migration writes, weighted by the
benchmark's memory-boundedness.  The paper's averages: TWL 1.90%
(max 2.7% on vips), BWL 6.48%, SR 1.97%.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..analysis.tables import ResultTable
from ..config import TimingConfig
from ..exec import ExperimentCell, overheads_cell, run_setup_cells
from ..sim.metrics import SchemeOverheads
from ..timing.perf_model import PerfModelConfig, normalized_execution_time
from ..traces.parsec import get_profile
from .setups import FIG9_SCHEMES, ExperimentSetup, default_setup


def _cell(scheme: str, benchmark: str, setup: ExperimentSetup) -> ExperimentCell:
    kwargs = {"config": setup.twl_config} if scheme.startswith("twl") else {}
    return overheads_cell(
        scheme,
        benchmark,
        trace_writes=setup.trace_writes,
        drive_writes=setup.overhead_writes,
        scaled=setup.scaled,
        seed=setup.seed,
        scheme_kwargs=kwargs,
    )


def measure_overheads(
    scheme: str,
    benchmark: str,
    setup: Optional[ExperimentSetup] = None,
) -> SchemeOverheads:
    """Measured swap ratios for one scheme on one benchmark."""
    setup = setup or default_setup()
    return run_setup_cells([_cell(scheme, benchmark, setup)], setup)[0]


def run(
    setup: Optional[ExperimentSetup] = None,
    timing: TimingConfig = TimingConfig(),
    perf: PerfModelConfig = PerfModelConfig(),
) -> ResultTable:
    """Reproduce Figure 9 (rows = benchmarks, columns = schemes)."""
    setup = setup or default_setup()
    cells = [
        _cell(scheme, benchmark, setup)
        for benchmark in setup.benchmarks
        for scheme in FIG9_SCHEMES
    ]
    results = iter(run_setup_cells(cells, setup))
    columns = ["benchmark"] + list(FIG9_SCHEMES)
    table = ResultTable(columns)
    totals: Dict[str, list] = {scheme: [] for scheme in FIG9_SCHEMES}
    for benchmark in setup.benchmarks:
        profile = get_profile(benchmark)
        row = {"benchmark": benchmark}
        for scheme in FIG9_SCHEMES:
            overheads = next(results)
            normalized = normalized_execution_time(
                scheme,
                overheads,
                profile,
                timing=timing,
                twl_config=setup.twl_config,
                config=perf,
            )
            row[scheme] = round(normalized, 4)
            totals[scheme].append(normalized)
        table.add_row(**row)
    average_row = {"benchmark": "average"}
    for scheme in FIG9_SCHEMES:
        average_row[scheme] = round(float(np.mean(totals[scheme])), 4)
    table.add_row(**average_row)
    return table


def main() -> None:
    """Print the figure as a table."""
    print(
        run().render(
            precision=4,
            title="Figure 9 — execution time normalized to NOWL (reproduced)",
        )
    )


if __name__ == "__main__":
    main()
