"""Cross-module state & effect rules (TWL008/TWL009) over the project index.

These rules machine-check the two invariants PR 8's snapshot work and
PR 6/7's batched write paths established by hand:

``TWL008`` — snapshot completeness.  For every class implementing the
    snapshot protocol (a :data:`~repro.devtools.project_index.SNAPSHOT_METHOD_NAMES`
    method *and* a :data:`~repro.devtools.project_index.RESTORE_METHOD_NAMES`
    method anywhere in its project MRO), every *mutable* instance
    attribute — one written or mutated in place outside
    ``__init__``/``__post_init__`` and the protocol methods themselves,
    including attributes inherited from bases in other modules — must be
    referenced by both the snapshot side and the restore side.  Owned
    components (attributes bound in ``__init__`` to a constructor call
    of another indexed class that itself implements the protocol) must
    likewise travel in both directions.  Additionally, a stateful class
    in the audited state packages that lacks the protocol entirely is
    flagged at its definition.

``TWL009`` — batch/scalar effect parity.  A ``write_batch`` override
    must mutate exactly the state surface its scalar ``write`` path
    mutates (transitively, through every ``self`` helper either one
    calls).  An asymmetric effect is the exact bug class the
    bit-identity suite can only catch per-input; here it is caught
    per-*code-path*.

Violations anchor where a pragma can sit next to the offending code:
TWL008 at the attribute's first non-init mutation (or the owning
``__init__`` assignment, or the class definition for a missing
protocol), TWL009 at the ``write_batch`` definition line.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .lint import Violation
from .project_index import (
    INIT_METHOD_NAMES,
    RESTORE_METHOD_NAMES,
    SNAPSHOT_METHOD_NAMES,
    ClassInfo,
    MethodInfo,
    ProjectIndex,
)

#: Module prefixes audited for *missing* snapshot protocol (TWL008):
#: the packages whose classes hold engine-reachable run state.  The
#: engine's observers (:mod:`repro.engine.observers`) are intentionally
#: excluded — they are reporting instrumentation, not resumable state.
AUDITED_STATE_PREFIXES: Tuple[str, ...] = (
    "repro.attacks",
    "repro.bloom",
    "repro.core",
    "repro.pcm",
    "repro.rng",
    "repro.sim.drivers",
    "repro.tables",
    "repro.wearlevel",
)

#: Method names excluded when inferring a class's mutable attribute set:
#: construction and the snapshot protocol itself (restore rebinds every
#: captured attribute by design).
_NON_MUTATION_METHODS = (
    INIT_METHOD_NAMES | SNAPSHOT_METHOD_NAMES | RESTORE_METHOD_NAMES
)


def _mro_methods(
    index: ProjectIndex, qualname: str
) -> Dict[str, Tuple[ClassInfo, MethodInfo]]:
    """First definition of each method name along the project MRO."""
    out: Dict[str, Tuple[ClassInfo, MethodInfo]] = {}
    for info in index.mro(qualname):
        for name, method in info.methods.items():
            out.setdefault(name, (info, method))
    return out


def _implements_protocol(
    methods: Dict[str, Tuple[ClassInfo, MethodInfo]]
) -> bool:
    names = {n for n, (_, m) in methods.items() if not m.is_property}
    return bool(names & SNAPSHOT_METHOD_NAMES) and bool(
        names & RESTORE_METHOD_NAMES
    )


def _mutable_attrs(
    index: ProjectIndex,
    qualname: str,
    methods: Dict[str, Tuple[ClassInfo, MethodInfo]],
) -> Dict[str, Tuple[ClassInfo, int]]:
    """Attributes written/mutated outside construction and the protocol.

    Maps each attribute to its first mutation site ``(owner, line)`` —
    the location a suppressing pragma belongs at.
    """
    method_names = set(methods)
    properties = index.mro_properties(qualname)
    out: Dict[str, Tuple[ClassInfo, int]] = {}
    ordered = sorted(
        (
            (owner, method)
            for name, (owner, method) in methods.items()
            if name not in _NON_MUTATION_METHODS
        ),
        key=lambda pair: (pair[0].module, pair[1].lineno),
    )
    for owner, method in ordered:
        for attr, lineno in sorted(
            list(method.writes.items()) + list(method.mutations.items()),
            key=lambda item: item[1],
        ):
            if attr in method_names or attr in properties:
                continue
            if attr.startswith("__"):
                continue
            if attr not in out:
                out[attr] = (owner, lineno)
    return out


def _protocol_effects(
    index: ProjectIndex,
    qualname: str,
    methods: Dict[str, Tuple[ClassInfo, MethodInfo]],
    family: FrozenSet[str],
) -> Set[str]:
    """Attributes a protocol family touches, expanded transitively.

    Follows ``self.helper()`` calls resolved through the MRO and reads
    of properties (a snapshot that captures ``self.prop`` captures the
    attributes the getter reads).
    """
    properties = index.mro_properties(qualname)
    touched: Set[str] = set()
    visited: Set[str] = set()
    stack = [name for name in methods if name in family]
    while stack:
        name = stack.pop()
        if name in visited:
            continue
        visited.add(name)
        entry = methods.get(name)
        if entry is None:
            continue
        _, method = entry
        touched |= method.touched_attrs()
        stack.extend(method.self_calls)
        stack.extend(read for read in method.reads if read in properties)
    return touched


def _method_effects(
    index: ProjectIndex,
    qualname: str,
    methods: Dict[str, Tuple[ClassInfo, MethodInfo]],
    start: str,
) -> Set[str]:
    """Write-effect attribute set of a method, expanded transitively.

    A ``self.f(...)`` call that resolves to no method along the MRO is a
    bound callable stored in an instance attribute (``self._write_page =
    array.write``); the attribute itself becomes the effect.
    """
    effects: Set[str] = set()
    visited: Set[str] = set()
    stack = [start]
    while stack:
        name = stack.pop()
        if name in visited:
            continue
        visited.add(name)
        entry = methods.get(name)
        if entry is None:
            effects.add(name)
            continue
        _, method = entry
        effects |= method.effect_attrs()
        stack.extend(method.self_calls)
    return effects


def _first_init_site(
    index: ProjectIndex, qualname: str, attr: str
) -> Optional[Tuple[ClassInfo, int]]:
    for info in index.mro(qualname):
        if attr in info.init_attrs:
            return info, info.init_attrs[attr]
    return None


#: Accumulator keyed by the finding's identity — ``(path, line, rule,
#: attribute)`` — so the same defect reached through several subclasses
#: reports once, while distinct attributes anchored at one line (TWL009)
#: stay distinct findings.
_Findings = Dict[Tuple[str, int, str, str], Violation]


def _check_snapshot_completeness(
    index: ProjectIndex, qualname: str, findings: _Findings
) -> None:
    info = index.classes[qualname]
    methods = _mro_methods(index, qualname)
    mutable = _mutable_attrs(index, qualname, methods)
    if not _implements_protocol(methods):
        if mutable and info.module.startswith(AUDITED_STATE_PREFIXES):
            attrs = ", ".join(sorted(mutable))
            path = index.path_of(info)
            findings.setdefault(
                (path, info.lineno, "TWL008", "<class>"),
                Violation(
                    path=path,
                    line=info.lineno,
                    col=0,
                    rule="TWL008",
                    message=(
                        f"stateful class {info.name} (mutable: {attrs}) "
                        "implements no snapshot/restore protocol; mid-run "
                        "persistence silently loses its state"
                    ),
                ),
            )
        return
    captured = _protocol_effects(index, qualname, methods, SNAPSHOT_METHOD_NAMES)
    restored = _protocol_effects(index, qualname, methods, RESTORE_METHOD_NAMES)
    flagged: Set[str] = set()
    for attr in sorted(mutable):
        missing = []
        if attr not in captured:
            missing.append("snapshot")
        if attr not in restored:
            missing.append("restore")
        if not missing:
            continue
        owner, lineno = mutable[attr]
        flagged.add(attr)
        path = index.path_of(owner)
        findings.setdefault(
            (path, lineno, "TWL008", attr),
            Violation(
                path=path,
                line=lineno,
                col=0,
                rule="TWL008",
                message=(
                    f"mutable attribute '{attr}' of {owner.name} is missing "
                    f"from the {' and '.join(missing)} side of the snapshot "
                    "protocol; a resumed run diverges"
                ),
            ),
        )
    # Owned components: state constructed in __init__ whose class itself
    # snapshots must travel in both directions even if this class never
    # rebinds the attribute.
    for mro_info in index.mro(qualname):
        for attr, chain in sorted(mro_info.ctor_chains.items()):
            if attr in flagged or (attr in captured and attr in restored):
                continue
            component = index.resolve_name(mro_info.module, chain)
            if component is None:
                continue
            comp_methods = _mro_methods(index, component)
            if not _implements_protocol(comp_methods):
                continue
            site = _first_init_site(index, qualname, attr)
            owner, lineno = site if site else (mro_info, mro_info.lineno)
            flagged.add(attr)
            path = index.path_of(owner)
            findings.setdefault(
                (path, lineno, "TWL008", attr),
                Violation(
                    path=path,
                    line=lineno,
                    col=0,
                    rule="TWL008",
                    message=(
                        f"owned component '{attr}' of {owner.name} (a "
                        f"{index.classes[component].name}, which snapshots) "
                        "does not travel through the snapshot/restore "
                        "protocol"
                    ),
                ),
            )


def _check_batch_parity(
    index: ProjectIndex, qualname: str, findings: _Findings
) -> None:
    info = index.classes[qualname]
    batch = info.methods.get("write_batch")
    if batch is None or batch.is_property:
        return
    methods = _mro_methods(index, qualname)
    if "write" not in methods:
        return
    batch_effects = _method_effects(index, qualname, methods, "write_batch")
    scalar_effects = _method_effects(index, qualname, methods, "write")
    path = index.path_of(info)
    for attr in sorted(batch_effects ^ scalar_effects):
        side, other = (
            ("write_batch", "the scalar write path")
            if attr in batch_effects
            else ("the scalar write path", "write_batch")
        )
        findings.setdefault(
            (path, batch.lineno, "TWL009", attr),
            Violation(
                path=path,
                line=batch.lineno,
                col=0,
                rule="TWL009",
                message=(
                    f"{side} of {info.name} touches '{attr}' but {other} "
                    "does not; batched and serial runs can diverge"
                ),
            ),
        )


def check_state_rules(index: ProjectIndex) -> List[Violation]:
    """TWL008/TWL009 violations over an indexed project tree.

    Findings are deduplicated by ``(path, line, rule, attribute)``, so a
    base class's uncaptured attribute anchors at one mutation site even
    when several subclasses inherit the defect — one reasoned pragma
    (or one fix) settles it — while distinct attributes flagged at the
    same line stay distinct findings.
    """
    findings: _Findings = {}
    for qualname in sorted(index.classes):
        _check_snapshot_completeness(index, qualname, findings)
        _check_batch_parity(index, qualname, findings)
    return sorted(
        findings.values(), key=lambda v: (v.path, v.line, v.col, v.rule, v.message)
    )
