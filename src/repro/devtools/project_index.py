"""Project-wide symbol and effect index (the lint analyzer's phase one).

The single-file rules (TWL001-TWL007) can be decided by looking at one
module at a time.  The state rules (TWL008-TWL010, see
:mod:`repro.devtools.state_rules`) cannot: whether a scheme's
``self._cursor`` is snapshotted depends on methods *inherited across
modules*, and whether a ``write_batch`` override mutates the same state
surface as its scalar ``write`` depends on the transitive closure of
every helper either path calls.  This module builds the shared index
those rules consume:

* one :class:`ModuleInfo` per file — its import map (absolute and
  relative imports resolved to dotted names) and top-level classes;
* one :class:`ClassInfo` per class — raw base-class expressions
  (resolved lazily against the whole index), ``__slots__``, dataclass
  detection, class-level fields, and which ``__init__`` attributes are
  *borrowed* (bound straight from a constructor parameter) or *owned*
  (bound to a constructor call of another indexed class);
* one :class:`MethodInfo` per method — the ``self.*`` effect sets: reads,
  attribute rebinds, in-place mutations (subscript stores, mutating
  container methods, augmented assignment through local aliases like
  ``counters = self._frame_writes; counters[f] += 1``), method calls on
  attributes, and calls to other ``self`` methods for transitive
  expansion.

Everything is stdlib-``ast``; nothing is imported or executed.  The
index is deliberately a *project* view: method resolution
(:meth:`ProjectIndex.mro`) walks only classes defined in the indexed
tree, so external bases (``abc.ABC``, numpy types) simply contribute
nothing.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

#: Method names that capture state for mid-run persistence.  A class
#: "implements the snapshot protocol" iff its project MRO defines at
#: least one name from each family (``WearLeveler`` pairs ``snapshot``
#: with the ``_snapshot_state`` hook; the engine uses ``snapshot_state``).
SNAPSHOT_METHOD_NAMES = frozenset({"snapshot", "snapshot_state", "_snapshot_state"})

#: Method names that restore state captured by a snapshot-family method.
RESTORE_METHOD_NAMES = frozenset({"restore", "restore_state", "_restore_state"})

#: Method names whose attribute writes are construction, not runtime
#: drift, and whose bodies are therefore excluded when inferring the
#: *mutable* attribute set of a class.
INIT_METHOD_NAMES = frozenset({"__init__", "__post_init__"})

#: Container/instance methods that mutate their receiver in place.  A
#: call ``self.x.append(...)`` (or through an alias of ``self.x``) is
#: evidence that ``x`` is mutable state; a plain method call is not —
#: schemes call ``self.array.write(...)`` on state they merely borrow.
MUTATING_CONTAINER_METHODS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "reverse",
        "rotate",
        "setdefault",
        "sort",
        "update",
    }
)


@dataclass
class MethodInfo:
    """Per-method ``self.*`` effect sets, first-occurrence line numbers."""

    name: str
    lineno: int
    decorators: Tuple[str, ...] = ()
    is_property: bool = False
    is_static: bool = False
    #: Attribute rebinds: ``self.x = ...`` / ``self.x += ...`` / ``del self.x``.
    writes: Dict[str, int] = field(default_factory=dict)
    #: In-place mutations attributed to an attribute: subscript stores,
    #: mutating container methods, writes through local aliases.
    mutations: Dict[str, int] = field(default_factory=dict)
    #: Attributes read (``self.x`` in load context, root of chains).
    reads: Set[str] = field(default_factory=set)
    #: Attributes that had a (non-mutating) method invoked on them.
    attr_calls: Dict[str, int] = field(default_factory=dict)
    #: ``self.f(...)`` call targets — method names for transitive
    #: expansion; names that resolve to no method are bound callables
    #: stored in instance attributes.
    self_calls: Set[str] = field(default_factory=set)

    def effect_attrs(self) -> Set[str]:
        """Attributes this method writes, mutates, or calls methods on."""
        return set(self.writes) | set(self.mutations) | set(self.attr_calls)

    def touched_attrs(self) -> Set[str]:
        """Every attribute this method references in any way."""
        return self.effect_attrs() | self.reads


@dataclass
class ClassInfo:
    """One class definition and its effect-indexed methods."""

    name: str
    module: str
    lineno: int
    #: Raw base expressions as name chains (``("base", "WearLeveler")``);
    #: resolved against the index by :meth:`ProjectIndex.resolve_name`.
    base_chains: Tuple[Tuple[str, ...], ...] = ()
    methods: Dict[str, MethodInfo] = field(default_factory=dict)
    slots: Optional[Tuple[str, ...]] = None
    is_dataclass: bool = False
    #: Class-level assigned names (dataclass fields, class attributes).
    class_fields: Set[str] = field(default_factory=set)
    #: ``__init__``/``__post_init__`` attribute assignments (+ dataclass
    #: fields, whose generated ``__init__`` assigns them).
    init_attrs: Dict[str, int] = field(default_factory=dict)
    #: Init attributes bound straight from a constructor parameter —
    #: state the instance borrows rather than owns.
    borrowed_attrs: Set[str] = field(default_factory=set)
    #: Init attributes bound to a constructor call, as raw name chains
    #: (``self.remap = RemappingTable(n)`` -> ``("RemappingTable",)``).
    ctor_chains: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    @property
    def qualname(self) -> str:
        return f"{self.module}.{self.name}" if self.module else self.name

    def property_names(self) -> Set[str]:
        return {m.name for m in self.methods.values() if m.is_property}


@dataclass
class ModuleInfo:
    """One indexed source file."""

    name: str
    path: str
    is_package: bool
    #: Local name -> dotted target for imports (modules and symbols).
    imports: Dict[str, str] = field(default_factory=dict)
    #: Class names defined at module top level.
    class_names: Set[str] = field(default_factory=set)


def _name_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` as ``("a", "b", "c")``, or None for other shapes."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


class _MethodScanner(ast.NodeVisitor):
    """Extracts one method's ``self.*`` effect sets.

    Tracks intra-method aliases so effects through locals attribute to
    the right instance state: ``frames = self._frame_writes`` followed
    by ``frames[f] += 1`` (or ``frames += bincount(...)``,
    ``frames.append(x)``) is a mutation of ``_frame_writes``; a
    two-level alias like ``rng = self.toss_up.rng; rng.take_words(n)``
    roots at ``toss_up``.
    """

    def __init__(self, info: MethodInfo, self_name: Optional[str]) -> None:
        self.info = info
        self.self_name = self_name
        self._aliases: Dict[str, str] = {}

    # -- expression rooting ---------------------------------------------
    def _root_of(self, node: ast.AST) -> Optional[str]:
        """The ``self`` attribute an expression is a view of, if any."""
        if self.self_name is None:
            return None
        if isinstance(node, ast.Name):
            return self._aliases.get(node.id)
        if isinstance(node, ast.Attribute):
            value = node.value
            if isinstance(value, ast.Name) and value.id == self.self_name:
                return node.attr
            return self._root_of(value)
        if isinstance(node, ast.Subscript):
            return self._root_of(node.value)
        return None

    # -- assignment forms ------------------------------------------------
    def _handle_store(self, target: ast.AST, value_root: Optional[str]) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._handle_store(element, None)
            return
        if isinstance(target, ast.Starred):
            self._handle_store(target.value, None)
            return
        lineno = getattr(target, "lineno", 1)
        if isinstance(target, ast.Attribute):
            value = target.value
            if isinstance(value, ast.Name) and value.id == self.self_name:
                self.info.writes.setdefault(target.attr, lineno)
                return
            root = self._root_of(value)
            if root is not None:
                self.info.mutations.setdefault(root, lineno)
            return
        if isinstance(target, ast.Subscript):
            root = self._root_of(target.value)
            if root is not None:
                self.info.mutations.setdefault(root, lineno)
            return
        if isinstance(target, ast.Name):
            if value_root is not None:
                self._aliases[target.id] = value_root
            else:
                self._aliases.pop(target.id, None)

    def visit_Assign(self, node: ast.Assign) -> None:
        value_root = self._root_of(node.value)
        for target in node.targets:
            self._handle_store(target, value_root)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        value_root = self._root_of(node.value) if node.value else None
        self._handle_store(node.target, value_root)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        target = node.target
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == self.self_name
        ):
            self.info.writes.setdefault(target.attr, target.lineno)
        else:
            root = self._root_of(target)
            if root is not None:
                # In-place operator through an alias or a subscript:
                # ``counters[f] += 1`` / ``frames += bincount(...)``.
                self.info.mutations.setdefault(root, target.lineno)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._handle_store(target, None)
        self.generic_visit(node)

    # -- reads and calls -------------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            isinstance(node.ctx, ast.Load)
            and isinstance(node.value, ast.Name)
            and node.value.id == self.self_name
        ):
            self.info.reads.add(node.attr)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            value = func.value
            if isinstance(value, ast.Name) and value.id == self.self_name:
                self.info.self_calls.add(func.attr)
            else:
                root = self._root_of(value)
                if root is not None:
                    if func.attr in MUTATING_CONTAINER_METHODS:
                        self.info.mutations.setdefault(root, func.lineno)
                    else:
                        self.info.attr_calls.setdefault(root, func.lineno)
        elif isinstance(func, ast.Name) and func.id in self._aliases:
            # A bare call through an alias of ``self.f`` — either a
            # method alias (``write = self.write``) or a bound callable
            # stored in an attribute; resolution decides which.
            self.info.self_calls.add(self._aliases[func.id])
        self.generic_visit(node)


def _decorator_names(node: Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef]) -> Tuple[str, ...]:
    names: List[str] = []
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        chain = _name_chain(target)
        if chain:
            names.append(".".join(chain))
    return tuple(names)


def _scan_method(node: Union[ast.FunctionDef, ast.AsyncFunctionDef]) -> MethodInfo:
    decorators = _decorator_names(node)
    is_static = any(d.split(".")[-1] == "staticmethod" for d in decorators)
    is_class = any(d.split(".")[-1] == "classmethod" for d in decorators)
    is_property = any(
        d.split(".")[-1] == "property" or d.endswith(".setter") or d.endswith(".getter")
        for d in decorators
    )
    info = MethodInfo(
        name=node.name,
        lineno=node.lineno,
        decorators=decorators,
        is_property=is_property,
        is_static=is_static,
    )
    self_name: Optional[str] = None
    if not is_static and not is_class:
        params = list(node.args.posonlyargs) + list(node.args.args)
        if params:
            self_name = params[0].arg
    scanner = _MethodScanner(info, self_name)
    for statement in node.body:
        scanner.visit(statement)
    return info


def _scan_class(node: ast.ClassDef, module: str) -> ClassInfo:
    decorators = _decorator_names(node)
    info = ClassInfo(
        name=node.name,
        module=module,
        lineno=node.lineno,
        base_chains=tuple(
            chain for chain in (_name_chain(base) for base in node.bases) if chain
        ),
        is_dataclass=any(d.split(".")[-1] == "dataclass" for d in decorators),
    )
    for statement in node.body:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            method = _scan_method(statement)
            # Property getter and setter share a name; merge effects so
            # neither is lost (first definition keeps the line number).
            existing = info.methods.get(statement.name)
            if existing is not None and (existing.is_property or method.is_property):
                existing.writes.update(method.writes)
                existing.mutations.update(method.mutations)
                existing.reads.update(method.reads)
                existing.attr_calls.update(method.attr_calls)
                existing.self_calls.update(method.self_calls)
                existing.is_property = True
            else:
                info.methods[statement.name] = method
        elif isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    info.class_fields.add(target.id)
                    if target.id == "__slots__":
                        info.slots = _constant_str_tuple(statement.value)
        elif isinstance(statement, ast.AnnAssign):
            if isinstance(statement.target, ast.Name):
                info.class_fields.add(statement.target.id)
                if statement.target.id == "__slots__" and statement.value is not None:
                    info.slots = _constant_str_tuple(statement.value)
    _collect_init_facts(node, info)
    return info


def _constant_str_tuple(node: ast.AST) -> Optional[Tuple[str, ...]]:
    if not isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return None
    values: List[str] = []
    for element in node.elts:
        if not isinstance(element, ast.Constant) or not isinstance(element.value, str):
            return None
        values.append(element.value)
    return tuple(values)


def _collect_init_facts(node: ast.ClassDef, info: ClassInfo) -> None:
    """Init-assigned attributes, borrowed params, owned constructor calls."""
    if info.is_dataclass:
        # Dataclass fields are assigned by the generated __init__.
        for name in info.class_fields:
            if name != "__slots__" and not name.startswith("__"):
                info.init_attrs.setdefault(name, info.lineno)
    for statement in node.body:
        if not isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if statement.name not in INIT_METHOD_NAMES:
            continue
        method = info.methods.get(statement.name)
        if method is not None:
            for attr, lineno in method.writes.items():
                info.init_attrs.setdefault(attr, lineno)
        params = {
            a.arg
            for a in list(statement.args.posonlyargs)
            + list(statement.args.args)
            + list(statement.args.kwonlyargs)
        }
        for sub in ast.walk(statement):
            if not isinstance(sub, ast.Assign) or len(sub.targets) != 1:
                continue
            target = sub.targets[0]
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
            ):
                continue
            attr = target.attr
            value = sub.value
            if isinstance(value, ast.Name) and value.id in params:
                info.borrowed_attrs.add(attr)
            elif isinstance(value, ast.Call):
                chain = _name_chain(value.func)
                if chain:
                    info.ctor_chains.setdefault(attr, chain)


def _collect_imports(tree: ast.Module, module: ModuleInfo) -> None:
    anchor = module.name.split(".") if module.name else []
    if not module.is_package and anchor:
        anchor = anchor[:-1]
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                module.imports[bound] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                parts = anchor[: len(anchor) - (node.level - 1)]
                if node.module:
                    parts = parts + node.module.split(".")
                base = ".".join(parts)
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                module.imports[bound] = f"{base}.{alias.name}" if base else alias.name


#: One indexable source unit: ``(path, module_name, source_or_tree)``.
IndexSource = Tuple[str, str, Union[str, ast.Module]]


class ProjectIndex:
    """Whole-tree class/method/effect symbol table."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        #: Qualified "module.Class" -> ClassInfo.
        self.classes: Dict[str, ClassInfo] = {}
        self._mro_cache: Dict[str, Tuple[ClassInfo, ...]] = {}

    # -- construction ----------------------------------------------------
    def add_module(
        self, path: str, name: str, tree: ast.Module, is_package: bool = False
    ) -> None:
        module = ModuleInfo(name=name, path=path, is_package=is_package)
        _collect_imports(tree, module)
        for statement in tree.body:
            if isinstance(statement, ast.ClassDef):
                info = _scan_class(statement, name)
                module.class_names.add(info.name)
                self.classes[info.qualname] = info
        self.modules[name] = module
        self._mro_cache.clear()

    # -- name resolution -------------------------------------------------
    def resolve_name(
        self, module_name: str, chain: Tuple[str, ...]
    ) -> Optional[str]:
        """Resolve a name chain in a module to a qualified class name."""
        if not chain:
            return None
        module = self.modules.get(module_name)
        if module is not None:
            if len(chain) == 1 and chain[0] in module.class_names:
                return f"{module_name}.{chain[0]}"
            if chain[0] in module.imports:
                qualified = ".".join((module.imports[chain[0]],) + chain[1:])
                if qualified in self.classes:
                    return qualified
                return self._resolve_by_suffix(qualified.split(".")[-1])
        dotted = ".".join(chain)
        if dotted in self.classes:
            return dotted
        return self._resolve_by_suffix(chain[-1])

    def _resolve_by_suffix(self, class_name: str) -> Optional[str]:
        """Unique-class-name fallback for re-exported imports."""
        matches = [
            qualname
            for qualname, info in self.classes.items()
            if info.name == class_name
        ]
        if len(matches) == 1:
            return matches[0]
        return None

    def resolved_bases(self, info: ClassInfo) -> List[str]:
        out: List[str] = []
        for chain in info.base_chains:
            resolved = self.resolve_name(info.module, chain)
            if resolved is not None:
                out.append(resolved)
        return out

    # -- method resolution order -----------------------------------------
    def mro(self, qualname: str) -> Tuple[ClassInfo, ...]:
        """Project-class linearization: DFS, left to right, first wins."""
        cached = self._mro_cache.get(qualname)
        if cached is not None:
            return cached
        order: List[ClassInfo] = []
        seen: Set[str] = set()

        def visit(name: str) -> None:
            if name in seen:
                return
            seen.add(name)
            info = self.classes.get(name)
            if info is None:
                return
            order.append(info)
            for base in self.resolved_bases(info):
                visit(base)

        visit(qualname)
        result = tuple(order)
        self._mro_cache[qualname] = result
        return result

    def find_method(
        self, qualname: str, method_name: str
    ) -> Optional[Tuple[ClassInfo, MethodInfo]]:
        """First definition of ``method_name`` along the project MRO."""
        for info in self.mro(qualname):
            method = info.methods.get(method_name)
            if method is not None:
                return info, method
        return None

    def mro_properties(self, qualname: str) -> Set[str]:
        names: Set[str] = set()
        for info in self.mro(qualname):
            names |= info.property_names()
        return names

    def path_of(self, info: ClassInfo) -> str:
        module = self.modules.get(info.module)
        return module.path if module is not None else "<unknown>"


def build_index(sources: Iterable[IndexSource]) -> ProjectIndex:
    """Build an index from ``(path, module, source_or_tree)`` units.

    Accepts either raw source text or pre-parsed ``ast.Module`` trees
    (the project lint pass parses each file once and shares the trees).
    Units that fail to parse are skipped — the lint pass reports the
    syntax error separately as TWL000.
    """
    index = ProjectIndex()
    for path, module_name, source in sources:
        if isinstance(source, str):
            try:
                tree = ast.parse(source, filename=path)
            except SyntaxError:
                continue
        else:
            tree = source
        is_package = os.path.basename(path) == "__init__.py"
        index.add_module(path, module_name, tree, is_package=is_package)
    return index


def index_paths(paths: Sequence[str]) -> ProjectIndex:
    """Convenience: index every Python file under ``paths``."""
    from .lint import iter_python_files, module_name_for

    sources: List[IndexSource] = []
    for path in iter_python_files(paths):
        with open(path, encoding="utf-8") as handle:
            sources.append((path, module_name_for(path), handle.read()))
    return build_index(sources)
