"""Developer tooling enforcing the reproduction's determinism invariants.

Every guarantee the execution layer makes — bit-identical parallel,
batched and resumed campaigns, content-addressed cache reuse, pure
fault-injection cell selection — rests on invariants that ordinary
tests cannot see: all randomness flows through :mod:`repro.rng`, no
wall-clock reads leak into result-producing paths, and every spec
field is deliberately classified as identity-bearing or execution-only.
This package makes those invariants *enforced* instead of folklore:

* :mod:`repro.devtools.lint` — a two-phase stdlib-``ast`` analyzer:
  per-file determinism rules plus a project-wide index pass
  (:mod:`repro.devtools.project_index`) feeding the cross-module state
  and effect rules in :mod:`repro.devtools.state_rules`.  Named,
  suppressible rules ``TWL001``–``TWL010``; ``twl-repro lint`` and
  ``make lint`` run it, and ``--format json`` emits the stable finding
  schema CI annotates from.
* :mod:`repro.devtools.sanitize` — a runtime determinism sanitizer
  (``REPRO_SANITIZE=1`` / ``--sanitize``) that monkeypatches the
  ``random`` / ``numpy.random`` global-state entry points to raise
  inside engine/sim execution, proving dynamically what ``TWL001``
  claims statically.

The rules themselves are catalogued with their rationale in
``docs/invariants.md``.
"""

from typing import Any

from .sanitize import (
    SANITIZE_ENV,
    install,
    maybe_install_from_env,
    sanitizer_installed,
    uninstall,
)

__all__ = [
    "RULES",
    "Violation",
    "lint_paths",
    "lint_source",
    "SANITIZE_ENV",
    "install",
    "maybe_install_from_env",
    "sanitizer_installed",
    "uninstall",
]

_LINT_EXPORTS = ("RULES", "Violation", "lint_paths", "lint_source")


def __getattr__(name: str) -> Any:
    # The linter is imported lazily: the engine imports this package on
    # every simulation for the sanitizer hooks, and eager import also
    # trips runpy's double-import warning under
    # ``python -m repro.devtools.lint``.
    if name in _LINT_EXPORTS:
        from . import lint

        return getattr(lint, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
