"""Static analysis enforcing the repo's determinism invariants.

The execution layer's guarantees — parallel/batched/resumed campaigns
bit-identical to serial, content-addressed cache reuse, pure
fault-injection cell selection — all reduce to invariants that no unit
test can watch globally: randomness must flow through
:mod:`repro.rng.streams`, wall-clock reads must stay out of
result-producing code, and every spec field must be deliberately
classified as identity-bearing or execution-only.  A single stray
``np.random.rand()`` in :mod:`repro.sim` would silently corrupt cache
reuse and resume bit-identity with zero test failures.

This module is a two-phase, project-wide analyzer built on the stdlib
``ast`` module (no third-party dependencies).  Phase one runs the
single-file rules below over each module and builds a whole-tree symbol
and effect index (:mod:`repro.devtools.project_index`: classes,
cross-module base resolution, per-method ``self.*`` effect sets); phase
two runs the cross-module state rules
(:mod:`repro.devtools.state_rules`) against that index and audits every
suppression pragma.  Violations are reported as named rules:

``TWL001``
    No ``random.*`` calls, no global-state ``numpy.random.*`` calls,
    no unseeded ``np.random.default_rng()`` and no OS entropy
    (``os.urandom`` / ``uuid.uuid4`` / ``secrets``) outside
    :mod:`repro.rng`.  All randomness derives from ``derive_seed`` /
    ``make_generator`` / ``SeedSequenceFactory``.
``TWL002``
    No wall-clock reads (``time.time`` / ``perf_counter`` /
    ``monotonic`` / ``datetime.now`` …) outside :mod:`repro.exec`,
    whose progress lines and timeouts are the one sanctioned consumer.
``TWL003``
    Cache-fingerprint exhaustiveness: every field of
    ``ExperimentCell`` and ``ExperimentSetup`` must appear in either
    the fingerprint-identity set or the documented execution-knob set,
    so adding a field without classifying it is a lint error instead
    of a silent cache-poisoning bug.
``TWL004``
    In fingerprinted / result-serialization modules, iteration over
    ``set`` expressions or ``.keys()/.values()/.items()`` views must be
    wrapped in ``sorted(...)``, and ``json.dump(s)`` must pass
    ``sort_keys=True``.
``TWL005``
    ``__all__`` must list only names that exist and every public
    function/class defined in the module.
``TWL006``
    No per-element Python loops over canonical arrays
    (``for x in arr.tolist(): ...``) inside the engine hot-path
    packages; the batched write protocol exists to avoid exactly that
    scalar cost.  Deliberate scalar tails carry a reasoned pragma.
``TWL007``
    No full-trace materialization (``.materialize()`` /
    ``.write_page_list()`` / ``load_*_trace()``) inside the streaming
    hot paths (:mod:`repro.sim`, :mod:`repro.engine`).  The workload
    pipeline is streaming-first — drivers pull bounded chunks through
    :class:`repro.traces.stream.TraceStream` so multi-billion-request
    campaigns run at constant memory; one materializing call quietly
    re-couples peak RSS to trace length.  Intentional materialized
    adapters (``TraceDriver``) carry a reasoned pragma.
``TWL008``
    Snapshot completeness (cross-module): every mutable instance
    attribute of a class implementing the snapshot protocol —
    including attributes assigned only outside ``__init__`` and
    inherited ones — must be captured by the snapshot side and rebuilt
    by the restore side; stateful classes in the audited state
    packages must implement the protocol at all.
``TWL009``
    Batch/scalar effect parity (cross-module): a ``write_batch``
    override must mutate exactly the state surface of its scalar
    ``write`` path, transitively through every helper either one
    calls.
``TWL010``
    No stale suppressions: a ``# twl: allow(...)`` pragma that no
    longer matches any finding on its line is itself a finding, so
    suppressions cannot rot in place.

A genuine exception is silenced inline with a *reasoned* pragma::

    delay = jitter()  # twl: allow(TWL001) reason=exec backoff jitter

Pragmas without a ``reason=`` do not suppress.  Rationale for each
rule lives in ``docs/invariants.md``; ``twl-repro lint`` and
``make lint`` are the entry points, and ``--format json`` emits the
stable machine-readable finding schema CI turns into annotations.
"""

from __future__ import annotations

import argparse
import ast
import io
import json
import os
import re
import sys
import tokenize
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

#: Rule identifiers and their one-line summaries.
RULES: Dict[str, str] = {
    "TWL001": "randomness outside repro.rng (use repro.rng.streams)",
    "TWL002": "wall-clock read outside repro.exec",
    "TWL003": "spec field not classified as identity or execution knob",
    "TWL004": "unordered iteration/serialization in a fingerprinted path",
    "TWL005": "__all__ inconsistent with public module names",
    "TWL006": "per-element Python loop over a canonical array in a hot path",
    "TWL007": "full-trace materialization in a streaming hot path",
    "TWL008": "mutable state not covered by the snapshot/restore protocol",
    "TWL009": "write_batch effect set differs from the scalar write path",
    "TWL010": "stale twl: allow pragma suppressing no finding",
}

#: Rules a single-file pass can decide on its own.  TWL008/TWL009 need
#: the whole-tree index and TWL010 needs the full finding set, so
#: :func:`lint_source`/:func:`lint_file` audit only pragmas whose rule
#: list stays within this set; the project pass audits the rest.
_SINGLE_FILE_RULES: FrozenSet[str] = frozenset(
    {"TWL000", "TWL001", "TWL002", "TWL003", "TWL004", "TWL005", "TWL006", "TWL007"}
)

#: Modules whose serialization/fingerprint role makes iteration order
#: load-bearing (TWL004 applies only here).
ORDERED_ITERATION_MODULES: FrozenSet[str] = frozenset(
    {
        "repro.exec.hashing",
        "repro.exec.cache",
        "repro.exec.checkpoint",
        "repro.sim.cache",
    }
)

#: Module prefixes exempt from TWL001 (the randomness primitives
#: themselves, and the sanitizer that patches them).
_RNG_EXEMPT_PREFIXES = ("repro.rng", "repro.devtools")

#: Module prefixes allowed to read wall clocks (TWL002): executor
#: progress timing, per-cell timeouts, fault-injection hangs.
_CLOCK_ALLOWED_PREFIXES = ("repro.exec", "repro.devtools")

#: ``numpy.random`` attributes that are *not* global-state entry points
#: (explicitly-seeded constructor machinery).
_NP_RANDOM_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "MT19937",
        "Philox",
        "SFC64",
    }
)

#: Clock-reading functions of the ``time`` module (``sleep`` is fine:
#: it spends time, it does not observe it).
_TIME_CLOCK_FNS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "clock_gettime",
        "clock_gettime_ns",
    }
)

#: Clock-reading constructors of ``datetime.datetime`` / ``datetime.date``.
_DATETIME_CLOCK_FNS = frozenset({"now", "utcnow", "today"})

#: Module prefixes whose inner loops are engine hot paths (TWL006):
#: after the structure-of-arrays refactor the canonical wear/table
#: state lives in numpy arrays, and a per-element Python loop over one
#: (``for x in arr.tolist(): ...``) silently reintroduces the scalar
#: cost the batch protocol exists to avoid.  Intentional scalar tails
#: (exact failure attribution, fault-corrupted-state fallbacks) carry a
#: reasoned ``# twl: allow(TWL006)`` pragma.
_HOT_PATH_PREFIXES = ("repro.pcm", "repro.tables", "repro.wearlevel", "repro.core")

#: Module prefixes that must stay constant-memory with respect to
#: workload length (TWL007): the simulation drivers and the engine pull
#: bounded chunks from :class:`repro.traces.stream.TraceStream`; a
#: materializing call here re-couples peak RSS to trace length.
_STREAMING_HOT_PREFIXES = ("repro.sim", "repro.engine")

#: Method names that materialize a whole trace (TWL007).
_MATERIALIZING_ATTRS = frozenset({"materialize", "write_page_list"})

#: Module-level loader functions that materialize a whole trace (TWL007).
_MATERIALIZING_FUNCS = frozenset({"load_trace", "load_text_trace", "load_block_trace"})

_PRAGMA_RE = re.compile(
    r"#\s*twl:\s*allow\(\s*([A-Za-z0-9_\s,]+?)\s*\)(?:\s+reason=(\S[^#]*))?"
)


@dataclass(frozen=True)
class Violation:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        """``path:line:col: RULE message`` diagnostic line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass(frozen=True)
class Pragma:
    """One ``# twl: allow(...)`` suppression comment."""

    line: int
    col: int
    rules: FrozenSet[str]
    reason: Optional[str]

    @property
    def has_reason(self) -> bool:
        return self.reason is not None


@dataclass(frozen=True)
class Finding:
    """A violation together with its suppression status."""

    violation: Violation
    suppressed: bool
    #: The matching pragma when one covers this line/rule (present even
    #: for a reasonless pragma, which matches but does not suppress).
    pragma: Optional[Pragma] = None


@dataclass(frozen=True)
class LintReport:
    """Full result of a project lint pass, suppressed findings included."""

    findings: Tuple[Finding, ...]
    files: Tuple[str, ...]

    @property
    def violations(self) -> List[Violation]:
        """Unsuppressed violations — what drives the exit status."""
        return [f.violation for f in self.findings if not f.suppressed]

    def to_json_dict(self) -> Dict[str, object]:
        """The stable ``--format json`` schema (version 1)."""
        return {
            "version": 1,
            "files_checked": len(self.files),
            "findings": [
                {
                    "rule": f.violation.rule,
                    "path": f.violation.path,
                    "line": f.violation.line,
                    "col": f.violation.col,
                    "message": f.violation.message,
                    "suppressed": f.suppressed,
                    "pragma": (
                        None
                        if f.pragma is None
                        else {
                            "rules": sorted(f.pragma.rules),
                            "reason": f.pragma.reason,
                        }
                    ),
                }
                for f in self.findings
            ],
        }


def module_name_for(path: str) -> str:
    """Dotted module name inferred from ``path`` via ``__init__.py`` files.

    Walks parent directories while they are packages, so
    ``…/src/repro/exec/hashing.py`` resolves to ``repro.exec.hashing``
    and a bare fixture file resolves to its stem (no exemptions apply).
    """
    path = os.path.abspath(path)
    stem = os.path.splitext(os.path.basename(path))[0]
    parts: List[str] = [] if stem == "__init__" else [stem]
    directory = os.path.dirname(path)
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        parts.append(os.path.basename(directory))
        directory = os.path.dirname(directory)
    return ".".join(reversed(parts))


def _attr_chain(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` as ``["a", "b", "c"]``, or None for other shapes."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


class _ImportMap:
    """Names bound by imports, bucketed by what they alias."""

    def __init__(self) -> None:
        self.random_modules: Set[str] = set()
        self.random_funcs: Set[str] = set()
        self.numpy_modules: Set[str] = set()
        self.numpy_random_modules: Set[str] = set()
        self.numpy_random_funcs: Dict[str, str] = {}
        self.time_modules: Set[str] = set()
        self.time_funcs: Dict[str, str] = {}
        self.datetime_modules: Set[str] = set()
        self.datetime_classes: Set[str] = set()
        self.os_modules: Set[str] = set()
        self.uuid_modules: Set[str] = set()
        self.uuid_funcs: Set[str] = set()
        self.secrets_names: Set[str] = set()

    def collect(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self._add_import(alias.name, alias.asname)
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                for alias in node.names:
                    self._add_from(node.module or "", alias.name, alias.asname)

    def _add_import(self, name: str, asname: Optional[str]) -> None:
        bound = asname or name.split(".")[0]
        if name == "random":
            self.random_modules.add(bound)
        elif name == "numpy":
            self.numpy_modules.add(bound)
        elif name == "numpy.random":
            if asname:
                self.numpy_random_modules.add(bound)
            else:
                self.numpy_modules.add(bound)
        elif name == "time":
            self.time_modules.add(bound)
        elif name == "datetime":
            self.datetime_modules.add(bound)
        elif name == "os":
            self.os_modules.add(bound)
        elif name == "uuid":
            self.uuid_modules.add(bound)
        elif name == "secrets":
            self.secrets_names.add(bound)

    def _add_from(self, module: str, name: str, asname: Optional[str]) -> None:
        bound = asname or name
        if module == "random":
            self.random_funcs.add(bound)
        elif module == "numpy" and name == "random":
            self.numpy_random_modules.add(bound)
        elif module == "numpy.random":
            self.numpy_random_funcs[bound] = name
        elif module == "time":
            self.time_funcs[bound] = name
        elif module == "datetime" and name in ("datetime", "date"):
            self.datetime_classes.add(bound)
        elif module == "uuid":
            self.uuid_funcs.add(bound)
        elif module == "secrets":
            self.secrets_names.add(bound)


def _is_unseeded_default_rng(node: ast.Call) -> bool:
    """Whether a ``default_rng`` call supplies no deterministic seed."""
    if not node.args and not node.keywords:
        return True
    if node.args:
        first = node.args[0]
        return isinstance(first, ast.Constant) and first.value is None
    for keyword in node.keywords:
        if keyword.arg == "seed":
            value = keyword.value
            return isinstance(value, ast.Constant) and value.value is None
    return True


def _is_unordered_iterable(node: ast.AST) -> Optional[str]:
    """A short description when ``node`` is an unordered iterable."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set expression"
    if isinstance(node, ast.Call):
        chain = _attr_chain(node.func)
        if chain and chain[-1] in ("keys", "values", "items") and len(chain) > 1:
            return f"a .{chain[-1]}() view"
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return f"a {node.func.id}() call"
    return None


class _FileLinter(ast.NodeVisitor):
    """Single-file AST pass applying TWL001/TWL002/TWL004/TWL005."""

    def __init__(self, path: str, module: str) -> None:
        self.path = path
        self.module = module
        self.imports = _ImportMap()
        self.violations: List[Violation] = []
        self._check_rng = not module.startswith(_RNG_EXEMPT_PREFIXES)
        self._check_clock = not module.startswith(_CLOCK_ALLOWED_PREFIXES)
        self._check_order = module in ORDERED_ITERATION_MODULES
        self._check_hot = module.startswith(_HOT_PATH_PREFIXES)
        self._check_streaming = module.startswith(_STREAMING_HOT_PREFIXES)

    def run(self, tree: ast.Module) -> List[Violation]:
        self.imports.collect(tree)
        self.visit(tree)
        self._check_dunder_all(tree)
        return self.violations

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        self.violations.append(
            Violation(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                rule=rule,
                message=message,
            )
        )

    # -- TWL001 / TWL002 ------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        chain = _attr_chain(node.func)
        if chain:
            if self._check_rng:
                self._check_randomness(node, chain)
            if self._check_clock:
                self._check_clock_read(node, chain)
            if self._check_order:
                self._check_json_sorted(node, chain)
            if self._check_streaming:
                self._check_materialization(node, chain)
        if self._check_order:
            for builtin in ("list", "tuple", "iter", "enumerate", "reversed"):
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id == builtin
                    and node.args
                ):
                    kind = _is_unordered_iterable(node.args[0])
                    if kind:
                        self._flag(
                            node,
                            "TWL004",
                            f"{builtin}() over {kind} in a fingerprinted path; "
                            "wrap it in sorted(...)",
                        )
        self.generic_visit(node)

    def _check_randomness(self, node: ast.Call, chain: List[str]) -> None:
        imports = self.imports
        root = chain[0]
        if root in imports.random_modules and len(chain) >= 2:
            self._flag(
                node,
                "TWL001",
                f"call to {'.'.join(chain)}(): the stdlib random module is "
                "global state; derive a generator from repro.rng.streams",
            )
            return
        if root in imports.random_funcs and len(chain) == 1:
            self._flag(
                node,
                "TWL001",
                f"call to {root}() imported from the stdlib random module; "
                "derive a generator from repro.rng.streams",
            )
            return
        np_fn: Optional[str] = None
        if root in imports.numpy_modules and len(chain) >= 3 and chain[1] == "random":
            np_fn = chain[2]
        elif root in imports.numpy_random_modules and len(chain) >= 2:
            np_fn = chain[1]
        elif root in imports.numpy_random_funcs and len(chain) == 1:
            np_fn = imports.numpy_random_funcs[root]
        if np_fn is not None:
            if np_fn == "default_rng":
                if _is_unseeded_default_rng(node):
                    self._flag(
                        node,
                        "TWL001",
                        "unseeded np.random.default_rng() pulls OS entropy; "
                        "use repro.rng.streams.make_generator(seed, ...)",
                    )
            elif np_fn not in _NP_RANDOM_ALLOWED:
                self._flag(
                    node,
                    "TWL001",
                    f"call to np.random.{np_fn}(): numpy global RNG state; "
                    "derive a generator from repro.rng.streams",
                )
            return
        if root in imports.os_modules and len(chain) == 2 and chain[1] == "urandom":
            self._flag(node, "TWL001", "os.urandom() is OS entropy; use repro.rng")
        elif root in imports.secrets_names:
            self._flag(node, "TWL001", "secrets.* is OS entropy; use repro.rng")
        elif (
            root in imports.uuid_modules
            and len(chain) == 2
            and chain[1] in ("uuid1", "uuid4")
        ) or (root in imports.uuid_funcs and len(chain) == 1):
            self._flag(
                node, "TWL001", "random UUIDs are OS entropy; use repro.rng"
            )

    def _check_clock_read(self, node: ast.Call, chain: List[str]) -> None:
        imports = self.imports
        root = chain[0]
        flagged: Optional[str] = None
        if root in imports.time_modules and len(chain) == 2:
            if chain[1] in _TIME_CLOCK_FNS:
                flagged = f"time.{chain[1]}()"
        elif root in imports.time_funcs and len(chain) == 1:
            if imports.time_funcs[root] in _TIME_CLOCK_FNS:
                flagged = f"time.{imports.time_funcs[root]}()"
        elif (
            root in imports.datetime_modules
            and len(chain) == 3
            and chain[1] in ("datetime", "date")
            and chain[2] in _DATETIME_CLOCK_FNS
        ):
            flagged = f"datetime.{chain[1]}.{chain[2]}()"
        elif (
            root in imports.datetime_classes
            and len(chain) == 2
            and chain[1] in _DATETIME_CLOCK_FNS
        ):
            flagged = f"{root}.{chain[1]}()"
        if flagged:
            self._flag(
                node,
                "TWL002",
                f"wall-clock read {flagged} outside repro.exec; clock values "
                "must never reach result-producing code",
            )

    # -- TWL007 ---------------------------------------------------------
    def _check_materialization(self, node: ast.Call, chain: List[str]) -> None:
        tail = chain[-1]
        if len(chain) > 1 and tail in _MATERIALIZING_ATTRS:
            self._flag(
                node,
                "TWL007",
                f".{tail}() materializes a whole trace inside a streaming "
                "hot path; pull chunks through TraceStream/StreamDriver, or "
                "mark an intentional materialized adapter with a reasoned "
                "pragma",
            )
        elif tail in _MATERIALIZING_FUNCS:
            self._flag(
                node,
                "TWL007",
                f"{tail}() loads a whole trace into memory inside a "
                "streaming hot path; open it with open_trace_stream, or "
                "mark an intentional materialized adapter with a reasoned "
                "pragma",
            )

    # -- TWL004 ---------------------------------------------------------
    def _check_json_sorted(self, node: ast.Call, chain: List[str]) -> None:
        if len(chain) == 2 and chain[0] == "json" and chain[1] in ("dump", "dumps"):
            for keyword in node.keywords:
                if keyword.arg == "sort_keys":
                    value = keyword.value
                    if isinstance(value, ast.Constant) and value.value is True:
                        return
            self._flag(
                node,
                "TWL004",
                f"json.{chain[1]}() without sort_keys=True in a fingerprinted "
                "path; key order must not depend on construction order",
            )

    def _flag_unordered_iter(self, iterable: ast.AST) -> None:
        kind = _is_unordered_iterable(iterable)
        if kind:
            self._flag(
                iterable,
                "TWL004",
                f"iteration over {kind} in a fingerprinted path; "
                "wrap it in sorted(...)",
            )

    def visit_For(self, node: ast.For) -> None:
        if self._check_order:
            self._flag_unordered_iter(node.iter)
        if self._check_hot:
            self._flag_scalar_loop(node.iter)
        self.generic_visit(node)

    # -- TWL006 ---------------------------------------------------------
    def _flag_scalar_loop(self, iterable: ast.AST) -> None:
        """Flag hot-path iteration that walks an array element-wise."""
        for sub in ast.walk(iterable):
            if not isinstance(sub, ast.Call):
                continue
            chain = _attr_chain(sub.func)
            if chain and len(chain) > 1 and chain[-1] == "tolist":
                self._flag(
                    sub,
                    "TWL006",
                    "per-element loop over an array (.tolist()) in an engine "
                    "hot path; vectorize it, or mark an intentional scalar "
                    "tail with a reasoned pragma",
                )
                return

    def _visit_comprehension(self, node: ast.AST) -> None:
        if self._check_order:
            for comp in getattr(node, "generators", []):
                self._flag_unordered_iter(comp.iter)
        if self._check_hot:
            for comp in getattr(node, "generators", []):
                self._flag_scalar_loop(comp.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    # -- TWL005 ---------------------------------------------------------
    def _check_dunder_all(self, tree: ast.Module) -> None:
        dunder_all: Optional[ast.Assign] = None
        for statement in tree.body:
            if (
                isinstance(statement, ast.Assign)
                and len(statement.targets) == 1
                and isinstance(statement.targets[0], ast.Name)
                and statement.targets[0].id == "__all__"
            ):
                dunder_all = statement
        if dunder_all is None:
            return
        value = dunder_all.value
        if not isinstance(value, (ast.List, ast.Tuple)):
            return  # dynamically built; out of scope for static checking
        names: List[str] = []
        for element in value.elts:
            if not isinstance(element, ast.Constant) or not isinstance(
                element.value, str
            ):
                return
            names.append(element.value)
        seen: Set[str] = set()
        for name in names:
            if name in seen:
                self._flag(
                    dunder_all, "TWL005", f"duplicate name {name!r} in __all__"
                )
            seen.add(name)
        bound, has_star = _toplevel_bindings(tree)
        # A module-level __getattr__ (PEP 562) can provide any name
        # lazily, so existence cannot be checked statically.
        if not has_star and "__getattr__" not in bound:
            for name in names:
                if name not in bound:
                    self._flag(
                        dunder_all,
                        "TWL005",
                        f"__all__ lists {name!r} but the module does not "
                        "define or import it",
                    )
        for statement in tree.body:
            if isinstance(
                statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ) and not statement.name.startswith("_"):
                if statement.name not in seen:
                    self._flag(
                        statement,
                        "TWL005",
                        f"public {type(statement).__name__.replace('Def', '').lower()}"
                        f" {statement.name!r} missing from __all__",
                    )


def _toplevel_bindings(tree: ast.Module) -> Tuple[Set[str], bool]:
    """Names bound at module top level (descending into if/try blocks)."""
    bound: Set[str] = set()
    has_star = False

    def collect_target(target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            bound.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                collect_target(element)
        elif isinstance(target, ast.Starred):
            collect_target(target.value)

    def walk(statements: Iterable[ast.stmt]) -> None:
        nonlocal has_star
        for statement in statements:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bound.add(statement.name)
            elif isinstance(statement, ast.Assign):
                for target in statement.targets:
                    collect_target(target)
            elif isinstance(statement, (ast.AnnAssign, ast.AugAssign)):
                collect_target(statement.target)
            elif isinstance(statement, ast.Import):
                for alias in statement.names:
                    bound.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(statement, ast.ImportFrom):
                for alias in statement.names:
                    if alias.name == "*":
                        has_star = True
                    else:
                        bound.add(alias.asname or alias.name)
            elif isinstance(statement, ast.If):
                walk(statement.body)
                walk(statement.orelse)
            elif isinstance(statement, ast.Try):
                walk(statement.body)
                walk(statement.orelse)
                walk(statement.finalbody)
                for handler in statement.handlers:
                    walk(handler.body)
            elif isinstance(statement, (ast.For, ast.While, ast.With)):
                if isinstance(statement, ast.For):
                    collect_target(statement.target)
                walk(statement.body)

    walk(tree.body)
    return bound, has_star


def _suppressed(violation: Violation, pragmas: Dict[int, Pragma]) -> bool:
    pragma = pragmas.get(violation.line)
    if pragma is None:
        return False
    return violation.rule in pragma.rules and pragma.has_reason


def _collect_pragmas(source: str) -> Dict[int, Pragma]:
    """Suppression pragmas by line, from real comment tokens only.

    Tokenizing (rather than regex-scanning raw lines) keeps pragma
    *examples* inside docstrings and string literals — like the one in
    this module's own docstring — from registering as live
    suppressions, which matters now that TWL010 audits every pragma.
    Matching is anchored at the comment start for the same reason: a
    doc comment *mentioning* a pragma is not one.
    """
    pragmas: Dict[int, Pragma] = {}
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type != tokenize.COMMENT:
                continue
            match = _PRAGMA_RE.match(token.string)
            if not match:
                continue
            rules = frozenset(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
            reason = match.group(2)
            reason = reason.strip() if reason and reason.strip() else None
            pragmas[token.start[0]] = Pragma(
                line=token.start[0],
                col=token.start[1],
                rules=rules,
                reason=reason,
            )
    except tokenize.TokenError:
        pass
    return pragmas


def _stale_pragma_violations(
    path: str,
    pragmas: Dict[int, Pragma],
    violations: Sequence[Violation],
    restrict: Optional[FrozenSet[str]] = None,
) -> List[Violation]:
    """TWL010 for pragmas matching no violation on their line.

    A pragma is *used* when any of its listed rules has a finding on
    the pragma's line (even a reasonless pragma — the finding is then
    reported unsuppressed, which is diagnosis enough).  ``restrict``
    limits the audit to pragmas whose rule list stays within the given
    set (the single-file pass cannot judge project-level rules).
    """
    rules_by_line: Dict[int, Set[str]] = {}
    for violation in violations:
        rules_by_line.setdefault(violation.line, set()).add(violation.rule)
    stale: List[Violation] = []
    for line in sorted(pragmas):
        pragma = pragmas[line]
        if restrict is not None and not pragma.rules <= restrict:
            continue
        if pragma.rules & rules_by_line.get(line, set()):
            continue
        listed = ", ".join(sorted(pragma.rules))
        stale.append(
            Violation(
                path=path,
                line=line,
                col=pragma.col,
                rule="TWL010",
                message=(
                    f"pragma allow({listed}) suppresses no finding on this "
                    "line; delete the stale pragma"
                ),
            )
        )
    return stale


def lint_source(
    source: str, path: str = "<string>", module: Optional[str] = None
) -> List[Violation]:
    """Lint one module's source text; returns unsuppressed violations.

    ``module`` overrides the dotted-name inference from ``path`` (used
    by the rule exemptions and the TWL004 module scoping).  This is the
    *single-file* pass: the cross-module rules TWL008/TWL009 need the
    project index (:func:`lint_paths` / :func:`run_lint`), so pragmas
    naming them are exempt from the TWL010 staleness audit here.
    """
    if module is None:
        module = module_name_for(path) if path != "<string>" else ""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [
            Violation(
                path=path,
                line=error.lineno or 1,
                col=error.offset or 0,
                rule="TWL000",
                message=f"syntax error: {error.msg}",
            )
        ]
    violations = _FileLinter(path, module).run(tree)
    pragmas = _collect_pragmas(source)
    violations = violations + _stale_pragma_violations(
        path, pragmas, violations, restrict=_SINGLE_FILE_RULES
    )
    kept = [v for v in violations if not _suppressed(v, pragmas)]
    return sorted(kept, key=lambda v: (v.line, v.col, v.rule))


def lint_file(path: str) -> List[Violation]:
    """Lint one file on disk."""
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, path=path)


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Python files under ``paths`` (files kept as-is), sorted."""
    found: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for directory, _dirnames, filenames in os.walk(path):
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        found.append(os.path.join(directory, name))
        else:
            found.append(path)
    return sorted(found)


def _project_findings(paths: Sequence[str]) -> Tuple[List[str], List[Finding]]:
    """Two-phase project pass: per-file rules, index, state rules, TWL010.

    Each file is parsed once; the shared trees feed both the single-file
    rule pass and the project index the cross-module rules consume.
    Suppression is resolved centrally at the end so TWL010 can see the
    complete pre-suppression finding set.
    """
    from .project_index import IndexSource, build_index
    from .state_rules import check_state_rules

    files = iter_python_files(paths)
    raw: List[Violation] = []
    pragma_maps: Dict[str, Dict[int, Pragma]] = {}
    sources: List[IndexSource] = []
    for path in files:
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
        module = module_name_for(path)
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            raw.append(
                Violation(
                    path=path,
                    line=error.lineno or 1,
                    col=error.offset or 0,
                    rule="TWL000",
                    message=f"syntax error: {error.msg}",
                )
            )
            continue
        raw.extend(_FileLinter(path, module).run(tree))
        pragma_maps[path] = _collect_pragmas(source)
        sources.append((path, module, tree))
    index = build_index(sources)
    raw.extend(check_state_rules(index))
    violations_by_path: Dict[str, List[Violation]] = {}
    for violation in raw:
        violations_by_path.setdefault(violation.path, []).append(violation)
    for path in sorted(pragma_maps):
        raw.extend(
            _stale_pragma_violations(
                path, pragma_maps[path], violations_by_path.get(path, [])
            )
        )
    findings: List[Finding] = []
    for violation in sorted(raw, key=lambda v: (v.path, v.line, v.col, v.rule)):
        pragma = pragma_maps.get(violation.path, {}).get(violation.line)
        matched = pragma is not None and violation.rule in pragma.rules
        findings.append(
            Finding(
                violation=violation,
                suppressed=matched and pragma is not None and pragma.has_reason,
                pragma=pragma if matched else None,
            )
        )
    return files, findings


def lint_paths(paths: Sequence[str]) -> List[Violation]:
    """Project-lint every Python file under ``paths``.

    Runs the full two-phase analyzer — single-file rules, the
    whole-tree index, the cross-module state rules TWL008/TWL009, and
    the TWL010 pragma audit — and returns the unsuppressed violations.
    """
    _, findings = _project_findings(paths)
    return [f.violation for f in findings if not f.suppressed]


# ----------------------------------------------------------------------
# TWL003 — fingerprint field classification exhaustiveness
# ----------------------------------------------------------------------
def check_field_classification(
    cls: type,
    identity: FrozenSet[str],
    execution: FrozenSet[str],
    path: str,
) -> List[Violation]:
    """Violations for ``cls`` fields not split into identity/execution.

    Every dataclass field must appear in exactly one of the two sets,
    and neither set may name a field that no longer exists — so adding,
    renaming or removing a spec field forces a deliberate decision
    about cache identity (see ``docs/invariants.md``).
    """
    import dataclasses

    violations: List[Violation] = []
    line = 1

    def flag(message: str) -> None:
        violations.append(
            Violation(path=path, line=line, col=0, rule="TWL003", message=message)
        )

    actual = {field.name for field in dataclasses.fields(cls)}
    for name in sorted(actual - identity - execution):
        flag(
            f"{cls.__name__}.{name} is classified neither as fingerprint "
            "identity nor as an execution knob; add it to exactly one set"
        )
    for name in sorted((identity | execution) - actual):
        flag(
            f"classification names {cls.__name__}.{name} which is not a "
            "field of the dataclass; remove the stale entry"
        )
    for name in sorted(identity & execution):
        flag(
            f"{cls.__name__}.{name} is classified as both identity and "
            "execution knob; pick one"
        )
    return violations


def check_classifications() -> List[Violation]:
    """TWL003 over the package's fingerprinted spec dataclasses."""
    from ..exec import cells as cells_module
    from ..exec import hashing as hashing_module
    from ..experiments import setups as setups_module
    from ..serve import server as serve_module

    return (
        check_field_classification(
            cells_module.ExperimentCell,
            hashing_module.CELL_IDENTITY_FIELDS,
            hashing_module.CELL_EXECUTION_FIELDS,
            hashing_module.__file__,
        )
        + check_field_classification(
            setups_module.ExperimentSetup,
            setups_module.SETUP_IDENTITY_FIELDS,
            setups_module.SETUP_EXECUTION_FIELDS,
            setups_module.__file__,
        )
        + check_field_classification(
            serve_module.ServerConfig,
            serve_module.SERVER_IDENTITY_FIELDS,
            serve_module.SERVER_EXECUTION_FIELDS,
            serve_module.__file__,
        )
        + check_field_classification(
            serve_module.SubmitRequest,
            serve_module.REQUEST_IDENTITY_FIELDS,
            serve_module.REQUEST_EXECUTION_FIELDS,
            serve_module.__file__,
        )
    )


def default_lint_root() -> str:
    """The installed ``repro`` package directory (the default target)."""
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def run_lint_report(
    paths: Optional[Sequence[str]] = None, classify: bool = True
) -> LintReport:
    """Full lint pass with suppression detail: AST + state rules + TWL003."""
    files, findings = _project_findings(
        list(paths) if paths else [default_lint_root()]
    )
    if classify:
        findings.extend(
            Finding(violation=v, suppressed=False) for v in check_classifications()
        )
    return LintReport(findings=tuple(findings), files=tuple(files))


def run_lint(
    paths: Optional[Sequence[str]] = None, classify: bool = True
) -> List[Violation]:
    """Full lint pass: AST + state rules over ``paths`` plus TWL003."""
    return run_lint_report(paths, classify=classify).violations


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: ``python -m repro.devtools.lint [paths…]``."""
    parser = argparse.ArgumentParser(
        prog="twl-repro lint",
        description=(
            "Static determinism/purity/state checks for the TWL "
            "reproduction (rules TWL001-TWL010; see docs/invariants.md)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--no-classify",
        action="store_true",
        help="skip the TWL003 field-classification check",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="output_format",
        help=(
            "output format: 'text' prints path:line:col diagnostics, "
            "'json' emits the stable finding schema (suppressed findings "
            "and their pragmas included) for CI annotation tooling"
        ),
    )
    args = parser.parse_args(argv)
    report = run_lint_report(args.paths or None, classify=not args.no_classify)
    violations = report.violations
    if args.output_format == "json":
        print(json.dumps(report.to_json_dict(), indent=2, sort_keys=True))
    else:
        for violation in sorted(
            violations, key=lambda v: (v.path, v.line, v.col, v.rule)
        ):
            print(violation.format())
    files = len(report.files)
    if violations:
        print(
            f"twl-repro lint: {len(violations)} violation(s) in {files} file(s)",
            file=sys.stderr,
        )
        return 1
    print(f"twl-repro lint: {files} file(s) clean", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
