"""Runtime determinism sanitizer: prove TWL001 dynamically.

The static pass (:mod:`repro.devtools.lint`) asserts that no
result-producing code *textually* reaches the global ``random`` /
``numpy.random`` state.  This module proves it at runtime: when armed
(``REPRO_SANITIZE=1`` or ``twl-repro … --sanitize``), the module-level
entry points of ``random`` and ``numpy.random`` are monkeypatched with
guards that raise :class:`~repro.errors.DeterminismViolation` whenever
they are called **inside a protected region** — the engine step loop
(:meth:`repro.engine.core.SimulationEngine.drive`) and the cell runner
(:func:`repro.exec.cells.run_cell`).  Outside those regions the guards
pass straight through, so the sanctioned consumers keep working:
``repro.exec``'s retry backoff draws its jitter between cells (and from
a seeded :mod:`repro.rng` stream anyway), pytest plugins shuffle
freely, and user code is untouched.

The env-var activation survives ``ProcessPoolExecutor`` worker spawn:
``run_cell`` calls :func:`maybe_install_from_env` on entry, so
``REPRO_SANITIZE=1 twl-repro fig6 --jobs 4`` sanitizes every worker.

Overhead when disarmed is zero (nothing is patched); when armed it is
one integer bump per engine ``drive()`` call.
"""

from __future__ import annotations

import os
import random
import threading
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, Optional

import numpy as np

from ..errors import DeterminismViolation

#: Environment variable arming the sanitizer (``1`` / ``true`` / ``yes``).
SANITIZE_ENV = "REPRO_SANITIZE"

#: ``random`` module entry points that consult hidden global state.
_RANDOM_FUNCS = (
    "random",
    "uniform",
    "randint",
    "randrange",
    "choice",
    "choices",
    "sample",
    "shuffle",
    "getrandbits",
    "randbytes",
    "betavariate",
    "expovariate",
    "gammavariate",
    "gauss",
    "lognormvariate",
    "normalvariate",
    "paretovariate",
    "triangular",
    "vonmisesvariate",
    "weibullvariate",
    "seed",
    "setstate",
    "getstate",
)

#: ``numpy.random`` entry points backed by the legacy global RandomState.
_NUMPY_FUNCS = (
    "rand",
    "randn",
    "random",
    "random_sample",
    "ranf",
    "sample",
    "randint",
    "random_integers",
    "seed",
    "get_state",
    "set_state",
    "shuffle",
    "permutation",
    "choice",
    "bytes",
    "uniform",
    "normal",
    "standard_normal",
    "poisson",
    "binomial",
    "exponential",
)

_originals: Dict[str, Callable[..., Any]] = {}
_installed = False
_state = threading.local()


def _depth() -> int:
    return getattr(_state, "depth", 0)


def _label() -> str:
    return getattr(_state, "label", "protected region")


def sanitizer_installed() -> bool:
    """Whether the global-RNG guards are currently patched in."""
    return _installed


def in_protected_region() -> bool:
    """Whether the calling thread is inside engine/sim execution."""
    return _depth() > 0


def enter_protected(label: str) -> None:
    """Mark the start of a result-producing region (re-entrant)."""
    _state.depth = _depth() + 1
    _state.label = label


def exit_protected() -> None:
    """Mark the end of the innermost protected region."""
    _state.depth = max(0, _depth() - 1)


@contextmanager
def protected(label: str) -> Iterator[None]:
    """Context-manager form of :func:`enter_protected`."""
    enter_protected(label)
    try:
        yield
    finally:
        exit_protected()


def _guard(
    qualified: str, original: Callable[..., Any]
) -> Callable[..., Any]:
    def guarded(*args: Any, **kwargs: Any) -> Any:
        if in_protected_region():
            raise DeterminismViolation(
                f"{qualified}() called inside {_label()}: global RNG state "
                "is forbidden in result-producing code — derive a generator "
                "from repro.rng.streams instead (TWL001; see "
                "docs/invariants.md)"
            )
        return original(*args, **kwargs)

    guarded.__name__ = getattr(original, "__name__", qualified)
    guarded.__doc__ = getattr(original, "__doc__", None)
    return guarded


def _guard_default_rng(
    original: Callable[..., Any]
) -> Callable[..., Any]:
    def guarded(seed: Any = None, *args: Any, **kwargs: Any) -> Any:
        if seed is None and in_protected_region():
            raise DeterminismViolation(
                f"unseeded numpy.random.default_rng() inside {_label()}: "
                "it pulls OS entropy — derive a generator from "
                "repro.rng.streams instead (TWL001; see docs/invariants.md)"
            )
        return original(seed, *args, **kwargs)

    guarded.__name__ = "default_rng"
    return guarded


def install() -> None:
    """Patch the global-RNG entry points with guards (idempotent)."""
    global _installed
    if _installed:
        return
    for name in _RANDOM_FUNCS:
        original = getattr(random, name, None)
        if original is None:
            continue
        _originals[f"random.{name}"] = original
        setattr(random, name, _guard(f"random.{name}", original))
    for name in _NUMPY_FUNCS:
        original = getattr(np.random, name, None)
        if original is None:
            continue
        _originals[f"numpy.random.{name}"] = original
        setattr(np.random, name, _guard(f"numpy.random.{name}", original))
    _originals["numpy.random.default_rng"] = np.random.default_rng
    setattr(  # noqa: B010 — plain assignment trips type checkers here
        np.random, "default_rng", _guard_default_rng(np.random.default_rng)
    )
    _installed = True


def uninstall() -> None:
    """Restore every patched entry point (idempotent)."""
    global _installed
    if not _installed:
        return
    for qualified, original in _originals.items():
        module, _, name = qualified.rpartition(".")
        target = random if module == "random" else np.random
        setattr(target, name, original)
    _originals.clear()
    _installed = False


def env_requests_sanitizer(environ: Optional[Dict[str, str]] = None) -> bool:
    """Whether ``$REPRO_SANITIZE`` asks for the sanitizer."""
    value = (environ if environ is not None else os.environ).get(
        SANITIZE_ENV, ""
    )
    return value.strip().lower() in ("1", "true", "yes")


def maybe_install_from_env() -> bool:
    """Arm the sanitizer when ``$REPRO_SANITIZE`` requests it.

    Called on every :func:`repro.exec.cells.run_cell` entry so pool
    workers (fork *or* spawn) arm themselves from the inherited
    environment.  Returns whether the sanitizer is installed after the
    call.
    """
    if env_requests_sanitizer() and not _installed:
        install()
    return _installed
