"""Pair-table construction for the TWL pairing policies.

At format time the remapping table is the identity, so pairing logical
pages by the endurance of their (identical) physical frames realizes the
paper's strong-weak pairing directly.
"""

from __future__ import annotations

import numpy as np

from ..config import (
    PAIRING_ADJACENT,
    PAIRING_RANDOM,
    PAIRING_STRONG_WEAK,
)
from ..errors import ConfigError
from ..rng.streams import make_generator
from ..tables.pair_table import PairTable


def build_pair_table(
    endurance: np.ndarray,
    pairing: str,
    seed: int = 0,
) -> PairTable:
    """Build the SWPT for ``pairing`` over pages with ``endurance``.

    Policies:

    * ``"swp"`` — strong-weak pairing (§4.3): maximal endurance contrast
      within each pair;
    * ``"ap"`` — adjacent pairing (the naive "TWL_ap" of Figure 6);
    * ``"random"`` — uniformly random matching (used in ablations).
    """
    n_pages = int(np.asarray(endurance).size)
    if pairing == PAIRING_STRONG_WEAK:
        return PairTable.strong_weak(endurance)
    if pairing == PAIRING_ADJACENT:
        return PairTable.adjacent(n_pages)
    if pairing == PAIRING_RANDOM:
        return PairTable.random(n_pages, make_generator(seed, "pairing"))
    raise ConfigError(f"unknown pairing policy {pairing!r}")
