"""Toss-up Wear Leveling — the full engine (paper Figure 5).

Write flow per demand write to logical page LA:

1. The write counter table (WCT) counts the write; only when the counter
   reaches the toss-up interval does the TWL engine activate
   (interval-triggered toss-up, §4.3) — otherwise the write goes straight
   through the remapping table.
2. On activation: the SWPT yields LA's partner, the RT maps both to
   physical frames, the ET supplies their endurance, and the toss-up
   picks the frame with probability proportional to endurance.
3. The swap judge either writes directly or performs the two-write
   "swap-then-write" and exchanges the pair's RT entries.
4. Independently, every ``inter_pair_swap_interval`` demand writes the
   written page's frame is exchanged with the frame of a uniformly random
   logical page (inter-pair swap, §4.1), distributing writes *between*
   pairs; with ``maintain_physical_pairs`` the SWPT is conjugated so the
   physical strong-weak pairs stay intact.

TWL never predicts future write intensity — the property that makes it
immune to the inconsistent-write attack.
"""

from __future__ import annotations

import numpy as np

from ..config import TWLConfig
from ..errors import SimulationError
from ..pcm.array import PCMArray
from ..rng.streams import derive_seed
from ..rng.xorshift import XorShift32
from ..tables.endurance_table import EnduranceTable
from ..tables.pair_table import PairTable
from ..tables.remap import RemappingTable
from ..tables.write_counter import WriteCounterTable
from ..wearlevel.base import WearLeveler
from .pairing import build_pair_table
from .swap_judge import SwapJudge
from .tossup import TossUp


def _cumcount(values: np.ndarray) -> np.ndarray:
    """Occurrences of ``values[i]`` strictly before index ``i``.

    Stable-sort grouping trick: sort values (stably), rank inside each
    group, scatter the ranks back to the original order.
    """
    order = np.argsort(values, kind="stable")
    ordered = values[order]
    new_group = np.empty(values.size, dtype=bool)
    new_group[0] = True
    new_group[1:] = ordered[1:] != ordered[:-1]
    indices = np.arange(values.size)
    group_starts = indices[new_group]
    group_ids = np.cumsum(new_group) - 1
    ranks = indices - group_starts[group_ids]
    out = np.empty(values.size, dtype=np.int64)
    out[order] = ranks
    return out


class TossUpWearLeveling(WearLeveler):
    """The paper's Toss-up Wear Leveling engine."""

    name = "twl"

    def __init__(
        self,
        array: PCMArray,
        config: TWLConfig = TWLConfig(),
        seed: int = 0,
        pair_table: PairTable = None,
    ):
        super().__init__(array)
        n = array.n_pages
        self.config = config
        self.remap = RemappingTable(n)
        self.endurance_table = EnduranceTable(array.endurance)
        if pair_table is None:
            pair_table = build_pair_table(
                array.endurance, config.pairing, seed=derive_seed(seed, "twl-pairing")
            )
        elif len(pair_table) != n:
            raise ValueError(
                f"pair table covers {len(pair_table)} pages, array has {n}"
            )
        self.pair_table = pair_table
        self.write_counters = WriteCounterTable(
            n, bits=config.write_counter_bits, interval=config.toss_up_interval
        )
        self.toss_up = TossUp(rng_bits=config.rng_bits, seed=derive_seed(seed, "twl-rng"))
        self.swap_judge = SwapJudge()
        self._victim_rng = XorShift32(
            (derive_seed(seed, "twl-interpair") % 0xFFFF_FFFE) + 1
        )
        self._interpair_counter = 0
        self.toss_up_activations = 0
        self.inter_pair_swaps = 0

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def translate(self, logical: int) -> int:
        self.check_logical(logical)
        return self.remap.lookup(logical)

    def write(self, logical: int) -> int:
        self.check_logical(logical)
        writes = 0

        # Inter-pair swap: a global counter over demand writes.
        self._interpair_counter += 1
        if self._interpair_counter >= self.config.inter_pair_swap_interval:
            self._interpair_counter = 0
            writes += self._inter_pair_swap(logical)

        trigger = self.write_counters.record_write(logical)
        partner = self.pair_table.partner(logical)
        if trigger and partner != logical:
            writes += self._toss_up_write(logical, partner)
        else:
            self.array.write(self.remap.lookup(logical))
            writes += 1
        self._count_demand()
        return writes

    def write_batch(self, addresses) -> np.ndarray:
        """Batch path: plan every toss-up event, vectorize the rest.

        Most demand writes neither fire a toss-up (one in
        ``toss_up_interval`` writes to a page) nor an inter-pair swap
        (one in ``inter_pair_swap_interval`` demand writes).  The batch
        is cut into *windows* at inter-pair-swap boundaries; within a
        window the write counters move predictably — a page's counter
        after ``j`` writes is ``(start + j) % interval`` — so **all**
        toss-up trigger positions in the window follow from one modular
        comparison against the canonical counter array.  The
        straight-through stretches between events are served by one
        :meth:`PCMArray.apply_batch` plus one vectorized counter update
        each; only the event writes themselves (and the window-boundary
        write that fires the inter-pair swap) go through the exact
        scalar :meth:`write`.

        The modular prediction assumes every counter is below the
        interval, which :meth:`WriteCounterTable.record_write` maintains
        by construction; an injected fault can break it, so any window
        that starts with a corrupted counter is served scalar until the
        counter wraps back into range.
        """
        seq = np.asarray(addresses, dtype=np.int64)
        if self.array.failed:
            return np.zeros(0, dtype=np.int64)
        n = self.remap.n_pages
        if seq.size and ((seq < 0).any() or (seq >= n).any()):
            bad = int(seq[(seq < 0) | (seq >= n)][0])
            self.check_logical(bad)
        out = np.ones(seq.size, dtype=np.int64)
        array = self.array
        counters = self.write_counters.values_array()
        interval = self.write_counters.interval
        # Checked once per batch: every in-batch counter update
        # (record_write wrap, modular bulk_record, force_trigger_next's
        # interval-1) keeps counters below the interval, so only an
        # external poke — impossible mid-batch — can break this.
        counters_sane = int(counters.max()) < interval
        # Lower bound on the minimum remaining endurance, maintained
        # across windows so the whole-window fast path (which applies a
        # window's writes out of order) only runs when no page can fail
        # inside the window.  Each demand write costs at most two
        # physical writes, the boundary write at most four.
        headroom = -1
        position = 0
        while position < seq.size:
            # Writes before the next inter-pair swap fires (the firing
            # write itself is served by the scalar path below).
            quiet = (
                self.config.inter_pair_swap_interval - self._interpair_counter - 1
            )
            limit = min(seq.size - position, quiet)
            if limit > 0:
                window = seq[position : position + limit]
                window_cost = 2 * limit + 4
                if headroom <= window_cost:
                    headroom = int((array.endurance - array.writes).min())
                if counters_sane:
                    served = self._serve_window(
                        window, out, position, headroom > window_cost
                    )
                else:
                    served = self._serve_scalar(window, out, position)
                headroom -= window_cost
                position += served
                if array.failed:
                    return out[:position]
            # The window-boundary write fires the inter-pair swap.
            if position < seq.size:
                out[position] = self.write(int(seq[position]))
                position += 1
                if array.failed:
                    return out[:position]
        return out

    def _serve_window(
        self, window: np.ndarray, out: np.ndarray, base: int, no_failure: bool = False
    ) -> int:
        """Serve one inter-pair-quiet window; return writes served.

        Computes the full toss-up event schedule up front (valid for the
        whole window: an event only resets its own counter to zero,
        which the modular formula already accounts for).  When the
        caller guarantees no page can fail inside the window
        (``no_failure``), the toss-up decisions themselves vectorize and
        the whole window collapses to one bulk apply
        (:meth:`_serve_window_fast`); otherwise it alternates vectorized
        straight-through runs with exact scalar event writes.
        """
        counters = self.write_counters.values_array()
        partners = self.pair_table.partners_array()
        interval = self.write_counters.interval
        # record_write triggers the j-th write to a page (1-based) iff
        # (counter + j) % interval == 0; triggers on self-paired pages
        # do not activate the engine and stay in the vectorized runs.
        # Duplicate-free windows (scan-like streams) skip the
        # occurrence ranking: every write is its page's first.
        s = np.sort(window)
        if window.size < 2 or not (s[1:] == s[:-1]).any():
            triggered = (counters[window] + 1) % interval == 0
            distinct = True
        else:
            occurrences = _cumcount(window)
            triggered = (counters[window] + occurrences + 1) % interval == 0
            distinct = False
        partners_w = partners[window]
        events = np.flatnonzero(triggered & (partners_w != window))
        if no_failure and not self.config.use_remaining_endurance:
            logicals = window[events]
            mates = partners_w[events]
            # Toss-up outcomes feed back into later events of the SAME
            # pair (a swap exchanges the pair's frames); events over
            # distinct pairs are independent.
            keys = np.sort(
                np.minimum(logicals, mates) * self.remap.n_pages
                + np.maximum(logicals, mates)
            )
            if keys.size < 2 or not (keys[1:] == keys[:-1]).any():
                return self._serve_window_fast(
                    window, events, logicals, mates, distinct, out, base
                )
        array = self.array
        write = self.write
        pos = 0
        for event in events.tolist():  # twl: allow(TWL006) reason=one per planned event
            run = event - pos
            if run > 0:
                served = self._serve_quiet_run(window[pos : pos + run])
                pos += served
                if served < run:  # failure inside the run
                    return pos
            out[base + pos] = write(int(window[event]))
            pos += 1
            if array.failed:
                return pos
        run = window.size - pos
        if run > 0:
            pos += self._serve_quiet_run(window[pos : pos + run])
        return pos

    def _serve_window_fast(
        self,
        window: np.ndarray,
        events: np.ndarray,
        logicals: np.ndarray,
        mates: np.ndarray,
        distinct: bool,
        out: np.ndarray,
        base: int,
    ) -> int:
        """Serve a whole window in one bulk apply, events included.

        Valid only when (a) no page can fail inside the window — device
        write *order* is then unobservable, so the batch may be applied
        out of order — (b) the toss-up reads static endurance, and (c)
        every event's pair is distinct, so no decision feeds back into
        another event's frames.  Each toss-up consumes exactly one RNG
        word, so the whole decision column is one batched draw compared
        against the vectorized fixed-point thresholds; remap swaps are
        then replayed onto the pre-gathered translation as per-pair tail
        patches.
        """
        rng = self.toss_up.rng
        n_events = int(events.size)
        alphas = rng.take_words(n_events)
        mapping = self.remap.mapping_array()
        endurance = self.endurance_table.values_array()
        frames = mapping[logicals]
        pframes = mapping[mates]
        own = endurance[frames]
        other = endurance[pframes]
        thresholds = (own << self.toss_up.rng_bits) // (own + other)
        chose_own = alphas < thresholds
        physical = mapping[window]
        swaps = np.flatnonzero(~chose_own)
        for k in swaps.tolist():  # twl: allow(TWL006) reason=per-swap remap patch, few per window
            pos = int(events[k])
            logical = int(logicals[k])
            mate = int(mates[k])
            tail = window[pos + 1 :]
            patch = physical[pos + 1 :]
            patch[tail == logical] = pframes[k]
            patch[tail == mate] = frames[k]
            self.remap.swap_logical(logical, mate)
        if swaps.size:
            # A swap event writes the migration frame first, then the
            # chosen frame — splice the extra write in after the event
            # (hand-rolled np.insert: the positions are pre-sorted).
            extra = int(swaps.size)
            full_seq = np.empty(physical.size + extra, dtype=np.int64)
            spliced = np.zeros(full_seq.size, dtype=bool)
            spliced[events[swaps] + 1 + np.arange(extra)] = True
            full_seq[spliced] = pframes[swaps]
            full_seq[~spliced] = physical
        else:
            full_seq = physical
        served = self.array.apply_batch(full_seq)
        if served != full_seq.size:
            raise SimulationError(
                "whole-window fast path ran under a failure-possible state"
            )
        if distinct:
            self.write_counters.bulk_record_distinct(window)
        else:
            self.write_counters.bulk_record(window)
        self.toss_up_activations += n_events
        toss = self.toss_up
        toss.decisions += n_events
        toss.chose_a += int(chose_own.sum())
        n_swapped = int(swaps.size)
        judge = self.swap_judge
        judge.direct += n_events - n_swapped
        judge.swapped += n_swapped
        self.swap_events += n_swapped
        self.swap_writes += n_swapped
        if n_swapped:
            out[base + events[swaps]] = 2
        self._interpair_counter += int(window.size)
        self.demand_writes += int(window.size)
        return int(window.size)

    def _serve_quiet_run(self, chunk: np.ndarray) -> int:
        """Apply a straight-through run in one vector step."""
        physical = self.remap.mapping_array()[chunk]
        served = self.array.apply_batch(physical)
        recorded = chunk if served == chunk.size else chunk[:served]
        self.write_counters.bulk_record(recorded)
        self._interpair_counter += served
        self.demand_writes += served
        return served

    def _serve_scalar(self, window: np.ndarray, out: np.ndarray, base: int) -> int:
        """Exact per-write fallback (corrupted-counter windows)."""
        write = self.write
        array = self.array
        pos = 0
        for logical in window.tolist():  # twl: allow(TWL006) reason=corrupt-counter fallback
            out[base + pos] = write(logical)
            pos += 1
            if array.failed:
                break
        return pos

    def _pair_endurance(self, frame: int) -> int:
        """Endurance feeding the toss-up probability for ``frame``."""
        if self.config.use_remaining_endurance:
            remaining = self.endurance_table.lookup(frame) - self.array.page_writes(frame)
            return max(1, remaining)
        return self.endurance_table.lookup(frame)

    def _toss_up_write(self, logical: int, partner: int) -> int:
        """Activated TWL engine: toss-up then swap judge (Figure 4)."""
        self.toss_up_activations += 1
        frame = self.remap.lookup(logical)
        partner_frame = self.remap.lookup(partner)
        endurance = self._pair_endurance(frame)
        partner_endurance = self._pair_endurance(partner_frame)

        if self.toss_up.choose_a(endurance, partner_endurance):
            chosen, not_chosen = frame, partner_frame
        else:
            chosen, not_chosen = partner_frame, frame

        plan = self.swap_judge.judge(frame, chosen, not_chosen)
        for target in plan.writes:
            self.array.write(target)
        if plan.remap_swapped:
            self.remap.swap_logical(logical, partner)
            self._count_swap(plan.physical_writes - 1)
        return plan.physical_writes

    def _inter_pair_swap(self, logical: int) -> int:
        """Exchange the written page's frame with a random page's frame."""
        n = self.remap.n_pages
        victim = self._victim_rng.next_below(n)
        if victim == logical:
            victim = (victim + 1) % n
        frame_a = self.remap.lookup(logical)
        frame_b = self.remap.lookup(victim)
        # Two page writes: each frame receives the other's data.
        self.array.write(frame_a)
        self.array.write(frame_b)
        self.remap.swap_logical(logical, victim)
        if self.config.maintain_physical_pairs:
            self.pair_table.exchange_roles(logical, victim)
        if self.config.toss_on_relocation:
            # Both pages landed on arbitrary frames of their (possibly
            # new) pairs; re-run the toss-up on their next writes.
            self.write_counters.force_trigger_next(logical)
            self.write_counters.force_trigger_next(victim)
        self.inter_pair_swaps += 1
        self._count_swap(2)
        return 2

    # ------------------------------------------------------------------
    # Mid-run persistence
    # ------------------------------------------------------------------
    def _snapshot_state(self):
        # The endurance table is format-time ROM (derivable from the
        # array); everything else the engine mutates is captured here.
        return {
            "inter_pair_swaps": self.inter_pair_swaps,
            "interpair_counter": self._interpair_counter,
            "pair_table": self.pair_table.snapshot(),
            "remap": self.remap.snapshot(),
            "swap_judge": self.swap_judge.snapshot(),
            "toss_up": self.toss_up.snapshot(),
            "toss_up_activations": self.toss_up_activations,
            "victim_rng": self._victim_rng.snapshot(),
            "write_counters": self.write_counters.snapshot(),
        }

    def _restore_state(self, state):
        self.inter_pair_swaps = int(state["inter_pair_swaps"])
        self._interpair_counter = int(state["interpair_counter"])
        self.pair_table.restore(state["pair_table"])
        self.remap.restore(state["remap"])
        self.swap_judge.restore(state["swap_judge"])
        self.toss_up.restore(state["toss_up"])
        self.toss_up_activations = int(state["toss_up_activations"])
        self._victim_rng.restore(state["victim_rng"])
        self.write_counters.restore(state["write_counters"])

    # ------------------------------------------------------------------
    # Fault surface
    # ------------------------------------------------------------------
    def fault_surface(self):
        """TWL's injectable SRAM state: RT, WCT, SWPT and both RNGs.

        The ET is deliberately absent: the paper stores tested
        endurance in ROM-like fashion (written once at format time),
        and the invariant checker treats any ET change as a violation
        rather than a recoverable fault.  Repair strategies per
        structure:

        * RT — scrub from the inverse array; identity-mapping fail-safe
          when the redundancy is gone too.
        * WCT — reset the counter (safe: the interval trigger merely
          fires early/late once).
        * SWPT — re-derive from the claimant entry, degrading to a
          self-pair when the page was self-paired.
        * RNG registers — reload the architectural seed / reset the
          counter (a reseeded RNG is still a valid RNG).
        """
        from ..pcm.softerrors import BitTarget

        remap = self.remap
        counters = self.write_counters
        pair_table = self.pair_table
        victim_rng = self._victim_rng
        toss_rng = self.toss_up.rng
        victim_reload = victim_rng.state

        def repair_wct(page: int) -> bool:
            counters.reset(page)
            return True

        def repair_victim_rng(_entry: int) -> bool:
            victim_rng.state = victim_reload
            return True

        def repair_toss_rng(_entry: int) -> bool:
            toss_rng._counter = 0
            return True

        return {
            "rt": BitTarget(
                name="rt",
                n_entries=remap.n_pages,
                entry_bits=remap.entry_bits,
                read=remap.raw_entry,
                write=remap.poke_entry,
                repair=remap.repair_entry,
                fail_safe=self.fault_fail_safe,
            ),
            "wct": BitTarget(
                name="wct",
                n_entries=counters.n_pages,
                entry_bits=counters.entry_bits,
                read=counters.value,
                write=counters.poke,
                repair=repair_wct,
            ),
            "swpt": BitTarget(
                name="swpt",
                n_entries=pair_table.n_pages,
                entry_bits=pair_table.entry_bits,
                read=pair_table.raw_partner,
                write=pair_table.poke_partner,
                repair=pair_table.repair_entry,
            ),
            "rng": BitTarget(
                name="rng",
                n_entries=1,
                entry_bits=32,
                read=lambda _entry: victim_rng.state,
                write=lambda _entry, value: setattr(
                    victim_rng, "state", value
                ),
                repair=repair_victim_rng,
            ),
            "tossrng": BitTarget(
                name="tossrng",
                n_entries=1,
                entry_bits=self.toss_up.rng_bits,
                read=lambda _entry: toss_rng._counter,
                write=lambda _entry, value: setattr(
                    toss_rng, "_counter", value
                ),
                repair=repair_toss_rng,
            ),
        }

    def fault_fail_safe(self) -> None:
        """Graceful degradation: collapse the RT to identity mapping.

        Invoked when a detected RT corruption cannot be repaired from
        the inverse array.  Address translation stays correct (the
        identity map serves every access) at the cost of leveling, and
        ``fault_degraded`` records the downgrade for result tables.
        """
        self.remap.reset_identity()
        self.fault_degraded = True

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def toss_up_swap_ratio(self) -> float:
        """Toss-up swaps per demand write (the Figure-7a metric)."""
        if self.demand_writes == 0:
            return 0.0
        return self.swap_judge.swapped / self.demand_writes

    def stats(self):
        base = super().stats()
        base.update(
            {
                "toss_up_activations": float(self.toss_up_activations),
                "toss_up_swaps": float(self.swap_judge.swapped),
                "toss_up_swap_ratio": self.toss_up_swap_ratio(),
                "inter_pair_swaps": float(self.inter_pair_swaps),
            }
        )
        return base
