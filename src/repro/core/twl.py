"""Toss-up Wear Leveling — the full engine (paper Figure 5).

Write flow per demand write to logical page LA:

1. The write counter table (WCT) counts the write; only when the counter
   reaches the toss-up interval does the TWL engine activate
   (interval-triggered toss-up, §4.3) — otherwise the write goes straight
   through the remapping table.
2. On activation: the SWPT yields LA's partner, the RT maps both to
   physical frames, the ET supplies their endurance, and the toss-up
   picks the frame with probability proportional to endurance.
3. The swap judge either writes directly or performs the two-write
   "swap-then-write" and exchanges the pair's RT entries.
4. Independently, every ``inter_pair_swap_interval`` demand writes the
   written page's frame is exchanged with the frame of a uniformly random
   logical page (inter-pair swap, §4.1), distributing writes *between*
   pairs; with ``maintain_physical_pairs`` the SWPT is conjugated so the
   physical strong-weak pairs stay intact.

TWL never predicts future write intensity — the property that makes it
immune to the inconsistent-write attack.
"""

from __future__ import annotations

from ..config import TWLConfig
from ..pcm.array import PCMArray
from ..rng.streams import derive_seed
from ..rng.xorshift import XorShift32
from ..tables.endurance_table import EnduranceTable
from ..tables.pair_table import PairTable
from ..tables.remap import RemappingTable
from ..tables.write_counter import WriteCounterTable
from ..wearlevel.base import WearLeveler
from .pairing import build_pair_table
from .swap_judge import SwapJudge
from .tossup import TossUp


class TossUpWearLeveling(WearLeveler):
    """The paper's Toss-up Wear Leveling engine."""

    name = "twl"

    def __init__(
        self,
        array: PCMArray,
        config: TWLConfig = TWLConfig(),
        seed: int = 0,
        pair_table: PairTable = None,
    ):
        super().__init__(array)
        n = array.n_pages
        self.config = config
        self.remap = RemappingTable(n)
        self.endurance_table = EnduranceTable(array.endurance)
        if pair_table is None:
            pair_table = build_pair_table(
                array.endurance, config.pairing, seed=derive_seed(seed, "twl-pairing")
            )
        elif len(pair_table) != n:
            raise ValueError(
                f"pair table covers {len(pair_table)} pages, array has {n}"
            )
        self.pair_table = pair_table
        self.write_counters = WriteCounterTable(
            n, bits=config.write_counter_bits, interval=config.toss_up_interval
        )
        self.toss_up = TossUp(rng_bits=config.rng_bits, seed=derive_seed(seed, "twl-rng"))
        self.swap_judge = SwapJudge()
        self._victim_rng = XorShift32(
            (derive_seed(seed, "twl-interpair") % 0xFFFF_FFFE) + 1
        )
        self._interpair_counter = 0
        self.toss_up_activations = 0
        self.inter_pair_swaps = 0

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def translate(self, logical: int) -> int:
        self.check_logical(logical)
        return self.remap.lookup(logical)

    def write(self, logical: int) -> int:
        self.check_logical(logical)
        writes = 0

        # Inter-pair swap: a global counter over demand writes.
        self._interpair_counter += 1
        if self._interpair_counter >= self.config.inter_pair_swap_interval:
            self._interpair_counter = 0
            writes += self._inter_pair_swap(logical)

        trigger = self.write_counters.record_write(logical)
        partner = self.pair_table.partner(logical)
        if trigger and partner != logical:
            writes += self._toss_up_write(logical, partner)
        else:
            self.array.write(self.remap.lookup(logical))
            writes += 1
        self._count_demand()
        return writes

    def _pair_endurance(self, frame: int) -> int:
        """Endurance feeding the toss-up probability for ``frame``."""
        if self.config.use_remaining_endurance:
            remaining = self.endurance_table.lookup(frame) - self.array.page_writes(frame)
            return max(1, remaining)
        return self.endurance_table.lookup(frame)

    def _toss_up_write(self, logical: int, partner: int) -> int:
        """Activated TWL engine: toss-up then swap judge (Figure 4)."""
        self.toss_up_activations += 1
        frame = self.remap.lookup(logical)
        partner_frame = self.remap.lookup(partner)
        endurance = self._pair_endurance(frame)
        partner_endurance = self._pair_endurance(partner_frame)

        if self.toss_up.choose_a(endurance, partner_endurance):
            chosen, not_chosen = frame, partner_frame
        else:
            chosen, not_chosen = partner_frame, frame

        plan = self.swap_judge.judge(frame, chosen, not_chosen)
        for target in plan.writes:
            self.array.write(target)
        if plan.remap_swapped:
            self.remap.swap_logical(logical, partner)
            self._count_swap(plan.physical_writes - 1)
        return plan.physical_writes

    def _inter_pair_swap(self, logical: int) -> int:
        """Exchange the written page's frame with a random page's frame."""
        n = self.remap.n_pages
        victim = self._victim_rng.next_below(n)
        if victim == logical:
            victim = (victim + 1) % n
        frame_a = self.remap.lookup(logical)
        frame_b = self.remap.lookup(victim)
        # Two page writes: each frame receives the other's data.
        self.array.write(frame_a)
        self.array.write(frame_b)
        self.remap.swap_logical(logical, victim)
        if self.config.maintain_physical_pairs:
            self.pair_table.exchange_roles(logical, victim)
        if self.config.toss_on_relocation:
            # Both pages landed on arbitrary frames of their (possibly
            # new) pairs; re-run the toss-up on their next writes.
            self.write_counters.force_trigger_next(logical)
            self.write_counters.force_trigger_next(victim)
        self.inter_pair_swaps += 1
        self._count_swap(2)
        return 2

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def toss_up_swap_ratio(self) -> float:
        """Toss-up swaps per demand write (the Figure-7a metric)."""
        if self.demand_writes == 0:
            return 0.0
        return self.swap_judge.swapped / self.demand_writes

    def stats(self):
        base = super().stats()
        base.update(
            {
                "toss_up_activations": float(self.toss_up_activations),
                "toss_up_swaps": float(self.swap_judge.swapped),
                "toss_up_swap_ratio": self.toss_up_swap_ratio(),
                "inter_pair_swaps": float(self.inter_pair_swaps),
            }
        )
        return base
