"""Toss-up Wear Leveling — the full engine (paper Figure 5).

Write flow per demand write to logical page LA:

1. The write counter table (WCT) counts the write; only when the counter
   reaches the toss-up interval does the TWL engine activate
   (interval-triggered toss-up, §4.3) — otherwise the write goes straight
   through the remapping table.
2. On activation: the SWPT yields LA's partner, the RT maps both to
   physical frames, the ET supplies their endurance, and the toss-up
   picks the frame with probability proportional to endurance.
3. The swap judge either writes directly or performs the two-write
   "swap-then-write" and exchanges the pair's RT entries.
4. Independently, every ``inter_pair_swap_interval`` demand writes the
   written page's frame is exchanged with the frame of a uniformly random
   logical page (inter-pair swap, §4.1), distributing writes *between*
   pairs; with ``maintain_physical_pairs`` the SWPT is conjugated so the
   physical strong-weak pairs stay intact.

TWL never predicts future write intensity — the property that makes it
immune to the inconsistent-write attack.
"""

from __future__ import annotations

import numpy as np

from ..config import TWLConfig
from ..pcm.array import PCMArray
from ..rng.streams import derive_seed
from ..rng.xorshift import XorShift32
from ..tables.endurance_table import EnduranceTable
from ..tables.pair_table import PairTable
from ..tables.remap import RemappingTable
from ..tables.write_counter import WriteCounterTable
from ..wearlevel.base import WearLeveler
from .pairing import build_pair_table
from .swap_judge import SwapJudge
from .tossup import TossUp


def _cumcount(values: np.ndarray) -> np.ndarray:
    """Occurrences of ``values[i]`` strictly before index ``i``.

    Stable-sort grouping trick: sort values (stably), rank inside each
    group, scatter the ranks back to the original order.
    """
    order = np.argsort(values, kind="stable")
    ordered = values[order]
    new_group = np.empty(values.size, dtype=bool)
    new_group[0] = True
    new_group[1:] = ordered[1:] != ordered[:-1]
    indices = np.arange(values.size)
    group_starts = indices[new_group]
    group_ids = np.cumsum(new_group) - 1
    ranks = indices - group_starts[group_ids]
    out = np.empty(values.size, dtype=np.int64)
    out[order] = ranks
    return out


class TossUpWearLeveling(WearLeveler):
    """The paper's Toss-up Wear Leveling engine."""

    name = "twl"

    def __init__(
        self,
        array: PCMArray,
        config: TWLConfig = TWLConfig(),
        seed: int = 0,
        pair_table: PairTable = None,
    ):
        super().__init__(array)
        n = array.n_pages
        self.config = config
        self.remap = RemappingTable(n)
        self.endurance_table = EnduranceTable(array.endurance)
        if pair_table is None:
            pair_table = build_pair_table(
                array.endurance, config.pairing, seed=derive_seed(seed, "twl-pairing")
            )
        elif len(pair_table) != n:
            raise ValueError(
                f"pair table covers {len(pair_table)} pages, array has {n}"
            )
        self.pair_table = pair_table
        self.write_counters = WriteCounterTable(
            n, bits=config.write_counter_bits, interval=config.toss_up_interval
        )
        self.toss_up = TossUp(rng_bits=config.rng_bits, seed=derive_seed(seed, "twl-rng"))
        self.swap_judge = SwapJudge()
        self._victim_rng = XorShift32(
            (derive_seed(seed, "twl-interpair") % 0xFFFF_FFFE) + 1
        )
        self._interpair_counter = 0
        self.toss_up_activations = 0
        self.inter_pair_swaps = 0

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def translate(self, logical: int) -> int:
        self.check_logical(logical)
        return self.remap.lookup(logical)

    def write(self, logical: int) -> int:
        self.check_logical(logical)
        writes = 0

        # Inter-pair swap: a global counter over demand writes.
        self._interpair_counter += 1
        if self._interpair_counter >= self.config.inter_pair_swap_interval:
            self._interpair_counter = 0
            writes += self._inter_pair_swap(logical)

        trigger = self.write_counters.record_write(logical)
        partner = self.pair_table.partner(logical)
        if trigger and partner != logical:
            writes += self._toss_up_write(logical, partner)
        else:
            self.array.write(self.remap.lookup(logical))
            writes += 1
        self._count_demand()
        return writes

    #: Quiet runs shorter than this are served by the scalar path: at
    #: small run lengths the per-call cost of the vector machinery
    #: (bincounts, bounds checks, mirror folds) exceeds the per-write
    #: cost of the plain Python loop.
    _MIN_VECTOR_RUN = 64
    #: After two consecutive short runs, serve this many writes scalar
    #: without re-planning (planning itself costs several numpy calls,
    #: a bad trade when events are known to be dense), then re-probe.
    _SCALAR_BURST = 1024

    def write_batch(self, addresses) -> np.ndarray:
        """Batch path: vectorize the non-toss-up straight-through writes.

        Most demand writes neither fire a toss-up (one in
        ``toss_up_interval`` writes to a page) nor an inter-pair swap
        (one in ``inter_pair_swap_interval`` demand writes).  Between
        those events the remapping table is static and the write
        counters move predictably, so the run of straight-through writes
        up to the next event is computed from the counter state and
        applied in one vector step; each event write is then served by
        the exact scalar :meth:`write`.  Runs shorter than
        :data:`_MIN_VECTOR_RUN` (dense-trigger configurations) fall back
        to the scalar path wholesale, so batched TWL never loses much to
        the per-write path even when events are frequent.
        """
        seq = np.asarray(addresses, dtype=np.int64)
        if self.array.failed:
            return np.zeros(0, dtype=np.int64)
        n = self.remap.n_pages
        if seq.size and ((seq < 0).any() or (seq >= n).any()):
            bad = int(seq[(seq < 0) | (seq >= n)][0])
            self.check_logical(bad)
        out = np.ones(seq.size, dtype=np.int64)
        array = self.array
        interval = self.write_counters.interval
        position = 0
        short_runs = 0
        while position < seq.size:
            if short_runs >= 2:
                # Events are dense here: burst scalar, then re-probe.
                # Stage through plain Python lists — element-wise numpy
                # indexing would double the cost of the scalar loop.
                stop = min(position + self._SCALAR_BURST, seq.size)
                write = self.write
                costs = []
                for logical in seq[position:stop].tolist():
                    costs.append(write(logical))
                    if array.failed:
                        break
                out[position : position + len(costs)] = costs
                position += len(costs)
                if array.failed:
                    return out[:position]
                short_runs = 0
                continue
            # Writes before the next inter-pair swap fires (the firing
            # write itself is an event, served by the scalar path).
            quiet = self.config.inter_pair_swap_interval - self._interpair_counter - 1
            run_limit = min(seq.size - position, quiet)
            run = 0
            if run_limit > 0:
                window = seq[position : position + run_limit]
                occurrences = _cumcount(window)
                # record_write triggers when counter + occurrences + 1
                # reaches the interval.
                thresholds = interval - 1 - self.write_counters.values_array()[window]
                triggers = np.flatnonzero(occurrences >= thresholds)
                run = int(triggers[0]) if triggers.size else run_limit
            if run >= self._MIN_VECTOR_RUN:
                short_runs = 0
                chunk = window[:run]
                physical = self.remap.mapping_array()[chunk]
                served = array.apply_batch(physical)
                self.write_counters.bulk_record_quiet(
                    np.bincount(chunk[:served], minlength=n)
                )
                self._interpair_counter += served
                self.demand_writes += served
                position += served
                if array.failed:
                    return out[:position]
                if position < seq.size:
                    out[position] = self.write(int(seq[position]))
                    position += 1
                    if array.failed:
                        return out[:position]
            else:
                # Short quiet run: serve it and its event write scalar.
                short_runs += 1
                stop = min(position + run + 1, seq.size)
                write = self.write
                costs = []
                for logical in seq[position:stop].tolist():
                    costs.append(write(logical))
                    if array.failed:
                        break
                out[position : position + len(costs)] = costs
                position += len(costs)
                if array.failed:
                    return out[:position]
        return out

    def _pair_endurance(self, frame: int) -> int:
        """Endurance feeding the toss-up probability for ``frame``."""
        if self.config.use_remaining_endurance:
            remaining = self.endurance_table.lookup(frame) - self.array.page_writes(frame)
            return max(1, remaining)
        return self.endurance_table.lookup(frame)

    def _toss_up_write(self, logical: int, partner: int) -> int:
        """Activated TWL engine: toss-up then swap judge (Figure 4)."""
        self.toss_up_activations += 1
        frame = self.remap.lookup(logical)
        partner_frame = self.remap.lookup(partner)
        endurance = self._pair_endurance(frame)
        partner_endurance = self._pair_endurance(partner_frame)

        if self.toss_up.choose_a(endurance, partner_endurance):
            chosen, not_chosen = frame, partner_frame
        else:
            chosen, not_chosen = partner_frame, frame

        plan = self.swap_judge.judge(frame, chosen, not_chosen)
        for target in plan.writes:
            self.array.write(target)
        if plan.remap_swapped:
            self.remap.swap_logical(logical, partner)
            self._count_swap(plan.physical_writes - 1)
        return plan.physical_writes

    def _inter_pair_swap(self, logical: int) -> int:
        """Exchange the written page's frame with a random page's frame."""
        n = self.remap.n_pages
        victim = self._victim_rng.next_below(n)
        if victim == logical:
            victim = (victim + 1) % n
        frame_a = self.remap.lookup(logical)
        frame_b = self.remap.lookup(victim)
        # Two page writes: each frame receives the other's data.
        self.array.write(frame_a)
        self.array.write(frame_b)
        self.remap.swap_logical(logical, victim)
        if self.config.maintain_physical_pairs:
            self.pair_table.exchange_roles(logical, victim)
        if self.config.toss_on_relocation:
            # Both pages landed on arbitrary frames of their (possibly
            # new) pairs; re-run the toss-up on their next writes.
            self.write_counters.force_trigger_next(logical)
            self.write_counters.force_trigger_next(victim)
        self.inter_pair_swaps += 1
        self._count_swap(2)
        return 2

    # ------------------------------------------------------------------
    # Fault surface
    # ------------------------------------------------------------------
    def fault_surface(self):
        """TWL's injectable SRAM state: RT, WCT, SWPT and both RNGs.

        The ET is deliberately absent: the paper stores tested
        endurance in ROM-like fashion (written once at format time),
        and the invariant checker treats any ET change as a violation
        rather than a recoverable fault.  Repair strategies per
        structure:

        * RT — scrub from the inverse array; identity-mapping fail-safe
          when the redundancy is gone too.
        * WCT — reset the counter (safe: the interval trigger merely
          fires early/late once).
        * SWPT — re-derive from the claimant entry, degrading to a
          self-pair when the page was self-paired.
        * RNG registers — reload the architectural seed / reset the
          counter (a reseeded RNG is still a valid RNG).
        """
        from ..pcm.softerrors import BitTarget

        remap = self.remap
        counters = self.write_counters
        pair_table = self.pair_table
        victim_rng = self._victim_rng
        toss_rng = self.toss_up.rng
        victim_reload = victim_rng.state

        def repair_wct(page: int) -> bool:
            counters.reset(page)
            return True

        def repair_victim_rng(_entry: int) -> bool:
            victim_rng.state = victim_reload
            return True

        def repair_toss_rng(_entry: int) -> bool:
            toss_rng._counter = 0
            return True

        return {
            "rt": BitTarget(
                name="rt",
                n_entries=remap.n_pages,
                entry_bits=remap.entry_bits,
                read=remap.raw_entry,
                write=remap.poke_entry,
                repair=remap.repair_entry,
                fail_safe=self.fault_fail_safe,
            ),
            "wct": BitTarget(
                name="wct",
                n_entries=counters.n_pages,
                entry_bits=counters.entry_bits,
                read=counters.value,
                write=counters.poke,
                repair=repair_wct,
            ),
            "swpt": BitTarget(
                name="swpt",
                n_entries=pair_table.n_pages,
                entry_bits=pair_table.entry_bits,
                read=pair_table.raw_partner,
                write=pair_table.poke_partner,
                repair=pair_table.repair_entry,
            ),
            "rng": BitTarget(
                name="rng",
                n_entries=1,
                entry_bits=32,
                read=lambda _entry: victim_rng.state,
                write=lambda _entry, value: setattr(
                    victim_rng, "state", value
                ),
                repair=repair_victim_rng,
            ),
            "tossrng": BitTarget(
                name="tossrng",
                n_entries=1,
                entry_bits=self.toss_up.rng_bits,
                read=lambda _entry: toss_rng._counter,
                write=lambda _entry, value: setattr(
                    toss_rng, "_counter", value
                ),
                repair=repair_toss_rng,
            ),
        }

    def fault_fail_safe(self) -> None:
        """Graceful degradation: collapse the RT to identity mapping.

        Invoked when a detected RT corruption cannot be repaired from
        the inverse array.  Address translation stays correct (the
        identity map serves every access) at the cost of leveling, and
        ``fault_degraded`` records the downgrade for result tables.
        """
        self.remap.reset_identity()
        self.fault_degraded = True

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def toss_up_swap_ratio(self) -> float:
        """Toss-up swaps per demand write (the Figure-7a metric)."""
        if self.demand_writes == 0:
            return 0.0
        return self.swap_judge.swapped / self.demand_writes

    def stats(self):
        base = super().stats()
        base.update(
            {
                "toss_up_activations": float(self.toss_up_activations),
                "toss_up_swaps": float(self.swap_judge.swapped),
                "toss_up_swap_ratio": self.toss_up_swap_ratio(),
                "inter_pair_swaps": float(self.inter_pair_swaps),
            }
        )
        return base
