"""The "toss-up" component (paper Figure 4(b)).

Given the endurance values of the two pages of a pair, the hardware
compares a fresh random number against ``E_A / (E_A + E_B)`` to pick the
page that will physically take the write.  The comparison happens in
fixed point: the ratio is scaled to the RNG's word width, so an 8-bit RNG
resolves the probability to 1/256 — the same precision a real divider +
comparator datapath would deliver.
"""

from __future__ import annotations

from ..errors import ConfigError
from ..rng.feistel import FeistelRNG


def toss_up_threshold(endurance_a: int, endurance_b: int, rng_bits: int = 8) -> int:
    """Fixed-point threshold ``round_down(2**bits * E_A / (E_A + E_B))``.

    A random word strictly below the threshold selects page A, so
    ``P(choose A) = threshold / 2**bits``.
    """
    if endurance_a <= 0 or endurance_b <= 0:
        raise ConfigError(
            f"endurance must be positive, got ({endurance_a}, {endurance_b})"
        )
    if not 1 <= rng_bits <= 32:
        raise ConfigError(f"rng_bits must be in [1, 32], got {rng_bits}")
    return (endurance_a << rng_bits) // (endurance_a + endurance_b)


class TossUp:
    """The toss-up datapath: RNG plus threshold comparator."""

    def __init__(self, rng_bits: int = 8, seed: int = 0):
        self.rng_bits = rng_bits
        self.rng = FeistelRNG(bits=rng_bits, seed=seed)
        self.decisions = 0
        self.chose_a = 0

    def snapshot(self) -> dict:
        """RNG registers plus decision counters (mid-run persistence)."""
        return {
            "chose_a": self.chose_a,
            "decisions": self.decisions,
            "rng": self.rng.snapshot(),
        }

    def restore(self, state: dict) -> None:
        """Restore a state captured by :meth:`snapshot`."""
        self.chose_a = int(state["chose_a"])
        self.decisions = int(state["decisions"])
        self.rng.restore(state["rng"])

    def choose_a(self, endurance_a: int, endurance_b: int) -> bool:
        """True when the toss-up selects page A for the write."""
        threshold = toss_up_threshold(endurance_a, endurance_b, self.rng_bits)
        alpha = self.rng.next_word()
        self.decisions += 1
        result = alpha < threshold
        if result:
            self.chose_a += 1
        return result

    def observed_a_fraction(self) -> float:
        """Empirical fraction of decisions that chose A."""
        if self.decisions == 0:
            return 0.0
        return self.chose_a / self.decisions
