"""The "swap judge" component (paper Figure 4(c)).

After the toss-up selects ``Addr_choose``, the swap judge compares it with
the requested ``Addr_write``:

* equal — write directly (1 PCM page write);
* different — "swap-then-write" in its optimized two-write form: the data
  resident at ``Addr_choose`` migrates to ``Addr_not_choose`` and the
  incoming data is written to ``Addr_choose`` (the naive form would take
  three writes; §4.1 reduces it to two).

The judge is a pure function from addresses to a :class:`WritePlan`; the
engine executes the plan against the array and the remapping table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

PLAN_DIRECT = "direct"
PLAN_SWAP_THEN_WRITE = "swap_then_write"


@dataclass(frozen=True)
class WritePlan:
    """Physical writes to perform for one toss-up outcome.

    ``writes`` lists the physical frames to program, in order.  For a
    swap-then-write the first entry is the migration target (receiving
    the partner's old data) and the second is the chosen frame (receiving
    the incoming data).
    """

    kind: str
    writes: Tuple[int, ...]
    remap_swapped: bool

    @property
    def physical_writes(self) -> int:
        """Number of PCM page writes the plan costs."""
        return len(self.writes)


class SwapJudge:
    """Builds the write plan for a toss-up decision."""

    def __init__(self):
        self.direct = 0
        self.swapped = 0

    def snapshot(self) -> dict:
        """Decision counters (mid-run persistence)."""
        return {"direct": self.direct, "swapped": self.swapped}

    def restore(self, state: dict) -> None:
        """Restore a state captured by :meth:`snapshot`."""
        self.direct = int(state["direct"])
        self.swapped = int(state["swapped"])

    def judge(self, addr_write: int, addr_choose: int, addr_not_choose: int) -> WritePlan:
        """Plan the write given the toss-up's chosen frame.

        ``addr_write`` is the frame currently backing the written logical
        page; ``addr_choose``/``addr_not_choose`` are the pair's frames as
        selected by the toss-up.
        """
        if addr_write == addr_choose:
            self.direct += 1
            return WritePlan(PLAN_DIRECT, (addr_choose,), remap_swapped=False)
        self.swapped += 1
        return WritePlan(
            PLAN_SWAP_THEN_WRITE,
            (addr_not_choose, addr_choose),
            remap_swapped=True,
        )

    def swap_fraction(self) -> float:
        """Fraction of judged writes that required a swap."""
        total = self.direct + self.swapped
        if total == 0:
            return 0.0
        return self.swapped / total
