"""Toss-up Wear Leveling — the paper's contribution (Section 4).

* :mod:`repro.core.tossup` — the "toss-up" decision of Figure 4(b);
* :mod:`repro.core.swap_judge` — the "swap judge" of Figure 4(c);
* :mod:`repro.core.pairing` — pair-table construction per policy;
* :mod:`repro.core.twl` — the full engine wired per Figure 5.
"""

from .tossup import TossUp, toss_up_threshold
from .swap_judge import SwapJudge, WritePlan, PLAN_DIRECT, PLAN_SWAP_THEN_WRITE
from .pairing import build_pair_table
from .twl import TossUpWearLeveling

__all__ = [
    "TossUp",
    "toss_up_threshold",
    "SwapJudge",
    "WritePlan",
    "PLAN_DIRECT",
    "PLAN_SWAP_THEN_WRITE",
    "build_pair_table",
    "TossUpWearLeveling",
]
