"""Trace-driven PCM lifetime simulation.

* :mod:`repro.sim.drivers` — workload drivers that push trace or attack
  writes through a scheme;
* :mod:`repro.sim.lifetime` — exact run-to-failure and the
  :class:`LifetimeResult` record;
* :mod:`repro.sim.fastforward` — steady-state wear-rate extrapolation for
  long lifetimes (the paper loops traces "until a PCM page wears out";
  fast-forward makes that tractable at high endurance);
* :mod:`repro.sim.runner` — one-call experiment helpers;
* :mod:`repro.sim.metrics` — scheme overhead measurement for the timing
  model.
"""

from .drivers import WorkloadDriver, TraceDriver, AttackDriver, StreamDriver
from .lifetime import LifetimeResult, run_to_failure
from .fastforward import FastForwardConfig, fast_forward_to_failure
from .runner import (
    build_array,
    measure_attack_lifetime,
    measure_stream_lifetime,
    measure_trace_lifetime,
    DEFAULT_SCALED,
)
from .metrics import measure_scheme_overheads, SchemeOverheads
from .replicates import (
    ReplicatedLifetime,
    replicate_attack_lifetime,
    replicate_trace_lifetime,
)
from .cache import ResultCache, cache_key

__all__ = [
    "WorkloadDriver",
    "TraceDriver",
    "AttackDriver",
    "StreamDriver",
    "LifetimeResult",
    "run_to_failure",
    "FastForwardConfig",
    "fast_forward_to_failure",
    "build_array",
    "measure_attack_lifetime",
    "measure_stream_lifetime",
    "measure_trace_lifetime",
    "DEFAULT_SCALED",
    "measure_scheme_overheads",
    "SchemeOverheads",
    "ReplicatedLifetime",
    "replicate_attack_lifetime",
    "replicate_trace_lifetime",
    "ResultCache",
    "cache_key",
]
