"""Lifetime results and exact run-to-failure simulation.

The paper's lifetime metric is the execution time until the first page
wears out, at the workload's sustained write bandwidth.  The
scale-invariant form of that metric is the **lifetime fraction**::

    demand_writes_at_failure / (n_pages * endurance_mean)

— demand writes because the workload's offered bandwidth governs wall
time (wear-leveling swap writes burn endurance but are absorbed by
device-internal bandwidth).  A perfect PV-aware leveler approaches 1.0;
Figure 8 plots exactly this quantity.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from ..analysis.calibration import PAPER_IDEAL_CALIBRATION, ideal_lifetime_seconds
from ..config import PCMConfig, PAPER_PCM, SoftErrorConfig
from ..engine import (
    EngineObserver,
    InvariantCheckObserver,
    SimulationEngine,
    SnapshotPlan,
    read_snapshot,
)
from ..errors import SnapshotError
from ..pcm.faults import FirstFailure
from ..pcm.softerrors import SoftErrorInjector
from ..units import SECONDS_PER_YEAR, mbps_to_bytes_per_second
from ..wearlevel.base import WearLeveler
from .drivers import WorkloadDriver

#: Default exact-simulation safety cap (writes), far above any scaled run.
DEFAULT_MAX_DEMAND = 2_000_000_000


@dataclass(frozen=True)
class LifetimeResult:
    """Outcome of a lifetime simulation run."""

    scheme: str
    workload: str
    n_pages: int
    endurance_mean: float
    demand_writes: int
    device_writes: int
    failed: bool
    failure: Optional[FirstFailure]
    estimation: str = "exact"
    #: Soft-error outcome counters (injected/corrected/repaired/...)
    #: when the run was faulted; None for clean runs.
    soft_errors: Optional[Dict[str, int]] = None

    @property
    def lifetime_fraction(self) -> float:
        """Demand writes served per unit of ideal endurance capacity."""
        return self.demand_writes / (self.n_pages * self.endurance_mean)

    @property
    def overhead_ratio(self) -> float:
        """Extra device writes per demand write (wear amplification)."""
        if self.demand_writes == 0:
            return 0.0
        return self.device_writes / self.demand_writes - 1.0

    def years(
        self,
        bandwidth_mbps: float,
        pcm: PCMConfig = PAPER_PCM,
        calibration: float = PAPER_IDEAL_CALIBRATION,
    ) -> float:
        """Full-scale lifetime in years at a Table-2 style bandwidth."""
        ideal = ideal_lifetime_seconds(
            mbps_to_bytes_per_second(bandwidth_mbps), pcm=pcm, calibration=calibration
        )
        return self.lifetime_fraction * ideal / SECONDS_PER_YEAR

    def years_at_bytes_per_second(
        self,
        bandwidth_bytes: float,
        pcm: PCMConfig = PAPER_PCM,
        calibration: float = PAPER_IDEAL_CALIBRATION,
    ) -> float:
        """Full-scale lifetime in years at a bandwidth in bytes/second."""
        ideal = ideal_lifetime_seconds(bandwidth_bytes, pcm=pcm, calibration=calibration)
        return self.lifetime_fraction * ideal / SECONDS_PER_YEAR


def run_to_failure(
    scheme: WearLeveler,
    driver: WorkloadDriver,
    max_demand: int = DEFAULT_MAX_DEMAND,
    require_failure: bool = True,
    batch_size: int = 1,
    observers: Iterable[EngineObserver] = (),
    soft_errors: Optional[SoftErrorConfig] = None,
    check_invariants: bool = False,
    snapshots: Optional[SnapshotPlan] = None,
) -> LifetimeResult:
    """Exact simulation: drive demand writes until the first page failure.

    A thin configuration of :class:`repro.engine.SimulationEngine`:
    ``batch_size`` selects the batched write protocol (bit-identical to
    the default per-write path) and ``observers`` attach per-batch
    hooks.  ``soft_errors`` injects controller soft errors through the
    engine step loop (at rate 0, or over a scheme with no fault
    surface, no injector is built and the run is untouched);
    ``check_invariants`` attaches a critical
    :class:`~repro.engine.InvariantCheckObserver` so any resulting
    state corruption raises :class:`~repro.errors.InvariantViolation`
    instead of silently skewing the result.  Raises
    :class:`~repro.errors.SimulationError` if the cap is reached
    without a failure and ``require_failure`` is set — a sign the scale
    was chosen too large for exact simulation (use fast-forward
    instead).

    ``snapshots`` arms mid-run checkpointing (sub-cell recovery): the
    engine emits crash-consistent snapshots at the plan's cadence, and
    when the plan allows resume and its path holds a snapshot, the run
    restores it and continues from the recorded demand index instead of
    replaying from zero.  A resumed run is bit-identical to the
    uninterrupted run (``tests/test_snapshot_identity.py``).  Restore
    ordering matters: the injector is built against the *fresh* scheme
    (its reload-repair hooks capture pristine register values, exactly
    as in the uninterrupted run) before any state is restored.
    """
    injector = None
    if soft_errors is not None and soft_errors.rate > 0.0:
        injector = SoftErrorInjector(scheme, soft_errors)
        if not injector.active:
            injector = None
    attached = list(observers)
    if check_invariants:
        attached.append(InvariantCheckObserver())
    engine = SimulationEngine(
        scheme,
        driver,
        batch_size=batch_size,
        observers=attached,
        soft_errors=injector,
        snapshots=snapshots,
    )
    demand_before = scheme.demand_writes
    if snapshots is not None and snapshots.resume and os.path.exists(snapshots.path):
        try:
            _meta, saved = read_snapshot(snapshots.path)
        except SnapshotError:
            if snapshots.strict:
                raise
            saved = None
        if saved is not None:
            engine.restore_state(saved)
    remaining = max(0, max_demand - engine.demand_served)
    engine.run(remaining, require_failure=require_failure)
    failed = scheme.array.failed
    failure = scheme.array.first_failure
    if failed and failure is not None:
        # Clip device writes to the failure instant (the driver may have
        # completed the request that caused the failure).
        device_writes = failure.device_writes
    else:
        device_writes = scheme.array.total_writes
    return LifetimeResult(
        scheme=scheme.name,
        workload=driver.workload_name,
        n_pages=scheme.array.n_pages,
        endurance_mean=float(scheme.array.endurance.mean()),
        demand_writes=scheme.demand_writes - demand_before,
        device_writes=device_writes,
        failed=failed,
        failure=failure,
        estimation="exact",
        soft_errors=injector.summary() if injector is not None else None,
    )
