"""Persistent cache for lifetime-experiment results.

A full default-scale campaign (every figure, every ablation) costs tens
of minutes of simulation; since every run is deterministic given its
configuration, results can be cached on disk and reused.  The cache key
is a stable digest of everything that determines the outcome: scheme,
workload, scaled-array parameters, seed and scheme/attack overrides.

Usage::

    cache = ResultCache("results.json")
    result = cache.get_or_run(key_fields, lambda: measure_attack_lifetime(...))

The cache stores :class:`repro.sim.lifetime.LifetimeResult` fields (the
failure record is reduced to its three integers); `to_result` rebuilds a
full object.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Callable, Dict, Optional

from ..errors import SimulationError
from ..pcm.faults import FirstFailure
from .lifetime import LifetimeResult

_FORMAT_VERSION = 1


def cache_key(**fields) -> str:
    """Stable digest of the fields that determine an experiment result.

    Values are serialized through ``repr`` after JSON-normalizing the
    basics, so dataclass configs participate via their field values.
    """
    canonical = json.dumps(
        {name: repr(value) for name, value in sorted(fields.items())},
        sort_keys=True,
    )
    return hashlib.blake2b(canonical.encode(), digest_size=16).hexdigest()


def serialize_result(result: LifetimeResult) -> Dict:
    """JSON-ready record for a :class:`LifetimeResult` (public alias)."""
    return _serialize(result)


def deserialize_result(record: Dict) -> LifetimeResult:
    """Rebuild a :class:`LifetimeResult` from its JSON record."""
    return _deserialize(record)


def _serialize(result: LifetimeResult) -> Dict:
    record = {
        "scheme": result.scheme,
        "workload": result.workload,
        "n_pages": result.n_pages,
        "endurance_mean": result.endurance_mean,
        "demand_writes": result.demand_writes,
        "device_writes": result.device_writes,
        "failed": result.failed,
        "estimation": result.estimation,
    }
    if result.failure is not None:
        record["failure"] = {
            "physical_page": result.failure.physical_page,
            "device_writes": result.failure.device_writes,
            "page_endurance": result.failure.page_endurance,
        }
    if result.soft_errors is not None:
        record["soft_errors"] = {
            key: result.soft_errors[key] for key in sorted(result.soft_errors)
        }
    return record


def _deserialize(record: Dict) -> LifetimeResult:
    failure = None
    if "failure" in record:
        failure = FirstFailure(
            physical_page=record["failure"]["physical_page"],
            device_writes=record["failure"]["device_writes"],
            page_endurance=record["failure"]["page_endurance"],
        )
    return LifetimeResult(
        scheme=record["scheme"],
        workload=record["workload"],
        n_pages=record["n_pages"],
        endurance_mean=record["endurance_mean"],
        demand_writes=record["demand_writes"],
        device_writes=record["device_writes"],
        failed=record["failed"],
        failure=failure,
        estimation=record.get("estimation", "exact"),
        soft_errors=record.get("soft_errors"),
    )


class ResultCache:
    """JSON-file-backed cache of lifetime results."""

    def __init__(self, path: str):
        self.path = path
        self._entries: Dict[str, Dict] = {}
        self.hits = 0
        self.misses = 0
        if os.path.exists(path):
            with open(path) as handle:
                try:
                    data = json.load(handle)
                except json.JSONDecodeError as error:
                    raise SimulationError(
                        f"corrupt result cache {path}: {error}"
                    ) from None
            if data.get("version") != _FORMAT_VERSION:
                raise SimulationError(
                    f"result cache {path} has unsupported version "
                    f"{data.get('version')!r}"
                )
            self._entries = data.get("entries", {})

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Optional[LifetimeResult]:
        """Cached result for ``key``, or None."""
        record = self._entries.get(key)
        if record is None:
            return None
        return _deserialize(record)

    def put(self, key: str, result: LifetimeResult) -> None:
        """Store a result (written to disk on :meth:`save`)."""
        self._entries[key] = _serialize(result)

    def get_or_run(
        self,
        key: str,
        run: Callable[[], LifetimeResult],
        autosave: bool = True,
    ) -> LifetimeResult:
        """Return the cached result or compute, store and return it."""
        cached = self.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        result = run()
        self.put(key, result)
        if autosave:
            self.save()
        return result

    def save(self) -> None:
        """Write the cache to disk atomically."""
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        temp_path = self.path + ".tmp"
        with open(temp_path, "w") as handle:
            json.dump(
                {"version": _FORMAT_VERSION, "entries": self._entries},
                handle,
                sort_keys=True,
            )
        os.replace(temp_path, self.path)

    def clear(self) -> None:
        """Drop all entries (in memory; call save() to persist)."""
        self._entries = {}
