"""Multi-seed replication of lifetime experiments.

The paper reports single runs; a reproduction should quantify run-to-run
variance (endurance sampling, trace generation and the schemes' RNGs all
move the result).  :func:`replicate_attack_lifetime` and
:func:`replicate_trace_lifetime` rerun an experiment across derived
seeds — every stochastic component re-derives its stream from the
replicate seed — and summarize the lifetime-fraction distribution.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional

import numpy as np

from ..config import ScaledArrayConfig
from ..errors import SimulationError
from ..rng.streams import derive_seed
from ..traces.parsec import BenchmarkProfile, make_benchmark_trace
from .lifetime import LifetimeResult
from .runner import DEFAULT_SCALED, measure_attack_lifetime, measure_trace_lifetime


@dataclass(frozen=True)
class ReplicatedLifetime:
    """Summary of a lifetime experiment across seeds."""

    scheme: str
    workload: str
    fractions: tuple
    results: tuple

    @property
    def n_replicates(self) -> int:
        """Number of runs summarized."""
        return len(self.fractions)

    @property
    def mean(self) -> float:
        """Mean lifetime fraction."""
        return float(np.mean(self.fractions))

    @property
    def std(self) -> float:
        """Standard deviation of the lifetime fraction."""
        return float(np.std(self.fractions, ddof=1)) if self.n_replicates > 1 else 0.0

    @property
    def minimum(self) -> float:
        """Worst replicate."""
        return float(np.min(self.fractions))

    @property
    def maximum(self) -> float:
        """Best replicate."""
        return float(np.max(self.fractions))

    def confidence_halfwidth(self) -> float:
        """~95% normal-approximation half-width of the mean."""
        if self.n_replicates < 2:
            return 0.0
        return 1.96 * self.std / np.sqrt(self.n_replicates)


def _replicate(
    run_one: Callable[[int], LifetimeResult],
    n_replicates: int,
) -> ReplicatedLifetime:
    if n_replicates < 1:
        raise SimulationError("need at least one replicate")
    results: List[LifetimeResult] = []
    for index in range(n_replicates):
        results.append(run_one(index))
    return ReplicatedLifetime(
        scheme=results[0].scheme,
        workload=results[0].workload,
        fractions=tuple(r.lifetime_fraction for r in results),
        results=tuple(results),
    )


def replicate_attack_lifetime(
    scheme_name: str,
    attack_name: str,
    n_replicates: int = 5,
    scaled: ScaledArrayConfig = DEFAULT_SCALED,
    seed: int = 2017,
    scheme_kwargs: Optional[dict] = None,
    attack_kwargs: Optional[dict] = None,
) -> ReplicatedLifetime:
    """Attack lifetime across ``n_replicates`` independent seeds."""

    def run_one(index: int) -> LifetimeResult:
        replicate_seed = derive_seed(seed, "replicate", index)
        replicate_scaled = replace(scaled, seed=replicate_seed)
        return measure_attack_lifetime(
            scheme_name,
            attack_name,
            scaled=replicate_scaled,
            seed=replicate_seed,
            scheme_kwargs=dict(scheme_kwargs or {}),
            attack_kwargs=dict(attack_kwargs or {}),
        )

    return _replicate(run_one, n_replicates)


def replicate_trace_lifetime(
    scheme_name: str,
    profile: BenchmarkProfile,
    trace_writes: int,
    n_replicates: int = 5,
    scaled: ScaledArrayConfig = DEFAULT_SCALED,
    seed: int = 2017,
    scheme_kwargs: Optional[dict] = None,
) -> ReplicatedLifetime:
    """Benchmark lifetime across seeds (fresh trace + array per seed)."""

    def run_one(index: int) -> LifetimeResult:
        replicate_seed = derive_seed(seed, "replicate", index)
        replicate_scaled = replace(scaled, seed=replicate_seed)
        trace = make_benchmark_trace(
            profile, scaled.n_pages, trace_writes, seed=replicate_seed
        )
        return measure_trace_lifetime(
            scheme_name,
            trace,
            scaled=replicate_scaled,
            seed=replicate_seed,
            scheme_kwargs=dict(scheme_kwargs or {}),
        )

    return _replicate(run_one, n_replicates)
