"""Multi-seed replication of lifetime experiments.

The paper reports single runs; a reproduction should quantify run-to-run
variance (endurance sampling, trace generation and the schemes' RNGs all
move the result).  :func:`replicate_attack_lifetime` and
:func:`replicate_trace_lifetime` rerun an experiment across derived
seeds — every stochastic component re-derives its stream from the
replicate seed — and summarize the lifetime-fraction distribution.

Replicates are independent experiment cells, so they run through
``repro.exec``: pass ``jobs=N`` to fan them across worker processes
and ``cache`` to reuse results across sessions.  A failing replicate
surfaces its identity (``replicate=3 seed=…``) rather than a bare
traceback.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

import numpy as np

from ..config import ScaledArrayConfig
from ..errors import SimulationError
from ..exec.cache import CellCache
from ..exec.cells import ExperimentCell, attack_cell, trace_cell
from ..exec.executor import run_cells
from ..rng.streams import derive_seed
from ..traces.parsec import BenchmarkProfile
from .lifetime import LifetimeResult
from .runner import DEFAULT_SCALED


@dataclass(frozen=True)
class ReplicatedLifetime:
    """Summary of a lifetime experiment across seeds."""

    scheme: str
    workload: str
    fractions: tuple
    results: tuple

    @property
    def n_replicates(self) -> int:
        """Number of runs summarized."""
        return len(self.fractions)

    @property
    def mean(self) -> float:
        """Mean lifetime fraction."""
        return float(np.mean(self.fractions))

    @property
    def std(self) -> float:
        """Standard deviation of the lifetime fraction."""
        return float(np.std(self.fractions, ddof=1)) if self.n_replicates > 1 else 0.0

    @property
    def minimum(self) -> float:
        """Worst replicate."""
        return float(np.min(self.fractions))

    @property
    def maximum(self) -> float:
        """Best replicate."""
        return float(np.max(self.fractions))

    def confidence_halfwidth(self) -> float:
        """~95% normal-approximation half-width of the mean."""
        if self.n_replicates < 2:
            return 0.0
        return 1.96 * self.std / np.sqrt(self.n_replicates)


def _replicate_cells(
    cells: List[ExperimentCell],
    jobs: int,
    cache: Optional[CellCache],
) -> ReplicatedLifetime:
    if not cells:
        raise SimulationError("need at least one replicate")
    # Each cell's label carries ``replicate=i seed=…``, so a failing
    # replicate names itself (via the executor's shared error wrapping)
    # instead of surfacing a bare traceback.
    results: List[LifetimeResult] = run_cells(cells, jobs=jobs, cache=cache)
    return ReplicatedLifetime(
        scheme=results[0].scheme,
        workload=results[0].workload,
        fractions=tuple(r.lifetime_fraction for r in results),
        results=tuple(results),
    )


def replicate_attack_lifetime(
    scheme_name: str,
    attack_name: str,
    n_replicates: int = 5,
    scaled: ScaledArrayConfig = DEFAULT_SCALED,
    seed: int = 2017,
    scheme_kwargs: Optional[dict] = None,
    attack_kwargs: Optional[dict] = None,
    jobs: int = 1,
    cache: Optional[CellCache] = None,
) -> ReplicatedLifetime:
    """Attack lifetime across ``n_replicates`` independent seeds."""
    cells = []
    for index in range(n_replicates):
        replicate_seed = derive_seed(seed, "replicate", index)
        cells.append(
            attack_cell(
                scheme_name,
                attack_name,
                scaled=replace(scaled, seed=replicate_seed),
                seed=replicate_seed,
                scheme_kwargs=scheme_kwargs,
                attack_kwargs=attack_kwargs,
                label=f"replicate={index} seed={replicate_seed}",
            )
        )
    return _replicate_cells(cells, jobs, cache)


def replicate_trace_lifetime(
    scheme_name: str,
    profile: BenchmarkProfile,
    trace_writes: int,
    n_replicates: int = 5,
    scaled: ScaledArrayConfig = DEFAULT_SCALED,
    seed: int = 2017,
    scheme_kwargs: Optional[dict] = None,
    jobs: int = 1,
    cache: Optional[CellCache] = None,
) -> ReplicatedLifetime:
    """Benchmark lifetime across seeds (fresh trace + array per seed)."""
    cells = []
    for index in range(n_replicates):
        replicate_seed = derive_seed(seed, "replicate", index)
        cells.append(
            trace_cell(
                scheme_name,
                profile.name,
                trace_writes=trace_writes,
                scaled=replace(scaled, seed=replicate_seed),
                seed=replicate_seed,
                scheme_kwargs=scheme_kwargs,
                profile=profile,
                label=f"replicate={index} seed={replicate_seed}",
            )
        )
    return _replicate_cells(cells, jobs, cache)
