"""Workload drivers.

A driver owns a position in an infinite write stream (a looping trace or
an adaptive attack) and hands demand writes to the simulation engine in
two granularities:

* :meth:`WorkloadDriver.drive` pushes writes through a scheme one at a
  time — the legacy per-write hot loop, with locals bound outside the
  loop, which is what makes exact run-to-failure simulation of tens of
  millions of writes practical in pure Python;
* :meth:`WorkloadDriver.next_batch` yields the next ``n`` logical
  addresses as an array without serving them, for the batched write
  protocol (:mod:`repro.engine`); :meth:`WorkloadDriver.observe_batch`
  feeds the per-request response costs back afterwards.
"""

from __future__ import annotations

import abc

import numpy as np

from ..attacks.base import AttackWorkload
from ..config import TimingConfig
from ..errors import SimulationError
from ..traces.trace import Trace
from ..wearlevel.base import WearLeveler


class WorkloadDriver(abc.ABC):
    """Stateful source of demand writes."""

    @abc.abstractmethod
    def drive(self, scheme: WearLeveler, max_demand: int) -> int:
        """Serve up to ``max_demand`` demand writes through ``scheme``.

        Stops early when the array fails.  Returns the number of demand
        writes actually served.
        """

    def next_batch(self, n: int) -> np.ndarray:
        """The next (up to) ``n`` logical addresses, without serving them.

        Drivers may return fewer than ``n`` addresses (an adaptive
        attack that needs per-request feedback returns one at a time);
        an empty array means the stream is exhausted.  When a batch is
        cut short by a failure, the unserved tail is *not* rewound —
        the engine stops at first failure, so only post-failure driver
        state (trace position, loop counter) can drift from a serial
        run; everything that reaches a :class:`LifetimeResult` stays
        bit-identical.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the batched write "
            "protocol; use batch_size=1"
        )

    def observe_batch(self, physical_write_counts: np.ndarray) -> None:
        """Feed back the per-request physical write counts of a batch."""

    @property
    @abc.abstractmethod
    def workload_name(self) -> str:
        """Label for result records."""


class TraceDriver(WorkloadDriver):
    """Loops a finite trace's write stream forever (paper methodology)."""

    def __init__(self, trace: Trace, n_pages: int):
        writes = trace.write_page_list()
        if not writes:
            raise SimulationError(f"trace {trace.name!r} contains no writes")
        if trace.max_page >= n_pages:
            raise SimulationError(
                f"trace touches page {trace.max_page} outside array of {n_pages}"
            )
        self._writes = writes
        self._writes_array = np.asarray(writes, dtype=np.int64)
        self._position = 0
        self._name = trace.name
        self.loops_completed = 0

    @property
    def workload_name(self) -> str:
        return self._name

    def drive(self, scheme: WearLeveler, max_demand: int) -> int:
        if max_demand < 0:
            raise ValueError("max_demand must be non-negative")
        writes = self._writes
        length = len(writes)
        position = self._position
        write = scheme.write
        array = scheme.array
        served = 0
        while served < max_demand and not array.failed:
            write(writes[position])
            served += 1
            position += 1
            if position == length:
                position = 0
                self.loops_completed += 1
        self._position = position
        return served

    def next_batch(self, n: int) -> np.ndarray:
        if n < 0:
            raise ValueError("batch size must be non-negative")
        writes = self._writes_array
        length = writes.size
        out = np.empty(n, dtype=np.int64)
        position = self._position
        filled = 0
        while filled < n:
            take = min(n - filled, length - position)
            out[filled : filled + take] = writes[position : position + take]
            filled += take
            position += take
            if position == length:
                position = 0
                self.loops_completed += 1
        self._position = position
        return out


class AttackDriver(WorkloadDriver):
    """Drives an adaptive attack, feeding back response latencies.

    The response-time model matches the threat model's observable: a
    request that triggered k physical page writes blocks for k write
    latencies before the attacker's next request is served.
    """

    def __init__(self, attack: AttackWorkload, timing: TimingConfig = TimingConfig()):
        self.attack = attack
        self.timing = timing

    @property
    def workload_name(self) -> str:
        return self.attack.name

    def drive(self, scheme: WearLeveler, max_demand: int) -> int:
        if max_demand < 0:
            raise ValueError("max_demand must be non-negative")
        attack = self.attack
        next_write = attack.next_write
        observe = attack.observe_response
        write = scheme.write
        array = scheme.array
        write_cycles = float(self.timing.write_cycles)
        served = 0
        while served < max_demand and not array.failed:
            physical_writes = write(next_write())
            observe(write_cycles * physical_writes)
            served += 1
        return served

    def next_batch(self, n: int) -> np.ndarray:
        if n < 0:
            raise ValueError("batch size must be non-negative")
        attack = self.attack
        if attack.is_adaptive and n > 1:
            # Adaptive attacks steer on per-request response times, so
            # later addresses of a batch would be computed on stale
            # feedback.  Degrade to one-write batches: slower, but
            # exactly the serial decision sequence.
            n = 1
        return attack.next_writes(n)

    def observe_batch(self, physical_write_counts: np.ndarray) -> None:
        attack = self.attack
        if not attack.is_adaptive:
            # observe_response is the no-op base implementation.
            return
        observe = attack.observe_response
        write_cycles = float(self.timing.write_cycles)
        for physical_writes in physical_write_counts.tolist():
            observe(write_cycles * physical_writes)
