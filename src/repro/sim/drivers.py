"""Workload drivers.

A driver owns a position in an infinite write stream (a looping trace,
a chunked stream, or an adaptive attack) and hands demand writes to the
simulation engine in two granularities:

* :meth:`WorkloadDriver.drive` pushes writes through a scheme one at a
  time — the legacy per-write hot loop, with locals bound outside the
  loop, which is what makes exact run-to-failure simulation of tens of
  millions of writes practical in pure Python;
* :meth:`WorkloadDriver.next_batch` yields the next ``n`` logical
  addresses as an array without serving them, for the batched write
  protocol (:mod:`repro.engine`); :meth:`WorkloadDriver.observe_batch`
  feeds the per-request response costs back afterwards.

:class:`StreamDriver` is the streaming-first workload path: it pulls
``(ops, pages)`` chunks from a :class:`~repro.traces.stream.TraceStream`
and buffers only the current chunk's writes, so multi-billion-request
campaigns run at constant memory.  :class:`TraceDriver` is the
materialized adapter kept for small in-RAM traces; streamed and
materialized runs of the same workload are bit-identical
(``tests/test_engine_identity.py``).
"""

from __future__ import annotations

import abc

import numpy as np

from ..attacks.base import AttackWorkload
from ..config import TimingConfig
from ..errors import SimulationError
from ..traces.request import OP_WRITE
from ..traces.stream import TraceStream
from ..traces.trace import Trace
from ..wearlevel.base import WearLeveler

#: Consecutive writeless chunks after which a stream is declared broken
#: (an endless generator that stops yielding writes would otherwise spin
#: the refill loop forever).
_MAX_WRITELESS_CHUNKS = 100_000


class WorkloadDriver(abc.ABC):
    """Stateful source of demand writes."""

    @abc.abstractmethod
    def drive(self, scheme: WearLeveler, max_demand: int) -> int:
        """Serve up to ``max_demand`` demand writes through ``scheme``.

        Stops early when the array fails.  Returns the number of demand
        writes actually served.
        """

    def next_batch(self, n: int) -> np.ndarray:
        """The next (up to) ``n`` logical addresses, without serving them.

        Drivers may return fewer than ``n`` addresses (an adaptive
        attack that needs per-request feedback returns one at a time);
        an empty array means the stream is exhausted.  When a batch is
        cut short by a failure, the unserved tail is *not* rewound —
        the engine stops at first failure, so only post-failure driver
        state (trace position, loop counter) can drift from a serial
        run; everything that reaches a :class:`LifetimeResult` stays
        bit-identical.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the batched write "
            "protocol; use batch_size=1"
        )

    def observe_batch(self, physical_write_counts: np.ndarray) -> None:
        """Feed back the per-request physical write counts of a batch."""

    def snapshot(self) -> dict:
        """The driver's mutable position state as a plain state tree.

        Restoring it into a freshly constructed driver over the same
        workload reproduces the remaining write sequence bit-exactly
        (the sub-cell recovery contract, ``docs/robustness.md``).
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support mid-run snapshots"
        )

    def restore(self, state: dict) -> None:
        """Restore a position captured by :meth:`snapshot`."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support mid-run snapshots"
        )

    @property
    @abc.abstractmethod
    def workload_name(self) -> str:
        """Label for result records."""


class TraceDriver(WorkloadDriver):
    """Loops a finite trace's write stream forever (paper methodology)."""

    def __init__(self, trace: Trace, n_pages: int):
        writes = trace.write_page_list()  # twl: allow(TWL007) reason=TraceDriver is the intentional materialized adapter
        if not writes:
            raise SimulationError(f"trace {trace.name!r} contains no writes")
        if trace.max_page >= n_pages:
            raise SimulationError(
                f"trace touches page {trace.max_page} outside array of {n_pages}"
            )
        self._writes = writes
        self._writes_array = np.asarray(writes, dtype=np.int64)
        self._position = 0
        self._name = trace.name
        self.loops_completed = 0

    @property
    def workload_name(self) -> str:
        return self._name

    def drive(self, scheme: WearLeveler, max_demand: int) -> int:
        if max_demand < 0:
            raise ValueError("max_demand must be non-negative")
        writes = self._writes
        length = len(writes)
        position = self._position
        write = scheme.write
        array = scheme.array
        served = 0
        while served < max_demand and not array.failed:
            write(writes[position])
            served += 1
            position += 1
            if position == length:
                position = 0
                self.loops_completed += 1
        self._position = position
        return served

    def next_batch(self, n: int) -> np.ndarray:
        if n < 0:
            raise ValueError("batch size must be non-negative")
        writes = self._writes_array
        length = writes.size
        out = np.empty(n, dtype=np.int64)
        position = self._position
        filled = 0
        while filled < n:
            take = min(n - filled, length - position)
            out[filled : filled + take] = writes[position : position + take]
            filled += take
            position += take
            if position == length:
                position = 0
                self.loops_completed += 1
        self._position = position
        return out

    def snapshot(self) -> dict:
        return {"loops_completed": self.loops_completed, "position": self._position}

    def restore(self, state: dict) -> None:
        self.loops_completed = int(state["loops_completed"])
        self._position = int(state["position"])


class StreamDriver(WorkloadDriver):
    """Loops a :class:`TraceStream`'s write stream at constant memory.

    Pulls one chunk at a time, keeps only that chunk's write addresses
    buffered, and rewinds finite streams at exhaustion (the paper's
    loop-to-failure methodology).  Positions and loop counters are plain
    Python ints, so multi-billion-request campaigns overflow nothing.

    Identity: for the same underlying request sequence this driver
    serves exactly the write sequence :class:`TraceDriver` serves — the
    chunk size only changes *delivery granularity* (``next_batch`` may
    return short batches at chunk boundaries, which the engine loop
    tolerates), never the sequence, so streamed runs stay bit-identical
    to materialized runs.
    """

    def __init__(self, stream: TraceStream, n_pages: int):
        self._stream = stream
        self._n_pages = n_pages
        self._buffer = np.empty(0, dtype=np.int64)
        self._offset = 0
        self._name = stream.name
        self.loops_completed = 0
        #: Total requests (reads included) consumed from the stream.
        self.requests_consumed = 0
        self._writes_this_loop = False
        #: Chunks consumed since the last rewind — the position hint the
        #: stream's :meth:`~repro.traces.stream.TraceStream.snapshot_position`
        #: needs (the base stream protocol cannot observe chunk pulls).
        self._chunks_this_loop = 0

    @property
    def workload_name(self) -> str:
        return self._name

    def _refill(self) -> None:
        """Pull chunks until the write buffer is non-empty."""
        stream = self._stream
        writeless = 0
        while True:
            chunk = stream.next_chunk()
            if chunk is None:
                if not self._writes_this_loop:
                    raise SimulationError(
                        f"stream {self._name!r} contains no writes"
                    )
                stream.rewind()
                self.loops_completed += 1
                self._writes_this_loop = False
                self._chunks_this_loop = 0
                continue
            ops, pages = chunk
            self._chunks_this_loop += 1
            self.requests_consumed += int(ops.size)
            writes = pages[ops == OP_WRITE]
            if writes.size == 0:
                writeless += 1
                if writeless >= _MAX_WRITELESS_CHUNKS:
                    raise SimulationError(
                        f"stream {self._name!r} yielded {writeless} "
                        "consecutive chunks without a write"
                    )
                continue
            if int(writes.max()) >= self._n_pages or int(writes.min()) < 0:
                bad = writes[(writes < 0) | (writes >= self._n_pages)][0]
                raise SimulationError(
                    f"stream {self._name!r} touches page {int(bad)} outside "
                    f"array of {self._n_pages}"
                )
            self._buffer = writes
            self._offset = 0
            self._writes_this_loop = True
            return

    def drive(self, scheme: WearLeveler, max_demand: int) -> int:
        if max_demand < 0:
            raise ValueError("max_demand must be non-negative")
        write = scheme.write
        array = scheme.array
        served = 0
        while served < max_demand and not array.failed:
            if self._offset >= self._buffer.size:
                self._refill()
            take = min(max_demand - served, self._buffer.size - self._offset)
            chunk = self._buffer[self._offset : self._offset + take]
            consumed = 0
            for logical in chunk.tolist():
                write(logical)
                consumed += 1
                if array.failed:
                    break
            self._offset += consumed
            served += consumed
        return served

    def next_batch(self, n: int) -> np.ndarray:
        if n < 0:
            raise ValueError("batch size must be non-negative")
        if self._offset >= self._buffer.size:
            self._refill()
        # Serve from the buffered chunk only: a short batch at a chunk
        # boundary is cheaper than concatenating across chunks, and the
        # engine loop tolerates it (batch segmentation cannot change
        # results under the batch-identity contract).
        take = min(n, self._buffer.size - self._offset)
        out = self._buffer[self._offset : self._offset + take]
        self._offset += take
        return out

    def snapshot(self) -> dict:
        # The unserved tail of the current chunk travels in the snapshot
        # (re-decoding it would need a chunk re-pull the stream position
        # has already moved past); the stream itself records only its
        # chunk-granular position.
        return {
            "buffer": self._buffer[self._offset :].copy(),
            "chunks_this_loop": self._chunks_this_loop,
            "loops_completed": self.loops_completed,
            "requests_consumed": self.requests_consumed,
            "stream": self._stream.snapshot_position(self._chunks_this_loop),
            "writes_this_loop": self._writes_this_loop,
        }

    def restore(self, state: dict) -> None:
        self._buffer = np.asarray(state["buffer"], dtype=np.int64)
        self._offset = 0
        self._chunks_this_loop = int(state["chunks_this_loop"])
        self.loops_completed = int(state["loops_completed"])
        self.requests_consumed = int(state["requests_consumed"])
        self._writes_this_loop = bool(state["writes_this_loop"])
        self._stream.restore_position(state["stream"])  # type: ignore[arg-type]


class AttackDriver(WorkloadDriver):
    """Drives an adaptive attack, feeding back response latencies.

    The response-time model matches the threat model's observable: a
    request that triggered k physical page writes blocks for k write
    latencies before the attacker's next request is served.
    """

    def __init__(self, attack: AttackWorkload, timing: TimingConfig = TimingConfig()):
        self.attack = attack
        self.timing = timing

    @property
    def workload_name(self) -> str:
        return self.attack.name

    def drive(self, scheme: WearLeveler, max_demand: int) -> int:
        if max_demand < 0:
            raise ValueError("max_demand must be non-negative")
        attack = self.attack
        next_write = attack.next_write
        observe = attack.observe_response
        write = scheme.write
        array = scheme.array
        write_cycles = float(self.timing.write_cycles)
        served = 0
        while served < max_demand and not array.failed:
            physical_writes = write(next_write())
            observe(write_cycles * physical_writes)
            served += 1
        return served

    def next_batch(self, n: int) -> np.ndarray:
        if n < 0:
            raise ValueError("batch size must be non-negative")
        attack = self.attack
        if attack.is_adaptive and n > 1:
            # Adaptive attacks steer on per-request response times, so
            # later addresses of a batch would be computed on stale
            # feedback.  Degrade to one-write batches: slower, but
            # exactly the serial decision sequence.
            n = 1
        return attack.next_writes(n)

    def observe_batch(self, physical_write_counts: np.ndarray) -> None:
        attack = self.attack
        if not attack.is_adaptive:
            # observe_response is the no-op base implementation.
            return
        observe = attack.observe_response
        write_cycles = float(self.timing.write_cycles)
        for physical_writes in physical_write_counts.tolist():
            observe(write_cycles * physical_writes)

    def snapshot(self) -> dict:
        return {"attack": self.attack.snapshot()}

    def restore(self, state: dict) -> None:
        self.attack.restore(state["attack"])  # type: ignore[arg-type]
