"""Workload drivers.

A driver owns a position in an infinite write stream (a looping trace or
an adaptive attack) and pushes demand writes through a wear-leveling
scheme until a quota is met or the array records its first failure.
Keeping the loop here — with locals bound outside the loop — is what
makes exact run-to-failure simulation of tens of millions of writes
practical in pure Python.
"""

from __future__ import annotations

import abc

from ..attacks.base import AttackWorkload
from ..config import TimingConfig
from ..errors import SimulationError
from ..traces.trace import Trace
from ..wearlevel.base import WearLeveler


class WorkloadDriver(abc.ABC):
    """Stateful source of demand writes."""

    @abc.abstractmethod
    def drive(self, scheme: WearLeveler, max_demand: int) -> int:
        """Serve up to ``max_demand`` demand writes through ``scheme``.

        Stops early when the array fails.  Returns the number of demand
        writes actually served.
        """

    @property
    @abc.abstractmethod
    def workload_name(self) -> str:
        """Label for result records."""


class TraceDriver(WorkloadDriver):
    """Loops a finite trace's write stream forever (paper methodology)."""

    def __init__(self, trace: Trace, n_pages: int):
        writes = trace.write_page_list()
        if not writes:
            raise SimulationError(f"trace {trace.name!r} contains no writes")
        if trace.max_page >= n_pages:
            raise SimulationError(
                f"trace touches page {trace.max_page} outside array of {n_pages}"
            )
        self._writes = writes
        self._position = 0
        self._name = trace.name
        self.loops_completed = 0

    @property
    def workload_name(self) -> str:
        return self._name

    def drive(self, scheme: WearLeveler, max_demand: int) -> int:
        if max_demand < 0:
            raise ValueError("max_demand must be non-negative")
        writes = self._writes
        length = len(writes)
        position = self._position
        write = scheme.write
        array = scheme.array
        served = 0
        while served < max_demand and not array.failed:
            write(writes[position])
            served += 1
            position += 1
            if position == length:
                position = 0
                self.loops_completed += 1
        self._position = position
        return served


class AttackDriver(WorkloadDriver):
    """Drives an adaptive attack, feeding back response latencies.

    The response-time model matches the threat model's observable: a
    request that triggered k physical page writes blocks for k write
    latencies before the attacker's next request is served.
    """

    def __init__(self, attack: AttackWorkload, timing: TimingConfig = TimingConfig()):
        self.attack = attack
        self.timing = timing

    @property
    def workload_name(self) -> str:
        return self.attack.name

    def drive(self, scheme: WearLeveler, max_demand: int) -> int:
        if max_demand < 0:
            raise ValueError("max_demand must be non-negative")
        attack = self.attack
        next_write = attack.next_write
        observe = attack.observe_response
        write = scheme.write
        array = scheme.array
        write_cycles = float(self.timing.write_cycles)
        served = 0
        while served < max_demand and not array.failed:
            physical_writes = write(next_write())
            observe(write_cycles * physical_writes)
            served += 1
        return served
