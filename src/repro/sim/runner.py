"""One-call experiment helpers.

These wrap array construction, scheme/attack instantiation, driver setup
and lifetime estimation so that the benchmark harness, the examples and
the CLI all run experiments through identical code paths.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..attacks.registry import make_attack
from ..config import ScaledArrayConfig, SoftErrorConfig, TimingConfig
from ..errors import ConfigError
from ..pcm.array import PCMArray
from ..pcm.endurance import sample_gaussian_endurance, sample_tail_faithful
from ..rng.streams import make_generator
from ..traces.stream import TraceStream
from ..traces.trace import Trace
from ..wearlevel.registry import make_scheme
from .drivers import AttackDriver, StreamDriver, TraceDriver
from ..engine import SnapshotPlan
from .fastforward import FastForwardConfig, fast_forward_to_failure
from .lifetime import DEFAULT_MAX_DEMAND, LifetimeResult, run_to_failure

#: Default scale for experiments.  The endurance-to-footprint ratio
#: matters: at full scale mean endurance / page count = 1e8 / 8.4M ≈ 12,
#: and prediction-phase lengths, refresh rounds etc. all scale with the
#: page count, so preserving the ratio keeps every scheme's
#: phases-per-page-lifetime equal to the paper's.  1024 pages at mean
#: endurance 12288 holds that ratio while keeping exact run-to-failure
#: in the seconds range per scheme/workload cell.
DEFAULT_SCALED = ScaledArrayConfig(n_pages=1024, endurance_mean=12288.0)


def build_array(scaled: ScaledArrayConfig = DEFAULT_SCALED) -> PCMArray:
    """Sample a fresh scaled PCM array per the scaling configuration."""
    rng = make_generator(scaled.seed, "endurance")
    if scaled.tail_faithful:
        endurance = sample_tail_faithful(
            scaled.n_pages,
            scaled.reference.n_pages,
            scaled.endurance_mean,
            scaled.endurance_sigma_fraction,
            rng,
        )
    else:
        endurance = sample_gaussian_endurance(
            scaled.n_pages,
            scaled.endurance_mean,
            scaled.endurance_sigma_fraction,
            rng,
        )
    return PCMArray(endurance)


def measure_attack_lifetime(
    scheme_name: str,
    attack_name: str,
    scaled: ScaledArrayConfig = DEFAULT_SCALED,
    seed: int = 2017,
    fastforward: bool = False,
    ff_config: Optional[FastForwardConfig] = None,
    timing: TimingConfig = TimingConfig(),
    scheme_kwargs: Optional[dict] = None,
    attack_kwargs: Optional[dict] = None,
    batch_size: int = 1,
    soft_errors: Optional[SoftErrorConfig] = None,
    check_invariants: bool = False,
    snapshots: Optional[SnapshotPlan] = None,
) -> LifetimeResult:
    """Lifetime of ``scheme_name`` under ``attack_name`` at scaled size.

    ``batch_size`` selects the engine's batched write protocol; results
    are bit-identical to the default per-write path for every
    registered scheme (adaptive attacks degrade to per-write batches to
    preserve their feedback loop).  ``soft_errors`` /
    ``check_invariants`` enable controller soft-error injection and the
    runtime invariant checker (exact simulation only: fast-forward
    extrapolates wear analytically, which has no step loop to deliver
    flips through).  ``snapshots`` arms mid-run checkpointing and
    resume (sub-cell recovery; exact simulation only — see
    :func:`repro.sim.lifetime.run_to_failure`).
    """
    _check_fault_support(fastforward, soft_errors, snapshots)
    array = build_array(scaled)
    scheme = make_scheme(scheme_name, array, seed=seed, **(scheme_kwargs or {}))
    attack = make_attack(
        attack_name, scheme.logical_pages, seed=seed, **(attack_kwargs or {})
    )
    driver = AttackDriver(attack, timing=timing)
    if fastforward:
        return fast_forward_to_failure(
            scheme,
            driver,
            config=ff_config or FastForwardConfig(),
            batch_size=batch_size,
        )
    return run_to_failure(
        scheme,
        driver,
        batch_size=batch_size,
        soft_errors=soft_errors,
        check_invariants=check_invariants,
        snapshots=snapshots,
    )


def measure_trace_lifetime(
    scheme_name: str,
    trace: Trace,
    scaled: ScaledArrayConfig = DEFAULT_SCALED,
    seed: int = 2017,
    fastforward: bool = False,
    ff_config: Optional[FastForwardConfig] = None,
    scheme_kwargs: Optional[dict] = None,
    batch_size: int = 1,
    soft_errors: Optional[SoftErrorConfig] = None,
    check_invariants: bool = False,
    snapshots: Optional[SnapshotPlan] = None,
) -> LifetimeResult:
    """Lifetime of ``scheme_name`` looping ``trace`` at scaled size.

    ``batch_size`` selects the engine's batched write protocol; results
    are bit-identical to the default per-write path.  ``soft_errors``
    and ``check_invariants`` behave as in
    :func:`measure_attack_lifetime` (exact simulation only), and so
    does ``snapshots``.
    """
    _check_fault_support(fastforward, soft_errors, snapshots)
    array = build_array(scaled)
    scheme = make_scheme(scheme_name, array, seed=seed, **(scheme_kwargs or {}))
    driver = TraceDriver(trace, scheme.logical_pages)
    if fastforward:
        return fast_forward_to_failure(
            scheme,
            driver,
            config=ff_config or FastForwardConfig(),
            batch_size=batch_size,
        )
    return run_to_failure(
        scheme,
        driver,
        batch_size=batch_size,
        soft_errors=soft_errors,
        check_invariants=check_invariants,
        snapshots=snapshots,
    )


def measure_stream_lifetime(
    scheme_name: str,
    stream_factory: Callable[[int], TraceStream],
    scaled: ScaledArrayConfig = DEFAULT_SCALED,
    seed: int = 2017,
    scheme_kwargs: Optional[dict] = None,
    batch_size: int = 1,
    max_demand: int = DEFAULT_MAX_DEMAND,
    require_failure: bool = True,
    soft_errors: Optional[SoftErrorConfig] = None,
    check_invariants: bool = False,
    snapshots: Optional[SnapshotPlan] = None,
) -> LifetimeResult:
    """Lifetime of ``scheme_name`` under a streamed workload.

    ``stream_factory`` receives the scheme's logical page count and
    returns the :class:`~repro.traces.stream.TraceStream` to drive —
    built *after* the scheme so generators (the FTL workload) size
    themselves to the exposed logical space (Start-Gap reserves a
    frame).  The stream is looped to failure through
    :class:`~repro.sim.drivers.StreamDriver` at constant memory;
    ``batch_size`` and the stream's chunk size are execution knobs —
    results are bit-identical to a materialized
    :func:`measure_trace_lifetime` run of the same request sequence.
    """
    _check_fault_support(False, soft_errors, snapshots)
    array = build_array(scaled)
    scheme = make_scheme(scheme_name, array, seed=seed, **(scheme_kwargs or {}))
    stream = stream_factory(scheme.logical_pages)
    driver = StreamDriver(stream, scheme.logical_pages)
    try:
        return run_to_failure(
            scheme,
            driver,
            max_demand=max_demand,
            require_failure=require_failure,
            batch_size=batch_size,
            soft_errors=soft_errors,
            check_invariants=check_invariants,
            snapshots=snapshots,
        )
    finally:
        stream.close()


def _check_fault_support(
    fastforward: bool,
    soft_errors: Optional[SoftErrorConfig],
    snapshots: Optional[SnapshotPlan] = None,
) -> None:
    """Reject fault injection / checkpointing on fast-forward up front.

    Fast-forward extrapolates the tail of the run analytically; there
    is no step loop to schedule flips against — or to emit snapshots
    from — so silently dropping either would make the run quietly
    different from what was asked for.  Failing loudly is the honest
    option.
    """
    if fastforward and soft_errors is not None and soft_errors.rate > 0.0:
        raise ConfigError(
            "soft-error injection requires exact simulation; "
            "fastforward=True cannot deliver scheduled bit flips"
        )
    if fastforward and snapshots is not None:
        raise ConfigError(
            "mid-run snapshots require exact simulation; "
            "fastforward=True has no step loop to emit them from"
        )
