"""Fast-forward lifetime estimation.

Exact run-to-failure costs one Python-loop iteration per demand write.
For workloads whose wear pattern is stationary (looping traces, periodic
attacks, randomized remapping in steady state), per-page wear *rates*
predict the time to the first failure, and the intervening wear can be
applied in one vectorized step.

Rates are **cumulative since the end of warmup**, not per-window, and
each bulk jump is capped at the exactly-measured demand span (a doubling
rule), so extrapolation never outruns its own evidence.  Jumps are
applied *proportionally to the cumulative rates*, which leaves those
rates invariant — only new exactly-simulated windows refine them.

**Applicability.** The estimator is accurate when per-frame wear rates
are smooth at the window scale — uniform or scan write streams, and any
workload whose every frame is revisited many times per window.  It is
*biased* for sojourn-heavy wear (a hammered page parking on one random
frame per relocation interval): there the per-frame visit counts stay
Poisson-noisy for a sizable fraction of the device lifetime, and jumps
amplify whichever frames were visited early.  Use exact
:func:`repro.sim.lifetime.run_to_failure` for repeat/inconsistent-style
attacks; the experiment drivers in ``repro.experiments`` select the
right estimator per workload.

The estimator:

1. drives a warmup through the scheme so remapping state reaches steady
   state, then baselines the per-page write counts;
2. repeatedly: drives a window of exact demand writes, recomputes
   cumulative rates, computes each page's demand-writes-to-death, and —
   while the minimum is comfortably beyond the window — bulk-applies
   ``jump_safety`` of the predicted remaining wear;
3. as the predicted failure approaches, jumps shrink below the window
   size and the loop degenerates into exact simulation, so the final
   approach to failure is simulated write-by-write.

Cross-validated against exact simulation in
``tests/test_fastforward.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..engine import EngineObserver, SimulationEngine
from ..errors import ExtrapolationError, SimulationError
from ..wearlevel.base import WearLeveler
from .drivers import WorkloadDriver
from .lifetime import LifetimeResult


@dataclass(frozen=True)
class FastForwardConfig:
    """Fast-forward estimator parameters.

    ``warmup_demand`` should cover the scheme's slowest internal cycle
    (swap phases, refresh rounds, inter-pair sweeps) a few times over;
    the defaults cover the paper's intervals by a wide margin at the
    default array scale.
    """

    warmup_demand: int = 200_000
    window_demand: int = 100_000
    jump_safety: float = 0.8
    max_rounds: int = 100_000

    def __post_init__(self) -> None:
        if self.warmup_demand < 0:
            raise ValueError("warmup must be non-negative")
        if self.window_demand < 1:
            raise ValueError("window must be positive")
        if not 0.0 < self.jump_safety < 1.0:
            raise ValueError("jump safety must be in (0, 1)")
        if self.max_rounds < 1:
            raise ValueError("max_rounds must be positive")


def fast_forward_to_failure(
    scheme: WearLeveler,
    driver: WorkloadDriver,
    config: FastForwardConfig = FastForwardConfig(),
    batch_size: int = 1,
    observers: Iterable[EngineObserver] = (),
) -> LifetimeResult:
    """Estimate lifetime by cumulative-rate extrapolation (module doc).

    The exact warmup and measurement windows run through
    :class:`repro.engine.SimulationEngine` (so ``batch_size`` and
    ``observers`` behave exactly as in
    :func:`repro.sim.lifetime.run_to_failure`); only the bulk jumps are
    applied directly to the array.
    """
    array = scheme.array
    if array.failed:
        raise SimulationError("array already failed before simulation start")
    engine = SimulationEngine(
        scheme, driver, batch_size=batch_size, observers=observers
    )
    engine.begin_run()

    demand_total = engine.drive(config.warmup_demand)
    baseline = array.write_counts()
    demand_measured = 0  # demand writes since baseline (exact + jumped)

    rounds = 0
    while not array.failed:
        rounds += 1
        if rounds > config.max_rounds:
            raise ExtrapolationError(
                f"no failure after {rounds - 1} fast-forward rounds; "
                "the workload's wear rates may not be stationary"
            )
        served = engine.drive(config.window_demand)
        demand_total += served
        demand_measured += served
        if array.failed:
            break
        if served < config.window_demand:
            raise SimulationError("workload driver stalled before failure")

        accumulated = (array.write_counts() - baseline).astype(np.float64)
        rates = accumulated / demand_measured
        remaining = array.remaining().astype(np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            time_to_death = np.where(rates > 0, remaining / rates, np.inf)
        min_ttd = float(time_to_death.min())
        if not np.isfinite(min_ttd):
            # Nothing is wearing measurably yet; keep driving exact
            # windows until repeated pages appear.
            continue

        jump = int((min_ttd - config.window_demand) * config.jump_safety)
        # Doubling rule: never extrapolate further than the span already
        # measured exactly plus previously validated jumps.
        jump = min(jump, demand_measured)
        if jump < config.window_demand:
            # Close to failure: fall through to exact windows.
            continue
        counts = (accumulated * jump / demand_measured).astype(np.int64)
        device_before = array.total_writes
        array.apply_write_counts(counts)
        if array.failed:
            failure = array.first_failure
            chunk_total = int(counts.sum())
            fraction = (failure.device_writes - device_before) / max(1, chunk_total)
            demand_jumped = int(round(jump * min(1.0, max(0.0, fraction))))
        else:
            demand_jumped = jump
        demand_total += demand_jumped
        demand_measured += demand_jumped

    engine.end_run()
    failure = array.first_failure
    return LifetimeResult(
        scheme=scheme.name,
        workload=driver.workload_name,
        n_pages=array.n_pages,
        endurance_mean=float(array.endurance.mean()),
        demand_writes=demand_total,
        device_writes=failure.device_writes if failure else array.total_writes,
        failed=array.failed,
        failure=failure,
        estimation="fast-forward",
    )
