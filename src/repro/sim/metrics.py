"""Scheme overhead measurement.

The Figure-9 timing model needs each scheme's *measured* swap behaviour
on each workload (swap writes per demand write, swap events per demand
write).  This module drives a bounded number of writes through a scheme
and extracts those ratios from the scheme's counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import SimulationError
from ..wearlevel.base import WearLeveler
from .drivers import WorkloadDriver


@dataclass(frozen=True)
class SchemeOverheads:
    """Measured per-demand-write overhead ratios for one scheme/workload."""

    scheme: str
    workload: str
    demand_writes: int
    swap_write_ratio: float
    swap_event_ratio: float
    extra_stats: Dict[str, float]


def measure_scheme_overheads(
    scheme: WearLeveler,
    driver: WorkloadDriver,
    n_demand_writes: int,
) -> SchemeOverheads:
    """Drive ``n_demand_writes`` and report the scheme's overhead ratios."""
    if n_demand_writes < 1:
        raise ValueError("need at least one demand write")
    served = driver.drive(scheme, n_demand_writes)
    if served == 0:
        raise SimulationError("driver produced no writes")
    stats = scheme.stats()
    return SchemeOverheads(
        scheme=scheme.name,
        workload=driver.workload_name,
        demand_writes=served,
        swap_write_ratio=stats["swap_write_ratio"],
        swap_event_ratio=stats["swap_events"] / max(1.0, stats["demand_writes"]),
        extra_stats=stats,
    )
