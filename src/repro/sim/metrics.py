"""Scheme overhead measurement.

The Figure-9 timing model needs each scheme's *measured* swap behaviour
on each workload (swap writes per demand write, swap events per demand
write).  This module configures a :class:`repro.engine.SimulationEngine`
with a :class:`repro.engine.SchemeOverheadsObserver` — the ad-hoc
counter plumbing that used to live here is now an observer any caller
can attach to any run.
"""

from __future__ import annotations

from ..engine import SchemeOverheads, SchemeOverheadsObserver, SimulationEngine
from ..errors import SimulationError
from ..wearlevel.base import WearLeveler
from .drivers import WorkloadDriver

__all__ = ["SchemeOverheads", "measure_scheme_overheads"]


def measure_scheme_overheads(
    scheme: WearLeveler,
    driver: WorkloadDriver,
    n_demand_writes: int,
    batch_size: int = 1,
) -> SchemeOverheads:
    """Drive ``n_demand_writes`` and report the scheme's overhead ratios."""
    if n_demand_writes < 1:
        raise ValueError("need at least one demand write")
    observer = SchemeOverheadsObserver()
    engine = SimulationEngine(
        scheme, driver, batch_size=batch_size, observers=(observer,)
    )
    engine.run(n_demand_writes)
    if engine.demand_served == 0:
        raise SimulationError("driver produced no writes")
    assert observer.overheads is not None
    return observer.overheads
