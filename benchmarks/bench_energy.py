"""E1 — write-energy overhead per scheme (extension bench)."""

from repro.experiments import energy


def test_e1_energy_overhead(benchmark, setup, record):
    table = benchmark.pedantic(energy.run, args=(setup,), rounds=1, iterations=1)
    record(
        "extension_e1_energy",
        table.render(precision=4, title="E1 — write-energy overhead vs NOWL"),
    )
    average = table.rows()[-1]
    assert average["benchmark"] == "average"
    # Migration writes dominate energy overhead, so the scheme with the
    # most migrations (BWL here) pays the most energy; all stay modest.
    assert average["bwl"] > average["sr"]
    for scheme in ("bwl", "sr", "twl"):
        assert 0.0 < average[scheme] < 0.6
