"""Section 5.4 — design overhead (storage bits and logic gates)."""

import pytest

from repro.experiments import overhead
from repro.hwcost.synthesis import twl_design_overhead


def test_sec54_design_overhead(benchmark, setup, record):
    table = benchmark.pedantic(overhead.run, args=(setup,), rounds=1, iterations=1)
    record("sec54_overhead", table.render(title="Section 5.4 — design overhead"))

    report = twl_design_overhead()
    # "80bits/4KB = 2.5e-3" storage overhead.
    assert report.storage_bits_per_page == 80
    assert report.storage_overhead == pytest.approx(2.5e-3, rel=0.05)
    # "less than 128 gates" for the RNG; "718 gates" for the rest;
    # "840 logic gates ... estimated for the total".
    assert report.rng_gates < 128
    assert report.datapath_gates == pytest.approx(718, rel=0.15)
    assert report.total_gates == pytest.approx(840, rel=0.15)
