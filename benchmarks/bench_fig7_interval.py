"""Figure 7 — swap/write ratio (a) and scan-attack lifetime (b) versus
the toss-up interval.

The paper picks interval 32 from this trade-off (37.9% swap ratio at
interval 1 dropping roughly as 1/interval, ~2.2% additional writes at
32).  See EXPERIMENTS.md for the 7(b) trend discussion.
"""

import pytest

from repro.experiments import fig7


def test_fig7_interval_sweep(benchmark, setup, record):
    table = benchmark.pedantic(fig7.run, args=(setup,), rounds=1, iterations=1)
    record(
        "fig7_interval",
        table.render(precision=4, title="Figure 7 — toss-up interval sweep"),
    )
    rows = table.rows()
    by_interval = {row["toss_up_interval"]: row for row in rows}

    # (a) the ratio at interval 1 is tens of percent (paper: 37.9%)...
    assert by_interval[1]["swap_write_ratio"] > 0.15
    # ...and falls roughly in proportion to the interval.
    ratio_1 = by_interval[1]["swap_write_ratio"]
    ratio_32 = by_interval[32]["swap_write_ratio"]
    assert ratio_1 / ratio_32 == pytest.approx(32, rel=0.6)
    # At the paper's chosen interval the extra-write cost is a few percent.
    assert by_interval[32]["swap_write_ratio"] < 0.05

    # (b) lifetimes exist for every interval and stay in the ~uniform-wear
    # band for a scan stream.
    for row in rows:
        assert row["scan_lifetime_years"] > 1.0
