#!/usr/bin/env python
"""Committed benchmark trajectory: engine throughput per scheme.

Unlike the pytest-benchmark timings in ``bench_throughput.py`` (host
sensitive, results land in ``benchmarks/results/``), this script feeds a
*committed* trajectory: each PR that claims an engine speedup records a
``BENCH_<tag>.json`` artifact at the repo root, and CI re-runs the same
scenarios in smoke mode to fail on throughput regressions against the
best prior artifact.

Machine normalization
---------------------
Raw writes/second are meaningless across hosts, so every run first times
a frozen calibration workload — a fixed mix of small-array numpy
operations and Python-level bookkeeping chosen to resemble the
simulator's instruction mix, which never changes between PRs — and
records ``calibration_ops_per_sec`` alongside the raw numbers.  The
regression gate compares ``normalized = batched_wps /
calibration_ops_per_sec`` (a dimensionless "demand writes per
calibration op"), which is stable across machines of different speeds as
long as the artifact being compared against carries its own calibration.

Artifact schema (``twl-bench-trajectory/1``)::

    {
      "schema": "twl-bench-trajectory/1",
      "tag": "PR6",
      "writes": 200000, "batch_size": 4096, "n_pages": 1024,
      "attack": "scan",
      "calibration_ops_per_sec": <float>,
      "scenarios": {
        "<name>": {"batched_wps": <float>, "normalized": <float>},
        ...
      },
      "smoke_scenarios": { ... },   # same shape, measured at the smoke
                                    # write count; what CI gates against
      "baseline": {             # optional: raw numbers being compared to
        "tag": "PR2", "scenarios": {"<name>": <batched_wps>}, ...
      }
    }

Short smoke runs carry proportionally more fixed cost than full runs,
so the two are not comparable; a ``--smoke --check`` run gates against
committed ``smoke_scenarios`` only, and a full ``--check`` run against
``scenarios`` only.

Usage::

    PYTHONPATH=src python benchmarks/bench_trajectory.py            # full run, prints JSON
    PYTHONPATH=src python benchmarks/bench_trajectory.py --smoke --check
    PYTHONPATH=src python benchmarks/bench_trajectory.py --output BENCH_PR7.json

``--check`` loads every ``BENCH_*.json`` at the repo root and exits
nonzero if any scenario's normalized throughput fell more than
``--tolerance`` (default 0.25) below the best prior artifact's.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.attacks.registry import make_attack  # noqa: E402
from repro.config import TWLConfig  # noqa: E402
from repro.engine import SimulationEngine, SnapshotPlan  # noqa: E402
from repro.pcm.array import PCMArray  # noqa: E402
from repro.sim.drivers import AttackDriver, StreamDriver  # noqa: E402
from repro.traces import FTLWorkloadStream  # noqa: E402
from repro.wearlevel.registry import make_scheme  # noqa: E402

SCHEMA = "twl-bench-trajectory/1"

_N_PAGES = 1024
_BATCH_SIZE = 4096
_WRITES = 200_000
_SMOKE_WRITES = 40_000
_ATTACK = "scan"
_ROUNDS = 3

#: Sparse-trigger TWL (mirrors ``bench_throughput._TWL_SPARSE``).
_TWL_SPARSE = TWLConfig(toss_up_interval=120, inter_pair_swap_interval=4096)

#: The committed scenarios — same cases as ``bench_throughput.py``'s
#: batched comparison, which is what the recorded baselines measured.
SCENARIOS = (
    ("nowl", "nowl", {}),
    ("startgap", "startgap", {}),
    ("twl", "twl", {}),
    ("twl_sparse", "twl", {"config": _TWL_SPARSE}),
    ("sr", "sr", {}),
)

#: Streamed scenarios: the same batched engine fed through the
#: streaming pipeline (FTL dynamic generator -> StreamDriver) instead
#: of an attack driver, so a throughput regression in chunk refill or
#: the stream write-filter is caught the same way engine regressions
#: are.  Kept in their own table because the workload differs from the
#: attack scenarios; the regression gate matches scenarios by name, so
#: adding these never affects gating of the committed attack baselines.
_STREAM_CHUNK = 8192

STREAM_SCENARIOS = (
    ("twl_ftl_stream", "twl", {}),
    ("nowl_ftl_stream", "nowl", {}),
)

#: Snapshot-cadence scenario (``stream_snapshot``): the ``twl`` FTL
#: stream run again with crash-consistent snapshot emission armed at the
#: default cadence (docs/robustness.md, "sub-cell recovery").  The
#: recorded throughput gates like any scenario — by name, so artifacts
#: committed before the scenario existed are never cross-compared — and
#: the run itself enforces the cadence-cost guard: amortized overhead at
#: the default cadence (best per-emission cost x emissions/second the
#: no-snapshot baseline would schedule) must stay under
#: ``_SNAPSHOT_OVERHEAD_LIMIT``.  The amortized form keeps the guard
#: robust at the smoke write count, where a 100k-demand cadence fires
#: rarely and a paired throughput subtraction would be pure noise.
_SNAPSHOT_EVERY = 100_000
_SNAPSHOT_OVERHEAD_LIMIT = 0.03
_SNAPSHOT_COST_ROUNDS = 5


#: Raw batched writes/second measured on the pre-refactor engine (the
#: PR 2 batched write protocol), same scenarios/host class, immediately
#: before the structure-of-arrays rewrite landed.  Kept verbatim so the
#: speedup column in committed artifacts has a fixed denominator.
BASELINE_PR2 = {
    "tag": "PR2-batched",
    "writes": _WRITES,
    "scenarios": {
        "nowl": 2503763,
        "startgap": 672843,
        "twl": 277170,
        "twl_sparse": 1123145,
        "sr": 425371,
    },
}


def calibrate(rounds: int = 5) -> float:
    """Host speed via a frozen numpy + Python workload (ops/second).

    The mix — small-array modular arithmetic, gathers, sorts, scalar
    ``int()`` round-trips — mirrors what the vectorized engine core
    actually spends time on, so the ratio raw/calibration cancels the
    host's speed on exactly that kind of work.  DO NOT change this
    function: committed artifacts are only comparable while every run
    calibrates with the same workload.
    """
    ops = 400
    best = float("inf")
    for _ in range(rounds):
        arange = np.arange(4096, dtype=np.int64)
        buffer = np.zeros(_N_PAGES, dtype=np.int64)
        accumulator = 0
        start = time.perf_counter()
        for i in range(ops):
            shifted = (arange + i) % _N_PAGES
            window = shifted[:128]
            buffer[window] += 1
            np.sort(window)
            accumulator += int(window.min()) + int(buffer.max())
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    assert accumulator != 0  # keep the loop un-elidable
    return ops / best


def measure_scenario(
    scheme_name: str, scheme_kwargs: dict, writes: int, rounds: int = _ROUNDS
) -> float:
    """Best-of-``rounds`` batched demand writes/second for one scenario."""
    best = 0.0
    for _ in range(rounds):
        array = PCMArray.uniform(_N_PAGES, 10**9)
        scheme = make_scheme(scheme_name, array, seed=1, **scheme_kwargs)
        attack = make_attack(_ATTACK, scheme.logical_pages, seed=1)
        engine = SimulationEngine(
            scheme, AttackDriver(attack), batch_size=_BATCH_SIZE
        )
        start = time.perf_counter()
        served = engine.drive(writes)
        elapsed = time.perf_counter() - start
        if served != writes:
            raise RuntimeError(
                f"{scheme_name}: served {served} of {writes} writes"
            )
        best = max(best, served / elapsed)
    return best


def measure_stream_scenario(
    scheme_name: str, scheme_kwargs: dict, writes: int, rounds: int = _ROUNDS
) -> float:
    """Best-of-``rounds`` streamed demand writes/second for one scenario."""
    best = 0.0
    for _ in range(rounds):
        array = PCMArray.uniform(_N_PAGES, 10**9)
        scheme = make_scheme(scheme_name, array, seed=1, **scheme_kwargs)
        stream = FTLWorkloadStream(
            scheme.logical_pages, seed=1, chunk_size=_STREAM_CHUNK
        )
        engine = SimulationEngine(
            scheme, StreamDriver(stream, scheme.logical_pages), batch_size=_BATCH_SIZE
        )
        start = time.perf_counter()
        served = engine.drive(writes)
        elapsed = time.perf_counter() - start
        if served != writes:
            raise RuntimeError(
                f"{scheme_name} (streamed): served {served} of {writes} writes"
            )
        best = max(best, served / elapsed)
    return best


def measure_snapshot_scenario(
    writes: int, baseline_wps: float, rounds: int = _ROUNDS
) -> dict:
    """Streamed ``twl`` throughput with snapshot emission armed.

    Returns the scenario entry: with-snapshot throughput (``batched_wps``
    filled in by the caller's normalization), the best-of-``rounds``
    per-emission cost, and the amortized overhead fraction the default
    cadence implies against ``baseline_wps`` (the no-snapshot
    ``twl_ftl_stream`` number from the same run).
    """

    def build(tmp: str) -> SimulationEngine:
        array = PCMArray.uniform(_N_PAGES, 10**9)
        scheme = make_scheme("twl", array, seed=1)
        stream = FTLWorkloadStream(
            scheme.logical_pages, seed=1, chunk_size=_STREAM_CHUNK
        )
        plan = SnapshotPlan(
            path=os.path.join(tmp, "bench.snap"),
            every=_SNAPSHOT_EVERY,
            resume=False,
        )
        return SimulationEngine(
            scheme,
            StreamDriver(stream, scheme.logical_pages),
            batch_size=_BATCH_SIZE,
            snapshots=plan,
        )

    best = 0.0
    with tempfile.TemporaryDirectory() as tmp:
        for _ in range(rounds):
            engine = build(tmp)
            start = time.perf_counter()
            served = engine.drive(writes)
            elapsed = time.perf_counter() - start
            if served != writes:
                raise RuntimeError(
                    f"twl (snapshotted): served {served} of {writes} writes"
                )
            best = max(best, served / elapsed)
        # Per-emission cost, timed directly (min over several emissions:
        # robust to one slow fsync) so the cadence guard does not depend
        # on subtracting two noisy throughput measurements.
        engine = build(tmp)
        engine.drive(min(writes, _SNAPSHOT_EVERY // 10))
        cost = float("inf")
        for _ in range(_SNAPSHOT_COST_ROUNDS):
            start = time.perf_counter()
            engine.emit_snapshot()
            cost = min(cost, time.perf_counter() - start)
    overhead = cost * baseline_wps / _SNAPSHOT_EVERY
    return {
        "batched_wps": round(best, 1),
        "snapshot_ms": round(cost * 1e3, 3),
        "snapshot_every": _SNAPSHOT_EVERY,
        "overhead_at_cadence": round(overhead, 5),
    }


def collect(writes: int, tag: str) -> dict:
    """Run calibration plus every scenario; return the artifact dict."""
    calibration = calibrate()
    scenarios = {}
    for label, scheme_name, kwargs in SCENARIOS:
        wps = measure_scenario(scheme_name, kwargs, writes)
        scenarios[label] = {
            "batched_wps": round(wps, 1),
            "normalized": round(wps / calibration, 3),
        }
    for label, scheme_name, kwargs in STREAM_SCENARIOS:
        wps = measure_stream_scenario(scheme_name, kwargs, writes)
        scenarios[label] = {
            "batched_wps": round(wps, 1),
            "normalized": round(wps / calibration, 3),
        }
    snapshot = measure_snapshot_scenario(
        writes, scenarios["twl_ftl_stream"]["batched_wps"]
    )
    snapshot["normalized"] = round(snapshot["batched_wps"] / calibration, 3)
    scenarios["stream_snapshot"] = snapshot
    return {
        "schema": SCHEMA,
        "tag": tag,
        "writes": writes,
        "batch_size": _BATCH_SIZE,
        "n_pages": _N_PAGES,
        "attack": _ATTACK,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "calibration_ops_per_sec": round(calibration, 1),
        "scenarios": scenarios,
    }


def load_artifacts() -> list:
    """Every committed ``BENCH_*.json`` with a matching schema."""
    artifacts = []
    for path in sorted(REPO_ROOT.glob("BENCH_*.json")):
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if data.get("schema") == SCHEMA and "scenarios" in data:
            data["_path"] = path.name
            artifacts.append(data)
    return artifacts


def check_regression(
    current: dict, artifacts: list, tolerance: float, key: str = "scenarios"
) -> list:
    """Compare normalized throughput against the best prior artifact.

    ``key`` selects which committed section to gate against
    (``scenarios`` for full runs, ``smoke_scenarios`` for smoke runs —
    the two write counts are not comparable).  Returns a list of
    human-readable failure strings (empty = pass).  A scenario present
    in a prior artifact but missing from the current run is also a
    failure: silently dropping a scenario must not make the gate
    greener.
    """
    failures = []
    best_prior: dict = {}
    for artifact in artifacts:
        for name, entry in artifact.get(key, {}).items():
            value = float(entry["normalized"])
            if name not in best_prior or value > best_prior[name][0]:
                best_prior[name] = (value, artifact.get("_path", "?"))
    for name, (prior, source) in sorted(best_prior.items()):
        entry = current["scenarios"].get(name)
        if entry is None:
            failures.append(f"{name}: scenario missing from current run")
            continue
        now = float(entry["normalized"])
        floor = prior * (1.0 - tolerance)
        if now < floor:
            failures.append(
                f"{name}: normalized {now:.3f} < floor {floor:.3f} "
                f"(best prior {prior:.3f} from {source}, "
                f"tolerance {tolerance:.0%})"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"quick CI mode: {_SMOKE_WRITES} writes instead of {_WRITES}",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 1) on regression vs the best committed BENCH_*.json",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional drop below the best prior normalized value",
    )
    parser.add_argument(
        "--tag", default="local", help="tag recorded in the artifact"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="write the artifact JSON here (otherwise print to stdout)",
    )
    args = parser.parse_args(argv)

    writes = _SMOKE_WRITES if args.smoke else _WRITES
    current = collect(writes, args.tag)
    if not args.smoke:
        current["baseline"] = BASELINE_PR2
        current["speedup_vs_baseline"] = {
            name: round(
                current["scenarios"][name]["batched_wps"] / float(raw), 2
            )
            for name, raw in BASELINE_PR2["scenarios"].items()
            if name in current["scenarios"]
        }
        # Committed full artifacts also carry the smoke reference CI
        # gates against (smoke and full write counts aren't comparable).
        smoke = collect(_SMOKE_WRITES, args.tag)
        current["smoke_writes"] = smoke["writes"]
        current["smoke_scenarios"] = smoke["scenarios"]
    rendered = json.dumps(current, indent=2, sort_keys=False)
    if args.output is not None:
        args.output.write_text(rendered + "\n")
        print(f"wrote {args.output}")
    print(rendered)

    # Within-run cadence guard, independent of committed artifacts (so
    # artifacts recorded before the scenario existed never gate it):
    # amortized snapshot cost at the default cadence must stay small
    # enough that leaving --snapshot-every on costs no meaningful
    # throughput (docs/robustness.md).
    snapshot = current["scenarios"]["stream_snapshot"]
    overhead = float(snapshot["overhead_at_cadence"])
    print(
        f"\nsnapshot cadence overhead: {overhead:.2%} at "
        f"every={snapshot['snapshot_every']} demands "
        f"({snapshot['snapshot_ms']} ms/emission; "
        f"limit {_SNAPSHOT_OVERHEAD_LIMIT:.0%})"
    )
    if overhead > _SNAPSHOT_OVERHEAD_LIMIT:
        print("SNAPSHOT CADENCE REGRESSION: overhead above limit")
        return 1

    if args.check:
        artifacts = load_artifacts()
        if not artifacts:
            print("no committed BENCH_*.json artifacts found; nothing to check")
            return 0
        key = "smoke_scenarios" if args.smoke else "scenarios"
        failures = check_regression(current, artifacts, args.tolerance, key)
        if failures:
            print("\nBENCHMARK REGRESSION:")
            for line in failures:
                print(f"  {line}")
            return 1
        print("\nno benchmark regression vs committed artifacts")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
