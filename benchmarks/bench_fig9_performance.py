"""Figure 9 — normalized execution time per benchmark.

Regenerates the timing comparison: BWL pays Bloom probes and a cold/hot
list on every write and is the slowest; SR and TWL stay within ~2% of
no-wear-leveling (paper: BWL 6.48%, SR 1.97%, TWL 1.90% on average,
TWL's maximum on vips).
"""

from repro.experiments import fig9


def test_fig9_normalized_execution_time(benchmark, setup, record):
    table = benchmark.pedantic(fig9.run, args=(setup,), rounds=1, iterations=1)
    record(
        "fig9_performance",
        table.render(precision=4, title="Figure 9 — normalized execution time"),
    )
    rows = table.rows()
    average = rows[-1]
    assert average["benchmark"] == "average"

    # Ordering: BWL is clearly the slowest; SR and TWL are low-percent.
    assert average["bwl"] > average["twl"]
    assert average["bwl"] > average["sr"]
    assert 1.0 < average["twl"] < 1.06
    assert 1.0 < average["sr"] < 1.06
    assert average["bwl"] < 1.15

    # TWL's worst benchmark is the most write-intensive one (vips).
    per_benchmark = {row["benchmark"]: row["twl"] for row in rows[:-1]}
    assert max(per_benchmark, key=per_benchmark.get) == "vips"
