"""Table 1 — prints the simulation setup and asserts its constants."""

from repro.config import PAPER_PCM, TimingConfig, TWLConfig
from repro.experiments import table1


def test_table1_configuration(benchmark, setup, record):
    table = benchmark.pedantic(table1.run, args=(setup,), rounds=1, iterations=1)
    record("table1_config", table.render(title="Table 1 — simulation setup"))

    # The constants the rest of the harness depends on.
    assert PAPER_PCM.capacity_bytes == 32 * 1024**3
    assert PAPER_PCM.n_pages == 8 * 1024**2
    assert TimingConfig().set_cycles == 2000
    assert TWLConfig().toss_up_interval == 32
    assert TWLConfig().inter_pair_swap_interval == 128
    assert len(table) >= 12
