"""A5 — engine microbenchmarks: demand writes per second per scheme.

These are classic pytest-benchmark timings (multiple rounds) of the
per-write hot path, useful for tracking simulator performance
regressions; the absolute numbers are host-dependent.
"""

import pytest

from repro.pcm.array import PCMArray
from repro.wearlevel.registry import make_scheme

_SCHEMES = ("nowl", "startgap", "sr", "twl", "bwl", "wrl")
_N_PAGES = 1024
_WRITES = 20_000


@pytest.mark.parametrize("scheme_name", _SCHEMES)
def test_scheme_write_throughput(benchmark, scheme_name):
    def run_writes():
        array = PCMArray.uniform(_N_PAGES, 10**9)
        scheme = make_scheme(scheme_name, array, seed=1)
        limit = scheme.logical_pages
        write = scheme.write
        for step in range(_WRITES):
            write(step % limit)
        return scheme.demand_writes

    demand = benchmark.pedantic(run_writes, rounds=3, iterations=1)
    assert demand == _WRITES
