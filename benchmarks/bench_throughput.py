"""A5 — engine microbenchmarks: demand writes per second per scheme.

These are classic pytest-benchmark timings (multiple rounds) of the
per-write hot path, useful for tracking simulator performance
regressions, plus a batched-vs-per-write engine comparison recorded to
``benchmarks/results/``; the absolute numbers are host-dependent.
"""

import time

import pytest

from repro.analysis.tables import ResultTable
from repro.config import TWLConfig
from repro.engine import SimulationEngine
from repro.pcm.array import PCMArray
from repro.sim.drivers import AttackDriver
from repro.attacks.registry import make_attack
from repro.wearlevel.registry import make_scheme

_SCHEMES = ("nowl", "startgap", "sr", "twl", "bwl", "wrl")
_N_PAGES = 1024
_WRITES = 20_000


@pytest.mark.parametrize("scheme_name", _SCHEMES)
def test_scheme_write_throughput(benchmark, scheme_name):
    def run_writes():
        array = PCMArray.uniform(_N_PAGES, 10**9)
        scheme = make_scheme(scheme_name, array, seed=1)
        limit = scheme.logical_pages
        write = scheme.write
        for step in range(_WRITES):
            write(step % limit)
        return scheme.demand_writes

    demand = benchmark.pedantic(run_writes, rounds=3, iterations=1)
    assert demand == _WRITES


#: Sparse-trigger TWL configuration: quiet runs long enough for the
#: vectorized non-toss-up fast path to engage (the paper's interval-32
#: default fires events every ~25 writes, where TWL adaptively degrades
#: to the scalar path and should sit near parity).
_TWL_SPARSE = TWLConfig(toss_up_interval=120, inter_pair_swap_interval=4096)

_BATCH_CASES = (
    ("nowl", {}),
    ("startgap", {}),
    ("twl", {}),
    ("twl sparse", {"config": _TWL_SPARSE}),
    ("sr", {}),
)
_BATCH_WRITES = 200_000
_BATCH_SIZE = 4096


def _engine_writes_per_second(
    scheme_name: str, batch_size: int, scheme_kwargs: dict
) -> float:
    array = PCMArray.uniform(_N_PAGES, 10**9)
    scheme = make_scheme(scheme_name, array, seed=1, **scheme_kwargs)
    attack = make_attack("scan", scheme.logical_pages, seed=1)
    engine = SimulationEngine(scheme, AttackDriver(attack), batch_size=batch_size)
    start = time.perf_counter()
    served = engine.drive(_BATCH_WRITES)
    elapsed = time.perf_counter() - start
    assert served == _BATCH_WRITES
    return served / elapsed


def test_batched_vs_per_write_throughput(record):
    """Record engine writes/second, batched vs per-write, per scheme.

    nowl/startgap have fully vectorized ``write_batch`` overrides; TWL
    vectorizes its quiet runs when triggers are sparse and degrades to
    the scalar path when they are dense; ``sr`` exercises the default
    per-write fallback (expected parity, it rides along as the
    control).
    """
    table = ResultTable(
        columns=["scheme", "per_write_wps", "batched_wps", "speedup"]
    )
    for case, scheme_kwargs in _BATCH_CASES:
        scheme_name = case.split()[0]
        serial = _engine_writes_per_second(scheme_name, 1, scheme_kwargs)
        batched = _engine_writes_per_second(
            scheme_name, _BATCH_SIZE, scheme_kwargs
        )
        table.add_row(
            scheme=case,
            per_write_wps=round(serial),
            batched_wps=round(batched),
            speedup=batched / serial,
        )
    record(
        "throughput_batched",
        table.render(
            precision=2,
            title=(
                "A5 — engine demand writes/second, per-write vs batched "
                f"(batch={_BATCH_SIZE}, scan attack, {_N_PAGES} pages)"
            ),
        ),
    )
