"""Figure 6 — lifetime under attacks for every scheme.

Regenerates the full scheme-by-attack matrix in years (ideal ≈ 6.6 y at
the 8 GB/s attack bandwidth), the cross-attack geometric means, and the
full-scale extrapolation of the "worn out quickly" cells.
"""

from repro.analysis.calibration import attack_ideal_lifetime_years
from repro.experiments import fig6


def test_fig6_lifetime_under_attacks(benchmark, setup, record):
    table = benchmark.pedantic(fig6.run, args=(setup,), rounds=1, iterations=1)
    ideal = attack_ideal_lifetime_years()
    record(
        "fig6_attacks",
        table.render(
            precision=2,
            title=f"Figure 6 — lifetime under attacks (years; ideal = {ideal:.2f})",
        ),
    )
    rows = {row["scheme"]: row for row in table.rows()}

    # BWL breaks down under the inconsistent attack ("98 seconds")...
    assert rows["bwl"]["inconsistent_years"] < 0.2 * rows["bwl"]["repeat_years"]
    # ...while TWL resists it by an order of magnitude or more.
    assert rows["twl_swp"]["inconsistent_years"] > 10 * rows["bwl"]["inconsistent_years"]
    # SR sits near its weakest-page-pinned ~2.8 years across attacks.
    assert 1.5 < rows["sr"]["gmean_years"] < 3.5
    # Strong-weak pairing beats adjacent pairing (~21.7% in the paper;
    # the margin is widest where pairing matters most — the repeat
    # attack — and compresses at reduced quick-mode scale).
    assert rows["twl_swp"]["gmean_years"] > 1.02 * rows["twl_ap"]["gmean_years"]
    assert rows["twl_swp"]["repeat_years"] > 1.15 * rows["twl_ap"]["repeat_years"]
    # TWL is the most robust scheme overall.
    for other in ("sr", "nowl"):
        assert rows["twl_swp"]["gmean_years"] > rows[other]["gmean_years"]


def test_fig6_quick_death_extrapolation(benchmark, setup, record):
    report = benchmark.pedantic(
        fig6.quick_death_report, args=(setup,), rounds=1, iterations=1
    )
    record(
        "fig6_quick_deaths",
        report.render(precision=4, title='Figure 6 — "worn out quickly" cells'),
    )
    rows = {(row["scheme"], row["attack"]) for row in report.rows()}
    assert ("bwl", "inconsistent") in rows
    assert ("nowl", "repeat") in rows
