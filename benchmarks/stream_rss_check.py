#!/usr/bin/env python
"""Constant-memory guarantee of the streaming workload pipeline.

The streaming-first refactor (``docs/workloads.md``) promises that a
streamed campaign's peak memory is set by the chunk size, never by how
many requests the workload serves — that is what makes
multi-billion-request campaigns reachable.  Nothing *fails* when that
promise breaks (a stray materialization just grows the heap), so CI
checks it dynamically: drive a warmup through the full pipeline —
FTL dynamic generator → ``StreamDriver`` → batched engine — record the
process peak RSS, then drive several times more traffic and assert the
peak grew by less than a hard ceiling.

A linear leak proportional to the request count (the failure mode a
``TWL007`` violation causes) blows through the ceiling immediately: at
8 bytes per buffered request the default 3M post-warmup writes would
add ~30 MB against the default 48 MB ceiling only if over three
quarters of the stream were being retained — and scaling ``--writes``
up makes the check arbitrarily strict at constant ceiling.

Usage::

    PYTHONPATH=src python benchmarks/stream_rss_check.py
    PYTHONPATH=src python benchmarks/stream_rss_check.py --writes 20000000
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.engine import SimulationEngine  # noqa: E402
from repro.pcm.array import PCMArray  # noqa: E402
from repro.sim.drivers import StreamDriver  # noqa: E402
from repro.traces import FTLWorkloadStream  # noqa: E402
from repro.wearlevel.registry import make_scheme  # noqa: E402

#: Endurance high enough that no page fails within any sane --writes.
_ENDURANCE = 10**12


def peak_rss_mb() -> float:
    """Process peak RSS in MiB (``ru_maxrss`` is KiB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scheme", default="nowl", help="wear-leveling scheme")
    parser.add_argument("--pages", type=int, default=4096)
    parser.add_argument("--chunk-size", type=int, default=65536)
    parser.add_argument("--batch-size", type=int, default=4096)
    parser.add_argument(
        "--warmup-writes",
        type=int,
        default=1_000_000,
        help="demand writes before the RSS baseline is recorded",
    )
    parser.add_argument(
        "--writes",
        type=int,
        default=3_000_000,
        help="demand writes driven after the baseline",
    )
    parser.add_argument(
        "--ceiling-mb",
        type=float,
        default=48.0,
        help="max allowed peak-RSS growth after warmup (MiB)",
    )
    args = parser.parse_args(argv)

    array = PCMArray.uniform(args.pages, _ENDURANCE)
    scheme = make_scheme(args.scheme, array, seed=1)
    stream = FTLWorkloadStream(
        scheme.logical_pages, seed=1, chunk_size=args.chunk_size
    )
    driver = StreamDriver(stream, scheme.logical_pages)
    engine = SimulationEngine(scheme, driver, batch_size=args.batch_size)

    served = engine.drive(args.warmup_writes)
    if served != args.warmup_writes:
        print(f"warmup served only {served} of {args.warmup_writes} writes")
        return 1
    baseline = peak_rss_mb()

    served = engine.drive(args.writes)
    if served != args.writes:
        print(f"main phase served only {served} of {args.writes} writes")
        return 1
    peak = peak_rss_mb()
    growth = peak - baseline

    print(
        json.dumps(
            {
                "scheme": args.scheme,
                "pages": args.pages,
                "chunk_size": args.chunk_size,
                "batch_size": args.batch_size,
                "demand_writes": args.warmup_writes + args.writes,
                "requests_consumed": driver.requests_consumed,
                "stream_loops": driver.loops_completed,
                "baseline_peak_rss_mb": round(baseline, 1),
                "final_peak_rss_mb": round(peak, 1),
                "growth_mb": round(growth, 1),
                "ceiling_mb": args.ceiling_mb,
            },
            indent=2,
            sort_keys=True,
        )
    )
    if growth > args.ceiling_mb:
        print(
            f"\nRSS CEILING EXCEEDED: peak RSS grew {growth:.1f} MiB over "
            f"{args.writes} post-warmup writes (ceiling {args.ceiling_mb} MiB) "
            "— something in the streaming path is materializing the workload"
        )
        return 1
    print(f"\npeak RSS growth {growth:.1f} MiB <= ceiling {args.ceiling_mb} MiB")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
