"""Ablation benches (DESIGN.md A1-A4, A6) — the design choices the paper
motivates but does not sweep."""

from repro.experiments import ablations


def test_a1_pairing_policy(benchmark, setup, record):
    table = benchmark.pedantic(
        ablations.pairing_ablation, args=(setup,), rounds=1, iterations=1
    )
    record("ablation_a1_pairing", table.render(precision=2, title="A1 — pairing policy"))
    rows = {row["pairing"]: row for row in table.rows()}
    # SWP maximizes endurance contrast; adjacent is the naive floor.
    assert rows["strong-weak"]["gmean"] >= rows["adjacent"]["gmean"]
    # Random pairing sits between the two (mixed contrast).
    assert rows["random"]["gmean"] >= 0.9 * rows["adjacent"]["gmean"]


def test_a2_inter_pair_interval(benchmark, setup, record):
    table = benchmark.pedantic(
        ablations.inter_pair_interval_ablation, args=(setup,), rounds=1, iterations=1
    )
    record(
        "ablation_a2_interpair",
        table.render(precision=4, title="A2 — inter-pair swap interval"),
    )
    rows = table.rows()
    # Wear overhead falls with longer intervals...
    assert rows[0]["overhead_ratio"] > rows[-1]["overhead_ratio"]
    # ...and every interval sustains a repeat-attack lifetime.
    for row in rows:
        assert row["repeat_years"] > 1.0


def test_a3_sigma_sweep(benchmark, setup, record):
    table = benchmark.pedantic(
        ablations.sigma_ablation, args=(setup,), rounds=1, iterations=1
    )
    record("ablation_a3_sigma", table.render(precision=2, title="A3 — endurance sigma"))
    rows = table.rows()
    # More process variation shortens SR's weakest-page-pinned lifetime.
    assert rows[0]["sr_years"] > rows[-1]["sr_years"]
    # At zero variation the schemes converge (nothing to be aware of).
    assert abs(rows[0]["twl_years"] - rows[0]["sr_years"]) < 0.25 * rows[0]["sr_years"]


def test_a4_remaining_endurance(benchmark, setup, record):
    table = benchmark.pedantic(
        ablations.remaining_endurance_ablation, args=(setup,), rounds=1, iterations=1
    )
    record(
        "ablation_a4_remaining",
        table.render(precision=2, title="A4 — toss-up endurance mode"),
    )
    modes = {row["mode"]: row for row in table.rows()}
    # Remaining-endurance mode is the adaptive extension: it must not
    # lose badly to the paper's initial-endurance design.
    assert modes["remaining"]["gmean"] > 0.8 * modes["initial"]["gmean"]


def test_a6_sr_structure(benchmark, setup, record):
    table = benchmark.pedantic(
        ablations.sr_level_ablation, args=(setup,), rounds=1, iterations=1
    )
    record("ablation_a6_sr", table.render(precision=2, title="A6 — SR structure"))
    rows = {row["scheme"]: row for row in table.rows()}
    # The single-level sweep's full key rotation is slower than page
    # endurance under a hammered address — the motivation for the
    # original design's second level.
    assert rows["sr_single"]["repeat"] < 0.3 * rows["sr"]["repeat"]


def test_a5_footprint_sensitivity(benchmark, setup, record):
    table = benchmark.pedantic(
        ablations.footprint_ablation, args=(setup,), rounds=1, iterations=1
    )
    record(
        "ablation_a5_footprint",
        table.render(precision=3, title="A5 — workload footprint"),
    )
    rows = {row["footprint_fraction"]: row for row in table.rows()}
    sparse = rows[min(rows)]
    dense = rows[1.0]
    # PV-aware placement gains from idle pages to park on weak frames:
    # TWL at the sparsest footprint beats TWL at full footprint.
    assert sparse["twl"] > dense["twl"]
    # TWL beats SR at every footprint; BWL beats SR overall (its
    # phase-length dynamics make individual footprints noisy).
    for row in table.rows():
        assert row["twl"] > row["sr"]
    bwl_mean = sum(row["bwl"] for row in table.rows()) / len(table.rows())
    sr_mean = sum(row["sr"] for row in table.rows()) / len(table.rows())
    assert bwl_mean > sr_mean


def test_a9_retirement_vs_twl(benchmark, setup, record):
    table = benchmark.pedantic(
        ablations.retirement_ablation, args=(setup,), rounds=1, iterations=1
    )
    record(
        "ablation_a9_retirement",
        table.render(precision=2, title="A9 — page retirement vs TWL"),
    )
    rows = {row["scheme"]: row for row in table.rows()}
    retire_rows = [row for name, row in rows.items() if name.startswith("retire")]
    best_retire_random = max(row["random_years"] for row in retire_rows)
    best_retire_repeat = max(row["repeat_years"] for row in retire_rows)
    twl = rows["twl_swp"]
    # Orthogonality: retirement wins on spread traffic (it beats the
    # uniform-wear bound TWL is pinned at)...
    assert best_retire_random > twl["random_years"]
    # ...but collapses under concentration, where TWL shines.
    assert twl["repeat_years"] > 3 * best_retire_repeat
