"""Table 2 — regenerates the benchmark characterization table.

For every PARSEC profile the harness recomputes the ideal lifetime from
the paper's write bandwidth and measures the no-wear-leveling lifetime
on the scaled array, then checks both against the paper's printed
columns.
"""

import pytest

from repro.experiments import table2


def test_table2_benchmark_characterization(benchmark, setup, record):
    table = benchmark.pedantic(table2.run, args=(setup,), rounds=1, iterations=1)
    record(
        "table2_benchmarks",
        table.render(precision=1, title="Table 2 — reproduced vs paper"),
    )

    for row in table.rows():
        name = row["benchmark"]
        assert row["ideal_years"] == pytest.approx(
            row["ideal_paper"], rel=0.07
        ), f"{name}: ideal lifetime off"
        # The no-WL lifetime is a measured quantity; hold it to a factor
        # band around the paper's value.
        assert row["nowl_years"] == pytest.approx(
            row["nowl_paper"], rel=0.45
        ), f"{name}: no-WL lifetime off"
