"""Shared fixtures for the benchmark harness.

The harness runs every experiment at the default scale (set
``REPRO_QUICK=1`` to shrink it for smoke runs) and records each
reproduced table under ``benchmarks/results/`` so runs can be diffed
against EXPERIMENTS.md.

The experiment grids run through ``repro.exec``, so the harness honours
the executor environment knobs (read by ``active_setup``):

* ``REPRO_JOBS=N`` — fan independent cells across N worker processes
  (bit-identical results to the serial run);
* ``REPRO_CACHE_DIR=path`` — reuse completed cells from the on-disk
  result cache there, e.g. a previous ``twl-repro all`` campaign.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.setups import ExperimentSetup, active_setup

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def setup() -> ExperimentSetup:
    """The experiment setup for the whole benchmark session."""
    return active_setup()


@pytest.fixture(scope="session")
def record():
    """Persist a rendered table under benchmarks/results/ and echo it."""

    def _record(name: str, text: str) -> None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")
        print()
        print(text)

    return _record
