#!/usr/bin/env python
"""Chaos acceptance gate for the resilient campaign service.

The in-process suite (``tests/test_serve.py``) proves each mechanism of
``twl-repro serve`` where a debugger can reach it; this script proves
the headline contract where it actually matters — against a real server
*process*, with real client chaos and a real SIGKILL:

1. start ``twl-repro serve`` on a UNIX socket over a fresh state dir;
2. drive it with the seeded chaos load generator (honest submissions,
   duplicate resubmissions, malformed frames, oversized frames,
   mid-request disconnects, slow-loris writers) — and **SIGKILL the
   server in the middle of the campaign**;
3. restart the server on the same state dir (stale journal owner locks
   from the dead process must be broken automatically) and run a
   second chaos campaign resubmitting the same cell grid;
4. require the acceptance contract of ``docs/serving.md``:
   the restarted server answers, no two responses for one fingerprint
   ever disagreed, and **every surviving response is bit-identical to
   serial execution** of the same cells (the diff-vs-serial baseline);
5. drain the server with SIGTERM and require a clean exit.

Everything the run touches (server logs, the state dir with its
per-session journals and cache) lives under one artifacts directory
whose path is printed on failure so CI can upload it.

Usage::

    PYTHONPATH=src python benchmarks/serve_chaos_check.py --quick
    PYTHONPATH=src python benchmarks/serve_chaos_check.py --seed 2018
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.exec import cell_fingerprint  # noqa: E402
from repro.serve.loadgen import (  # noqa: E402
    default_grid,
    open_connection,
    ping,
    run_loadgen,
    submit_cell,
    verify_bit_identity,
)

#: Server knobs for the gate: small pool, tight queue (so overload
#: rejections actually happen), fast health probe.
_SERVER_ARGS = [
    "--workers", "2",
    "--queue-limit", "8",
    "--health-interval", "1.0",
    "--idle-timeout", "10.0",
    "--drain-grace", "20.0",
]


def start_server(state_dir: str, socket_path: str, log_path: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    log = open(log_path, "ab")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--state-dir", state_dir,
            "--unix", socket_path,
            *_SERVER_ARGS,
        ],
        stdout=log,
        stderr=log,
        env=env,
    )


async def wait_ready(address, timeout: float = 60.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if await ping(address, timeout=2.0):
            return True
        await asyncio.sleep(0.1)
    return False


async def run_gate(args: argparse.Namespace, artifacts: Path) -> int:
    state_dir = artifacts / "state"
    socket_path = str(artifacts / "serve.sock")
    address = ("unix", socket_path)
    cells = default_grid(args.grid_seeds)
    failures = []

    def check(ok: bool, message: str) -> None:
        print(("ok  " if ok else "FAIL") + f"  {message}", flush=True)
        if not ok:
            failures.append(message)

    # ---- life 1: chaos campaign with a mid-campaign SIGKILL ----------
    server = start_server(str(state_dir), socket_path, str(artifacts / "server1.log"))
    try:
        check(await wait_ready(address), "server (life 1) answers ping")

        # Warm the spawn pool and bank one acknowledged result before
        # the chaos begins: the SIGKILL must land on a server that has
        # durable work to resume, no matter how slow worker boot is.
        reader, writer = await open_connection(address)
        warm = await submit_cell(
            reader, writer, cells[0], "warmup", timeout=args.timeout
        )
        writer.close()
        check(
            warm.get("ok") is True,
            "warm-up submission completed before the chaos",
        )

        async def kill_mid_campaign():
            await asyncio.sleep(args.kill_after)
            server.kill()  # SIGKILL: no drain, no lock release

        campaign1, _ = await asyncio.gather(
            run_loadgen(
                address,
                cells=cells,
                clients=args.clients,
                actions=args.actions,
                seed=args.seed,
                chaos=True,
                timeout=args.timeout,
            ),
            kill_mid_campaign(),
        )
        server.wait(timeout=30)
        # The warm-up response is part of life 1's surviving record set.
        campaign1.completed.setdefault(
            cell_fingerprint(cells[0]),
            {"kind": warm.get("kind"), "payload": warm.get("payload")},
        )
        print(f"life 1: {campaign1.summary()}", flush=True)
        check(
            campaign1.conflicts == [],
            "no conflicting responses before the SIGKILL",
        )
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=30)

    # ---- life 2: restart on the same state dir, resubmit everything --
    # The dead server left its socket file and its journal owner locks
    # behind; the socket is ours to clear, the locks are the restarted
    # server's job (stale-owner breaking in CheckpointJournal).
    if os.path.exists(socket_path):
        os.unlink(socket_path)
    server = start_server(str(state_dir), socket_path, str(artifacts / "server2.log"))
    try:
        check(await wait_ready(address), "restarted server answers ping")
        campaign2 = await run_loadgen(
            address,
            cells=cells,
            clients=args.clients,
            actions=args.actions,
            seed=args.seed + 1,
            chaos=True,
            timeout=args.timeout,
        )
        print(f"life 2: {campaign2.summary()}", flush=True)
        check(campaign2.server_alive, "server alive after the second campaign")
        check(campaign2.conflicts == [], "no conflicting responses after restart")
        check(bool(campaign2.completed), "second campaign completed work")

        # Responses that survived both lives must agree with each other
        # (journal-resumed results equal pre-kill results) ...
        overlap = set(campaign1.completed) & set(campaign2.completed)
        disagreements = [
            fingerprint
            for fingerprint in sorted(overlap)
            if campaign1.completed[fingerprint] != campaign2.completed[fingerprint]
        ]
        check(
            disagreements == [],
            f"pre-kill and post-restart responses agree ({len(overlap)} shared)",
        )
        # ... and every one of them must match serial execution.
        merged = dict(campaign1.completed)
        merged.update(campaign2.completed)
        mismatches = verify_bit_identity(merged, cells)
        check(
            mismatches == [],
            f"all {len(merged)} surviving responses bit-identical to serial",
        )

        # ---- drain-then-exit ----------------------------------------
        server.send_signal(signal.SIGTERM)
        returncode = server.wait(timeout=60)
        check(returncode == 0, f"SIGTERM drained cleanly (exit {returncode})")
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=30)

    report = {
        "cells": len(cells),
        "life1_counts": campaign1.counts,
        "life2_counts": campaign2.counts,
        "failures": failures,
    }
    (artifacts / "report.json").write_text(json.dumps(report, indent=2, sort_keys=True))
    if failures:
        print(f"\nserve chaos gate FAILED; artifacts in {artifacts}", flush=True)
        return 1
    print("\nserve chaos gate passed", flush=True)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=12)
    parser.add_argument("--actions", type=int, default=8, help="actions per client")
    parser.add_argument("--grid-seeds", type=int, default=2)
    parser.add_argument("--seed", type=int, default=2017)
    parser.add_argument("--kill-after", type=float, default=1.5,
                        help="seconds into campaign 1 before SIGKILL")
    parser.add_argument("--timeout", type=float, default=60.0,
                        help="client-side response timeout")
    parser.add_argument("--artifacts", default=None,
                        help="artifacts directory (default: a fresh temp dir)")
    parser.add_argument("--quick", action="store_true",
                        help="smaller campaign for local smoke runs")
    args = parser.parse_args(argv)
    if args.quick:
        args.clients = min(args.clients, 6)
        args.actions = min(args.actions, 5)
        args.grid_seeds = min(args.grid_seeds, 1)
        args.kill_after = min(args.kill_after, 0.4)
    artifacts = Path(
        args.artifacts
        if args.artifacts
        else tempfile.mkdtemp(prefix="serve-chaos-")
    )
    artifacts.mkdir(parents=True, exist_ok=True)
    print(f"artifacts: {artifacts}", flush=True)
    return asyncio.run(run_gate(args, artifacts))


if __name__ == "__main__":
    sys.exit(main())
