"""A7 — seed sensitivity of the headline comparison (extension bench).

The paper reports single simulation runs.  This bench replicates the
central Figure-6 comparison (TWL vs SR under the inconsistent attack)
across independent seeds and checks that the conclusion survives the
run-to-run variance — i.e. that the reproduction's claims are not
one-seed flukes.
"""

from repro.analysis.calibration import attack_ideal_lifetime_years
from repro.analysis.tables import ResultTable
from repro.sim.replicates import replicate_attack_lifetime


def test_a7_seed_sensitivity(benchmark, setup, record):
    def run_replications():
        rows = {}
        for scheme in ("twl_swp", "sr", "bwl"):
            rows[scheme] = replicate_attack_lifetime(
                scheme,
                "inconsistent",
                n_replicates=5,
                scaled=setup.scaled,
                seed=setup.seed,
            )
        return rows

    summaries = benchmark.pedantic(run_replications, rounds=1, iterations=1)
    ideal = attack_ideal_lifetime_years()
    table = ResultTable(["scheme", "mean_years", "ci95", "min_years", "max_years"])
    for scheme, summary in summaries.items():
        table.add_row(
            scheme=scheme,
            mean_years=round(summary.mean * ideal, 2),
            ci95=round(summary.confidence_halfwidth() * ideal, 2),
            min_years=round(summary.minimum * ideal, 2),
            max_years=round(summary.maximum * ideal, 2),
        )
    record(
        "extension_a7_seeds",
        table.render(precision=2, title="A7 — seed sensitivity (inconsistent attack)"),
    )

    # The headline conclusion must hold for every seed: even TWL's worst
    # replicate beats BWL's best by a wide margin.
    assert summaries["twl_swp"].minimum > 3 * summaries["bwl"].maximum
    # And TWL's mean beats SR's mean.
    assert summaries["twl_swp"].mean > summaries["sr"].mean