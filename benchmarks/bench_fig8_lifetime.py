"""Figure 8 — normalized lifetime per PARSEC benchmark.

Regenerates the paper's normalized-lifetime bars (BWL ≈ 75.6%, TWL ≈
79.6%, SR ≈ 44% of ideal on average; NOWL at the 1/concentration floor).
"""

from repro.experiments import fig8


def test_fig8_normalized_lifetime(benchmark, setup, record):
    table = benchmark.pedantic(fig8.run, args=(setup,), rounds=1, iterations=1)
    record(
        "fig8_lifetime",
        table.render(precision=3, title="Figure 8 — lifetime normalized to ideal"),
    )
    gmean = table.rows()[-1]
    assert gmean["benchmark"] == "gmean"

    # The paper's ordering: PV-aware schemes far above SR, SR far above
    # NOWL; TWL and BWL both reach a large fraction of ideal.
    assert gmean["twl"] > gmean["sr"] * 1.2
    assert gmean["bwl"] > gmean["sr"] * 1.2
    assert gmean["twl"] > 0.45
    assert gmean["bwl"] > 0.45
    assert 0.25 < gmean["sr"] < 0.5
    assert gmean["nowl"] < 0.1

    # Per-benchmark: every scheme must beat no-wear-leveling everywhere.
    for row in table.rows()[:-1]:
        for scheme in ("bwl", "sr", "twl"):
            assert row[scheme] > row["nowl"], row["benchmark"]
