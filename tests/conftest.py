"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ScaledArrayConfig, TWLConfig
from repro.pcm.array import PCMArray


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic numpy generator."""
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_array() -> PCMArray:
    """A 8-page array with known, distinct endurance values."""
    return PCMArray(np.array([100, 200, 300, 400, 500, 600, 700, 800]))


@pytest.fixture
def uniform_array() -> PCMArray:
    """A 16-page array with identical endurance (no PV)."""
    return PCMArray.uniform(16, 1000)


@pytest.fixture
def small_scaled() -> ScaledArrayConfig:
    """A small scaled config for integration tests (ratio preserved)."""
    return ScaledArrayConfig(n_pages=128, endurance_mean=1536.0)


@pytest.fixture
def twl_config() -> TWLConfig:
    """The paper-default TWL configuration."""
    return TWLConfig()
