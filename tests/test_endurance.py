"""Tests for endurance sampling (including tail-faithful scaling)."""

import math

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.errors import ConfigError
from repro.pcm.endurance import (
    expected_extreme_minimum,
    norm_ppf,
    sample_gaussian_endurance,
    sample_tail_faithful,
)


class TestNormPpf:
    def test_matches_scipy(self):
        for p in (1e-9, 1e-6, 0.01, 0.25, 0.5, 0.75, 0.99, 1 - 1e-6):
            assert norm_ppf(p) == pytest.approx(
                float(scipy_stats.norm.ppf(p)), rel=1e-6, abs=1e-7
            )

    def test_symmetry(self):
        assert norm_ppf(0.3) == pytest.approx(-norm_ppf(0.7), abs=1e-9)

    def test_median_zero(self):
        assert norm_ppf(0.5) == pytest.approx(0.0, abs=1e-9)

    def test_rejects_endpoints(self):
        with pytest.raises(ValueError):
            norm_ppf(0.0)
        with pytest.raises(ValueError):
            norm_ppf(1.0)


class TestExpectedExtremeMinimum:
    def test_paper_scale_minimum_near_44_percent(self):
        # The weakest of 8.4M pages at sigma = 11% of mean sits near the
        # 0.42-0.44 of mean that pins the paper's SR result.
        minimum = expected_extreme_minimum(8 * 1024 * 1024, 1e8, 1.1e7)
        assert 0.40e8 < minimum < 0.46e8

    def test_monotone_in_population(self):
        small = expected_extreme_minimum(1000, 100.0, 10.0)
        large = expected_extreme_minimum(1_000_000, 100.0, 10.0)
        assert large < small

    def test_population_one_is_near_mean(self):
        value = expected_extreme_minimum(1, 100.0, 10.0)
        assert abs(value - 100.0) < 5.0

    def test_rejects_empty_population(self):
        with pytest.raises(ValueError):
            expected_extreme_minimum(0, 100.0, 10.0)


class TestGaussianSampling:
    def test_shape_and_type(self, rng):
        sample = sample_gaussian_endurance(1000, 10_000, 0.11, rng)
        assert sample.shape == (1000,)
        assert sample.dtype == np.int64

    def test_mean_and_spread(self, rng):
        sample = sample_gaussian_endurance(20_000, 10_000, 0.11, rng)
        assert abs(sample.mean() - 10_000) < 50
        assert abs(sample.std() - 1100) < 60

    def test_all_positive(self, rng):
        sample = sample_gaussian_endurance(10_000, 100, 0.5, rng)
        assert (sample >= 1).all()

    def test_rejects_zero_pages(self, rng):
        with pytest.raises(ConfigError):
            sample_gaussian_endurance(0, 100, 0.1, rng)


class TestTailFaithful:
    def test_minimum_matches_reference_population(self, rng):
        reference = 8 * 1024 * 1024
        sample = sample_tail_faithful(1024, reference, 10_000, 0.11, rng)
        expected = expected_extreme_minimum(reference, 10_000, 1100)
        assert sample.min() == pytest.approx(expected, rel=0.02)

    def test_maximum_mirrors_minimum(self, rng):
        sample = sample_tail_faithful(1024, 1 << 23, 10_000, 0.11, rng)
        assert abs((sample.max() - 10_000) + (sample.min() - 10_000)) < 200

    def test_mean_preserved(self, rng):
        sample = sample_tail_faithful(4096, 1 << 23, 10_000, 0.11, rng)
        assert abs(sample.mean() - 10_000) < 150

    def test_positions_shuffled(self, rng):
        sample = sample_tail_faithful(512, 1 << 23, 10_000, 0.11, rng)
        # Sorted order would put the weak tail first; a shuffled sample
        # should not be monotone.
        assert not (np.diff(sample) >= 0).all()

    def test_deterministic_given_rng_seed(self):
        a = sample_tail_faithful(256, 1 << 23, 1000, 0.11, np.random.default_rng(5))
        b = sample_tail_faithful(256, 1 << 23, 1000, 0.11, np.random.default_rng(5))
        assert (a == b).all()

    def test_rejects_tiny_array(self, rng):
        with pytest.raises(ConfigError):
            sample_tail_faithful(4, 1000, 100, 0.1, rng)

    def test_rejects_reference_smaller_than_array(self, rng):
        with pytest.raises(ConfigError):
            sample_tail_faithful(128, 64, 100, 0.1, rng)

    def test_rejects_oversized_tail(self, rng):
        with pytest.raises(ConfigError):
            sample_tail_faithful(64, 1 << 20, 100, 0.1, rng, tail_count=40)

    def test_scale_invariance_of_min_over_sizes(self, rng):
        # Different array sizes should produce the same weakest page,
        # because it is pinned to the reference population.
        reference = 1 << 23
        minima = [
            sample_tail_faithful(n, reference, 10_000, 0.11, rng).min()
            for n in (256, 1024, 4096)
        ]
        assert max(minima) - min(minima) <= 2
