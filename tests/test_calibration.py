"""Tests for ideal-lifetime calibration against the paper's tables."""

import pytest

from repro.analysis.calibration import (
    PAPER_IDEAL_CALIBRATION,
    attack_ideal_lifetime_years,
    ideal_lifetime_seconds,
    ideal_lifetime_years,
)
from repro.traces.parsec import PARSEC_TABLE2


class TestIdealLifetime:
    def test_matches_every_table2_row(self):
        """The single calibration constant fits all 13 printed ideals.

        streamcluster is excluded from the tight bound: the paper prints
        its bandwidth rounded to 12 MBps, which alone moves the ideal by
        several percent.
        """
        for name, profile in PARSEC_TABLE2.items():
            computed = ideal_lifetime_years(profile.write_bandwidth_mbps)
            # The paper prints whole years, so allow half-a-unit rounding
            # slack relative to the printed value (vips: 16.3 vs "16");
            # streamcluster's bandwidth itself is printed rounded.
            tolerance = 0.07 if name == "streamcluster" else 0.035
            assert computed == pytest.approx(
                profile.ideal_lifetime_years, rel=tolerance
            ), name

    def test_attack_ideal_near_paper(self):
        # "ideal lifetime = 6.6 years" at ~8 GB/s.
        assert attack_ideal_lifetime_years() == pytest.approx(6.6, rel=0.05)

    def test_inverse_proportional_to_bandwidth(self):
        assert ideal_lifetime_years(100.0) == pytest.approx(
            2 * ideal_lifetime_years(200.0)
        )

    def test_calibration_scales_linearly(self):
        base = ideal_lifetime_seconds(1e9, calibration=PAPER_IDEAL_CALIBRATION)
        raw = ideal_lifetime_seconds(1e9, calibration=1.0)
        assert base == pytest.approx(raw * PAPER_IDEAL_CALIBRATION)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            ideal_lifetime_seconds(0.0)
        with pytest.raises(ValueError):
            ideal_lifetime_seconds(1e9, calibration=0.0)
